//! Fault-injection tests of the formal verifier: sabotage correctly
//! compiled circuits in many ways and assert the QMDD equivalence check
//! rejects every mutant. This is the sensitivity half of verification —
//! passing equivalent circuits is necessary, *failing every inequivalent
//! one* is what makes the paper's built-in check meaningful.

use qsyn::prelude::*;

fn compiled_toffoli() -> (Circuit, Circuit) {
    let mut spec = Circuit::new(3);
    spec.push(Gate::toffoli(0, 1, 2));
    let r = Compiler::new(devices::ibmqx4())
        .with_verification(Verification::None)
        .compile(&spec)
        .unwrap();
    (r.placed, r.optimized)
}

/// Every single-gate deletion of the mapped Toffoli is caught.
#[test]
fn deletion_mutants_are_rejected() {
    let (spec, mapped) = compiled_toffoli();
    assert!(circuits_equal(&spec, &mapped), "baseline sanity");
    let mut undetected = Vec::new();
    for k in 0..mapped.len() {
        let mut mutant_gates = mapped.gates().to_vec();
        mutant_gates.remove(k);
        let mutant = Circuit::from_gates(mapped.n_qubits(), mutant_gates);
        if circuits_equal(&spec, &mutant) {
            undetected.push(k);
        }
    }
    assert!(
        undetected.is_empty(),
        "deletions at {undetected:?} slipped past verification"
    );
}

/// Replacing any T with T-dagger (the classic sign slip) is caught.
#[test]
fn t_sign_mutants_are_rejected() {
    let (spec, mapped) = compiled_toffoli();
    for k in 0..mapped.len() {
        let Gate::Single { op, qubit } = mapped.gates()[k].clone() else {
            continue;
        };
        let flipped = match op {
            SingleOp::T => SingleOp::Tdg,
            SingleOp::Tdg => SingleOp::T,
            _ => continue,
        };
        let mut mutant_gates = mapped.gates().to_vec();
        mutant_gates[k] = Gate::single(flipped, qubit);
        let mutant = Circuit::from_gates(mapped.n_qubits(), mutant_gates);
        assert!(
            !circuits_equal(&spec, &mutant),
            "T/T† flip at {k} undetected"
        );
    }
}

/// Reversing any CNOT orientation is caught.
#[test]
fn cnot_direction_mutants_are_rejected() {
    let (spec, mapped) = compiled_toffoli();
    for k in 0..mapped.len() {
        let Gate::Cx { control, target } = mapped.gates()[k] else {
            continue;
        };
        let mut mutant_gates = mapped.gates().to_vec();
        mutant_gates[k] = Gate::cx(target, control);
        let mutant = Circuit::from_gates(mapped.n_qubits(), mutant_gates);
        assert!(
            !circuits_equal(&spec, &mutant),
            "CNOT reversal at {k} undetected"
        );
    }
}

/// Gate transpositions that change the function are caught; harmless
/// commuting swaps are (correctly) accepted.
#[test]
fn transposition_mutants() {
    let (spec, mapped) = compiled_toffoli();
    let mut rejected = 0usize;
    let mut accepted = 0usize;
    for k in 0..mapped.len() - 1 {
        let mut mutant_gates = mapped.gates().to_vec();
        mutant_gates.swap(k, k + 1);
        let mutant = Circuit::from_gates(mapped.n_qubits(), mutant_gates.clone());
        let equal = circuits_equal(&spec, &mutant);
        // Accepted swaps must genuinely commute.
        if equal {
            accepted += 1;
            let a = &mapped.gates()[k];
            let b = &mapped.gates()[k + 1];
            let ab = b.to_matrix(3).mul(&a.to_matrix(3));
            let ba = a.to_matrix(3).mul(&b.to_matrix(3));
            assert!(ab.approx_eq(&ba), "accepted a non-commuting swap at {k}");
        } else {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "some transpositions must change the function");
    assert!(accepted > 0, "some neighbors genuinely commute");
}

/// The miter strategy has the same sensitivity on a wide register.
#[test]
fn miter_catches_faults_on_qc96() {
    let mut spec = Circuit::new(96);
    spec.push(Gate::mct(vec![1, 2, 3], 25));
    let r = Compiler::new(devices::qc96())
        .with_verification(Verification::None)
        .compile(&spec)
        .unwrap();
    assert!(equivalent_miter(&r.placed, &r.optimized).equivalent);
    // Drop a mid-circuit gate.
    let mut broken = r.optimized.gates().to_vec();
    broken.remove(broken.len() / 2);
    let mutant = Circuit::from_gates(96, broken);
    assert!(!equivalent_miter(&r.placed, &mutant).equivalent);
}

/// End-to-end: a compiler forced to verify rejects a sabotaged result by
/// construction (simulated by comparing against a perturbed spec).
#[test]
fn verification_failure_surfaces_as_error() {
    // There is no hook to corrupt the pipeline internally (that is the
    // point), so check the error path through the equivalence API the
    // compiler uses.
    let (spec, mapped) = compiled_toffoli();
    let mut wrong_spec = spec.clone();
    wrong_spec.push(Gate::x(0));
    assert!(circuits_equal(&spec, &mapped));
    assert!(!circuits_equal(&wrong_spec, &mapped));
}
