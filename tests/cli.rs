//! Integration tests driving the `qsyn` command-line tool end to end,
//! through real process invocations and temporary files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qsyn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_qsyn"))
        .args(args)
        .output()
        .expect("qsyn binary runs")
}

fn tmp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qsyn-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write temp file");
    path
}

const TOFFOLI_REAL: &str = ".version 2.0\n.numvars 3\n.variables a b c\n.begin\nt3 a b c\n.end\n";

#[test]
fn devices_lists_the_library() {
    let out = qsyn(&["devices"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["ibmqx2", "ibmqx3", "ibmqx4", "ibmqx5", "ibmq_16", "qc96"] {
        assert!(text.contains(name), "missing {name}");
    }
    assert!(text.contains("0.3"), "complexity column");
}

#[test]
fn compile_real_to_qasm() {
    let input = tmp("tof.real", TOFFOLI_REAL);
    let out = qsyn(&["compile", input.to_str().unwrap(), "--device", "ibmqx4"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let qasm = String::from_utf8_lossy(&out.stdout);
    assert!(qasm.starts_with("OPENQASM 2.0;"));
    assert!(qasm.contains("cx q["));
    // Stats and verification report on stderr.
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("verified = Some(true)"), "{log}");
}

#[test]
fn compile_writes_out_file_and_round_trips() {
    let input = tmp("tof2.real", TOFFOLI_REAL);
    let output = tmp("tof2.qasm", "");
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx2",
        "--out",
        output.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let qasm = std::fs::read_to_string(&output).unwrap();
    let mapped = qsyn::circuit::Circuit::from_qasm(&qasm).unwrap();
    let spec = qsyn::circuit::Circuit::from_real(TOFFOLI_REAL).unwrap();
    assert!(qsyn::qmdd::circuits_equal(&spec, &mapped));
}

#[test]
fn compile_reports_na_for_too_wide() {
    let input = tmp(
        "wide.real",
        ".numvars 6\n.variables a b c d e f\nt2 a f\n",
    );
    let out = qsyn(&["compile", input.to_str().unwrap(), "--device", "ibmqx2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("6 qubits"));
}

#[test]
fn compile_rejects_unknown_device() {
    let input = tmp("tof3.real", TOFFOLI_REAL);
    let out = qsyn(&["compile", input.to_str().unwrap(), "--device", "nonsense"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn compile_flags_greedy_and_no_opt() {
    let input = tmp("tof4.real", TOFFOLI_REAL);
    for extra in [&["--placement", "greedy"][..], &["--no-opt"], &["--cost", "fidelity"]] {
        let mut args = vec!["compile", input.to_str().unwrap(), "--device", "ibmqx5"];
        args.extend_from_slice(extra);
        let out = qsyn(&args);
        assert!(out.status.success(), "{extra:?}: {}", String::from_utf8_lossy(&out.stderr));
    }
}

#[test]
fn check_equivalent_and_different() {
    let swap_native = tmp("s1.qasm", "qreg q[2]; swap q[0],q[1];");
    let swap_cnots = tmp(
        "s2.qasm",
        "qreg q[2]; cx q[0],q[1]; cx q[1],q[0]; cx q[0],q[1];",
    );
    let other = tmp("s3.qasm", "qreg q[2]; cx q[0],q[1];");

    let ok = qsyn(&[
        "check",
        swap_native.to_str().unwrap(),
        swap_cnots.to_str().unwrap(),
    ]);
    assert!(ok.status.success());
    assert!(String::from_utf8_lossy(&ok.stdout).contains("EQUIVALENT"));

    let bad = qsyn(&[
        "check",
        swap_native.to_str().unwrap(),
        other.to_str().unwrap(),
    ]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stdout).contains("DIFFERENT"));
}

#[test]
fn check_miter_and_ancilla_flags() {
    let swap_native = tmp("sm1.qasm", "qreg q[2]; swap q[0],q[1];");
    let swap_cnots = tmp(
        "sm2.qasm",
        "qreg q[2]; cx q[0],q[1]; cx q[1],q[0]; cx q[0],q[1];",
    );
    let ok = qsyn(&[
        "check",
        swap_native.to_str().unwrap(),
        swap_cnots.to_str().unwrap(),
        "--miter",
    ]);
    assert!(ok.status.success());

    // Partial equivalence: a CZ firing only on an excited ancilla input.
    let clean = tmp("anc1.qasm", "qreg q[3]; ccx q[0],q[1],q[2];");
    let messy = tmp("anc2.qasm", "qreg q[3]; cz q[2],q[0]; ccx q[0],q[1],q[2];");
    let full = qsyn(&["check", clean.to_str().unwrap(), messy.to_str().unwrap()]);
    assert!(!full.status.success(), "fully different");
    let partial = qsyn(&[
        "check",
        clean.to_str().unwrap(),
        messy.to_str().unwrap(),
        "--ancilla",
        "2",
    ]);
    assert!(partial.status.success(), "equal on the clean subspace");
}

#[test]
fn stats_reports_counts() {
    let input = tmp(
        "stats.qc",
        ".v a b c\nBEGIN\nH a\nT a\nT* b\ntof a b\ntof a b c\nEND\n",
    );
    let out = qsyn(&["stats", input.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("T / T-dagger    : 2"));
    assert!(text.contains("CNOT            : 1"));
    assert!(text.contains("technology-ready: false"));
}

#[test]
fn synth_emits_real_cascade() {
    let out = qsyn(&["synth", "8", "2"]); // AND of two variables
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(".numvars 3"));
    assert!(text.contains("t3 x0 x1 x2"));
}

#[test]
fn synth_then_compile_pipeline() {
    let cascade = tmp("maj.real", "");
    let out = qsyn(&[
        "synth",
        "e8", // 3-input majority: rows 3,5,6,7
        "3",
        "--out",
        cascade.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let out = qsyn(&["compile", cascade.to_str().unwrap(), "--device", "ibmqx4"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn compile_pla_through_the_esop_front_end() {
    // A half adder as a PLA: sum = a XOR b, carry = a AND b.
    let input = tmp(
        "half_adder.pla",
        ".i 2\n.o 2\n10 10\n01 10\n11 01\n.e\n",
    );
    let out = qsyn(&["compile", input.to_str().unwrap(), "--device", "ibmqx5"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("verified = Some(true)"));
    assert!(String::from_utf8_lossy(&out.stdout).starts_with("OPENQASM 2.0;"));
}

#[test]
fn dot_device_renders_coupling_map() {
    let out = qsyn(&["dot", "--device", "ibmqx2"]);
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.contains("digraph \"ibmqx2\""));
    assert!(dot.contains("q0 -> q1;"));
    assert_eq!(dot.matches("->").count(), 6, "six couplings");
}

#[test]
fn dot_circuit_renders_qmdd() {
    let input = tmp("cnot.qasm", "qreg q[2]; cx q[0],q[1];");
    let out = qsyn(&["dot", input.to_str().unwrap()]);
    assert!(out.status.success());
    let dot = String::from_utf8_lossy(&out.stdout);
    assert!(dot.contains("digraph qmdd"));
    assert!(dot.contains("x0"));
    // The paper's Fig. 1: three non-terminal vertices for a CNOT.
    assert!(String::from_utf8_lossy(&out.stderr).contains("3 non-terminal nodes"));
}

#[test]
fn stats_reports_depth() {
    let input = tmp("depth.qc", ".v a b\nBEGIN\nT a\nT b\ntof a b\nT b\nEND\n");
    let out = qsyn(&["stats", input.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("depth           : 3"));
    assert!(text.contains("T-depth         : 2"));
}

#[test]
fn draw_renders_ascii_circuit() {
    let input = tmp("bell.qasm", "qreg q[2]; h q[0]; cx q[0],q[1];");
    let out = qsyn(&["draw", input.to_str().unwrap()]);
    assert!(out.status.success());
    let art = String::from_utf8_lossy(&out.stdout);
    assert!(art.contains("q0:") && art.contains('H') && art.contains('⊕'));
    assert!(String::from_utf8_lossy(&out.stderr).contains("depth 2"));
}

#[test]
fn compile_against_custom_device_file() {
    let device = tmp(
        "lab.device",
        "name lab\nqubits 3\nnative cz\ncoupling 0 1\ncoupling 1 2 0.01\n",
    );
    let input = tmp("tof5.real", TOFFOLI_REAL);
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        device.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let qasm = String::from_utf8_lossy(&out.stdout);
    assert!(qasm.contains("cz q["), "CZ-native output:\n{qasm}");
    assert!(!qasm.contains("cx q["), "no CNOT on a CZ device");
    assert!(String::from_utf8_lossy(&out.stderr).contains("verified = Some(true)"));
}

#[test]
fn dot_accepts_device_file() {
    let device = tmp("dotlab.device", "name dotlab\nqubits 2\ncoupling 0 1\n");
    let out = qsyn(&["dot", "--device", device.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("digraph \"dotlab\""));
}

#[test]
fn no_args_prints_usage() {
    let out = qsyn(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn unknown_flag_is_named_in_the_error() {
    let input = tmp("tof6.real", TOFFOLI_REAL);
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        "--frobnicate",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("unknown flag --frobnicate"), "{log}");
}

#[test]
fn value_flag_missing_its_value_is_named() {
    let input = tmp("tof7.real", TOFFOLI_REAL);
    let out = qsyn(&["compile", input.to_str().unwrap(), "--device"]);
    assert_eq!(out.status.code(), Some(2));
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("flag --device requires a value"), "{log}");
}

#[test]
fn compile_trace_file_emits_one_jsonl_event_per_pass() {
    let input = tmp("tof8.real", TOFFOLI_REAL);
    let trace = tmp("tof8.trace.jsonl", "");
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        &format!("--trace={}", trace.to_str().unwrap()),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&trace).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "one event per Fig. 2 pass:\n{text}");
    let mut passes = Vec::new();
    for line in lines {
        let v = qsyn::trace::json::parse(line).expect("well-formed JSON");
        let e = qsyn::trace::PassEvent::from_json(&v).expect("a pass event");
        assert!(e.seconds >= 0.0);
        passes.push(e.pass);
    }
    assert_eq!(passes, qsyn::trace::Pass::FIG2_ORDER);
}

#[test]
fn compile_bare_trace_streams_jsonl_to_stderr() {
    let input = tmp("tof9.real", TOFFOLI_REAL);
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        "--trace",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let log = String::from_utf8_lossy(&out.stderr);
    let events: Vec<&str> = log.lines().filter(|l| l.starts_with('{')).collect();
    assert_eq!(events.len(), 5, "{log}");
    for line in events {
        qsyn::trace::json::parse(line).expect("well-formed JSON on stderr");
    }
}

#[test]
fn check_trace_validates_jsonl_files() {
    let input = tmp("tof11.real", TOFFOLI_REAL);
    let trace = tmp("tof11.trace.jsonl", "");
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        &format!("--trace={}", trace.to_str().unwrap()),
    ]);
    assert!(out.status.success());

    let ok = qsyn(&["check-trace", trace.to_str().unwrap()]);
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));
    assert!(String::from_utf8_lossy(&ok.stderr).contains("5 well-formed pass events"));
    assert!(String::from_utf8_lossy(&ok.stdout).contains("optimize"));

    let broken = tmp("broken.jsonl", "{\"pass\":\"route\"\nnot json\n");
    let bad = qsyn(&["check-trace", broken.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&bad.stderr).contains(":1:"), "names the line");
}

#[test]
fn compile_route_strategy_ctr_is_byte_identical_to_the_default() {
    let input = tmp("tof12.real", TOFFOLI_REAL);
    let default = qsyn(&["compile", input.to_str().unwrap(), "--device", "ibmqx3"]);
    assert!(default.status.success(), "{}", String::from_utf8_lossy(&default.stderr));
    let explicit = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx3",
        "--route-strategy",
        "ctr",
    ]);
    assert!(explicit.status.success(), "{}", String::from_utf8_lossy(&explicit.stderr));
    assert_eq!(default.stdout, explicit.stdout, "ctr selection perturbed the output");
}

#[test]
fn compile_route_strategy_smoke_through_check_trace() {
    // Every selectable strategy compiles, verifies, and leaves a trace
    // whose route event carries a tag `check-trace` resolves by name.
    let input = tmp("tof13.real", TOFFOLI_REAL);
    for (spec, tag) in [
        ("ctr", "ctr"),
        ("lookahead", "lookahead"),
        ("lazy-synth", "lazy-synth"),
        ("auto", "lookahead"), // default TransmonCost hints the lookahead
    ] {
        let trace = tmp(&format!("strategy-{spec}.trace.jsonl"), "");
        let out = qsyn(&[
            "compile",
            input.to_str().unwrap(),
            "--device",
            "ibmqx5",
            "--route-strategy",
            spec,
            &format!("--trace={}", trace.to_str().unwrap()),
        ]);
        assert!(out.status.success(), "{spec}: {}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stderr).contains("verified = Some(true)"));
        let ok = qsyn(&["check-trace", trace.to_str().unwrap()]);
        assert!(ok.status.success(), "{spec}: {}", String::from_utf8_lossy(&ok.stderr));
        let log = String::from_utf8_lossy(&ok.stderr);
        assert!(log.contains(&format!("strategies: {tag}")), "{spec}: {log}");
    }
}

#[test]
fn compile_rejects_unknown_route_strategy() {
    let input = tmp("tof14.real", TOFFOLI_REAL);
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        "--route-strategy",
        "teleport",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("teleport"));
}

#[test]
fn check_trace_rejects_route_events_that_blow_their_own_swap_cap() {
    // Start from a genuine trace, then tamper with the route event so it
    // claims more SWAPs than the budget cap recorded beside them.
    let input = tmp("tof15.real", TOFFOLI_REAL);
    let trace = tmp("tof15.trace.jsonl", "");
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        &format!("--trace={}", trace.to_str().unwrap()),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&trace).unwrap();
    // Prepended keys win: PassEvent::counter returns the first match.
    let tampered: String = text
        .lines()
        .map(|line| {
            if line.contains("\"pass\":\"route\"") {
                line.replacen(
                    "\"counters\":{",
                    "\"counters\":{\"swaps_inserted\":9,\"swap_cap\":1,",
                    1,
                )
            } else {
                line.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(text, tampered, "route line not found to tamper with");
    let bad_file = tmp("tof15.tampered.jsonl", &tampered);
    let bad = qsyn(&["check-trace", bad_file.to_str().unwrap()]);
    assert_eq!(bad.status.code(), Some(1));
    let log = String::from_utf8_lossy(&bad.stderr);
    assert!(log.contains("exceeding the budget cap"), "{log}");
}

#[test]
fn compile_report_renders_the_stage_table() {
    let input = tmp("tof10.real", TOFFOLI_REAL);
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        "--report",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let log = String::from_utf8_lossy(&out.stderr);
    for pass in ["place", "decompose", "route", "optimize"] {
        assert!(log.contains(pass), "missing {pass} row:\n{log}");
    }
    assert!(log.contains("QMDD verification: passed"), "{log}");
}

#[test]
fn report_renders_tables_from_snapshot_and_trace_files() {
    // Trace source: compile with --trace, then `qsyn report` on the JSONL
    // renders per-pass latency rows replayed into histograms.
    let input = tmp("rep1.real", TOFFOLI_REAL);
    let trace = tmp("rep1.trace.jsonl", "");
    let out = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        &format!("--trace={}", trace.to_str().unwrap()),
    ]);
    assert!(out.status.success());
    let report = qsyn(&["report", trace.to_str().unwrap()]);
    assert!(
        report.status.success(),
        "{}",
        String::from_utf8_lossy(&report.stderr)
    );
    let text = String::from_utf8_lossy(&report.stdout);
    for name in ["pass.place_us", "pass.route_us", "p50", "p95", "p99"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
    assert!(
        String::from_utf8_lossy(&report.stderr).contains("trace"),
        "source kind announced on stderr"
    );

    // Snapshot source: a hand-built snapshot renders counters and hit
    // rates; --prometheus switches to the exposition format.
    let snap = tmp(
        "rep1.metrics.json",
        "{\"schema\":\"qsyn-metrics/1\",\
          \"counters\":{\"cache.compile.lookups\":10,\"cache.compile.hits\":4,\
                        \"cache.compile.misses\":6},\
          \"gauges\":{\"serve.queue_depth\":0},\"histograms\":{}}",
    );
    let rendered = qsyn(&["report", snap.to_str().unwrap()]);
    assert!(rendered.status.success());
    let text = String::from_utf8_lossy(&rendered.stdout);
    assert!(text.contains("40.0%"), "hit rate computed:\n{text}");
    let prom = qsyn(&["report", snap.to_str().unwrap(), "--prometheus"]);
    assert!(prom.status.success());
    let text = String::from_utf8_lossy(&prom.stdout);
    assert!(
        text.contains("qsyn_cache_compile_lookups 10"),
        "prometheus exposition:\n{text}"
    );
}

#[test]
fn check_metrics_accepts_valid_snapshots_and_names_violations() {
    let good = tmp(
        "cm-good.json",
        "{\"schema\":\"qsyn-metrics/1\",\
          \"counters\":{\"serve.requests\":3,\"serve.responses_ok\":2,\
                        \"serve.responses_error\":1},\
          \"gauges\":{\"serve.queue_depth\":0},\"histograms\":{}}",
    );
    let ok = qsyn(&["check-metrics", good.to_str().unwrap()]);
    assert!(ok.status.success(), "{}", String::from_utf8_lossy(&ok.stderr));
    assert!(
        String::from_utf8_lossy(&ok.stderr).contains("invariants hold"),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // More responses than requests: a reconciliation violation, named.
    let bad = tmp(
        "cm-bad.json",
        "{\"schema\":\"qsyn-metrics/1\",\
          \"counters\":{\"serve.requests\":1,\"serve.responses_ok\":2,\
                        \"serve.responses_error\":1},\
          \"gauges\":{},\"histograms\":{}}",
    );
    let fail = qsyn(&["check-metrics", bad.to_str().unwrap()]);
    assert!(!fail.status.success(), "violations must exit nonzero");
    let log = String::from_utf8_lossy(&fail.stderr);
    assert!(log.contains("violated"), "{log}");
    assert!(log.contains("responses 3 <= requests 1"), "{log}");

    // A wrong schema tag is a parse error, not a silent pass.
    let wrong = tmp("cm-wrong.json", "{\"schema\":\"other/9\",\"counters\":{}}");
    let rejected = qsyn(&["check-metrics", wrong.to_str().unwrap()]);
    assert!(!rejected.status.success());
}

#[test]
fn stream_verify_jobs_do_not_change_output() {
    // --stream-verify-jobs N is a pure throughput knob: serial and
    // pool-parallel window verification must produce byte-identical QASM
    // and the same windowed-miter verdict.
    let mut qasm = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[10];\n");
    for i in 0..48usize {
        match i % 3 {
            0 => qasm.push_str(&format!("h q[{}];\n", (i * 5 + 1) % 10)),
            1 => qasm.push_str(&format!("cx q[{}],q[{}];\n", (i * 7) % 10, (i * 7 + 3) % 10)),
            _ => qasm.push_str(&format!("t q[{}];\n", (i * 11 + 2) % 10)),
        }
    }
    let input = tmp("streamv.qasm", &qasm);
    let run = |jobs: &str, name: &str| {
        let out_path = tmp(name, "");
        let out = qsyn(&[
            "compile",
            input.to_str().unwrap(),
            "--device",
            "grid:4x4",
            "--stream",
            "6",
            "--stream-verify-jobs",
            jobs,
            "--out",
            out_path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let log = String::from_utf8_lossy(&out.stderr).into_owned();
        (std::fs::read_to_string(&out_path).unwrap(), log)
    };
    let (serial_qasm, serial_log) = run("1", "streamv1.qasm");
    let (par_qasm, par_log) = run("4", "streamv4.qasm");
    assert_eq!(serial_qasm, par_qasm, "parallel verification changed the QASM");
    let verdict_line = |log: &str| {
        log.lines()
            .find(|l| l.contains("verified") || l.contains("equivalence"))
            .map(str::to_string)
    };
    assert_eq!(verdict_line(&serial_log), verdict_line(&par_log));
    assert!(serial_log.contains("windowed-miter"), "{serial_log}");
}

#[test]
fn stream_verify_jobs_flag_is_validated() {
    let input = tmp("tof-svj.real", TOFFOLI_REAL);
    let without_stream = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        "--stream-verify-jobs",
        "2",
    ]);
    assert!(!without_stream.status.success());
    assert!(
        String::from_utf8_lossy(&without_stream.stderr).contains("requires --stream"),
        "{}",
        String::from_utf8_lossy(&without_stream.stderr)
    );
    let zero = qsyn(&[
        "compile",
        input.to_str().unwrap(),
        "--device",
        "ibmqx4",
        "--stream",
        "2",
        "--stream-verify-jobs",
        "0",
    ]);
    assert!(!zero.status.success());
    assert!(
        String::from_utf8_lossy(&zero.stderr).contains("worker count"),
        "{}",
        String::from_utf8_lossy(&zero.stderr)
    );
}
