//! End-to-end tests of the `qsyn serve` daemon: real process invocations
//! over real pipes, mixed batches with injected faults, graceful shutdown,
//! and warm restarts against a persistent disk-cache tier.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const TOFFOLI_QASM: &str =
    "OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[3];\\nccx q[0],q[1],q[2];\\n";

fn toffoli_request(id: &str, extra: &str) -> String {
    format!("{{\"id\":\"{id}\",\"circuit\":\"{TOFFOLI_QASM}\",\"device\":\"ibmqx4\"{extra}}}\n")
}

/// Runs `qsyn serve <args>`, feeds `input` to stdin, closes it (EOF), and
/// collects the process output.
fn serve(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qsyn"))
        .arg("serve")
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("qsyn serve spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("request batch written");
    child.wait_with_output().expect("daemon exits")
}

fn stdout_lines(out: &Output) -> Vec<String> {
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qsyn-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Extracts a string field from a one-line JSON response without a JSON
/// parser (the tests only need exact-match probes).
fn field<'a>(line: &'a str, name: &str) -> Option<&'a str> {
    let probe = format!("\"{name}\":\"");
    let start = line.find(&probe)? + probe.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

#[test]
fn mixed_batch_with_faults_yields_one_response_per_request_and_exit_zero() {
    // Seven requests: three good, one malformed JSON, one schema
    // violation, one injected panic, one injected budget blow. The daemon
    // must answer all seven and exit 0.
    let batch = format!(
        "{}{}not even json\n{}{}{}{}",
        toffoli_request("good-1", ""),
        toffoli_request("good-2", ",\"cost\":\"volume\""),
        "{\"id\":\"schema\",\"circuit\":42,\"device\":\"ibmqx4\"}\n",
        toffoli_request("panics", ",\"inject\":\"verify:panic\",\"emit\":false"),
        toffoli_request("blown", ",\"inject\":\"route:budget\",\"emit\":false"),
        toffoli_request("good-3", ",\"emit\":false"),
    );
    let out = serve(&[], &batch);
    assert!(
        out.status.success(),
        "daemon must exit 0; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 7, "7 requests, 7 responses: {lines:#?}");
    let row = |id: &str| {
        lines
            .iter()
            .find(|l| field(l, "id") == Some(id))
            .unwrap_or_else(|| panic!("no response for {id}: {lines:#?}"))
    };
    for id in ["good-1", "good-2", "good-3"] {
        let l = row(id);
        assert_eq!(field(l, "status"), Some("ok"), "{l}");
        assert!(l.contains("\"verified\":true"), "{l}");
    }
    assert_eq!(field(row("panics"), "kind"), Some("panic"));
    assert_eq!(field(row("blown"), "kind"), Some("compile"));
    assert_eq!(field(row("schema"), "kind"), Some("schema"));
    let parse_rows = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"parse\""))
        .count();
    assert_eq!(parse_rows, 1, "the non-JSON line got a parse row");
    // The summary confirms nothing was silently dropped.
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("served 7 requests"), "{log}");
}

#[test]
fn responses_echo_ids_and_report_valid_json() {
    let out = serve(
        &[],
        &format!(
            "{}{}",
            toffoli_request("alpha", ",\"emit\":false"),
            toffoli_request("beta", ",\"emit\":false")
        ),
    );
    assert!(out.status.success());
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 2);
    // Every row round-trips through the repo's own JSON parser.
    for l in &lines {
        let v = qsyn::trace::json::parse(l).expect("response rows are valid JSON");
        assert!(v.get("id").is_some() && v.get("job").is_some(), "{l}");
    }
    let ids: Vec<_> = lines.iter().filter_map(|l| field(l, "id")).collect();
    assert!(ids.contains(&"alpha") && ids.contains(&"beta"), "{ids:?}");
}

#[test]
fn deadline_expired_requests_get_structured_rows() {
    // A request that stalls its worker past its own deadline: the slow
    // fault sleeps before the deadline check, so the row must be a
    // structured deadline error, not a hang or a dropped response.
    let out = serve(
        &[],
        &toffoli_request("late", ",\"inject\":\"slow:300\",\"deadline_ms\":50,\"emit\":false"),
    );
    assert!(out.status.success());
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 1);
    assert_eq!(field(&lines[0], "kind"), Some("deadline"), "{}", lines[0]);
    assert_eq!(field(&lines[0], "id"), Some("late"));
}

#[test]
fn overload_sheds_requests_with_structured_rows() {
    // One worker, queue cap 1, and a batch of slow requests: the daemon
    // must shed the excess with `overloaded` rows instead of queueing
    // without bound — and still answer every line.
    let n = 8;
    let batch: String = (0..n)
        .map(|i| toffoli_request(&format!("r{i}"), ",\"inject\":\"slow:200\",\"emit\":false"))
        .collect();
    let out = serve(&["--workers", "1", "--queue-cap", "1"], &batch);
    assert!(out.status.success());
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), n, "every request answered: {lines:#?}");
    let overloaded = lines
        .iter()
        .filter(|l| l.contains("\"kind\":\"overloaded\""))
        .count();
    let ok = lines.iter().filter(|l| l.contains("\"status\":\"ok\"")).count();
    assert!(overloaded > 0, "cap 1 with 8 slow requests must shed: {lines:#?}");
    assert!(ok >= 1, "at least the first request completes: {lines:#?}");
    assert_eq!(ok + overloaded, n, "{lines:#?}");
}

#[test]
fn sigterm_drains_in_flight_work_and_exits_zero() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qsyn"))
        .args(["serve", "--workers", "1"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("qsyn serve spawns");
    let mut stdin = child.stdin.take().expect("stdin piped");
    stdin
        .write_all(toffoli_request("before-term", ",\"inject\":\"slow:400\",\"emit\":false").as_bytes())
        .expect("request written");
    stdin.flush().expect("flush");
    // Give the daemon time to admit the request, then TERM it while the
    // compile is still sleeping. Keep stdin open: the daemon must exit
    // from the signal, not from EOF.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let pid = child.id();
    let term = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("kill runs");
    assert!(term.success());
    let out = child.wait_with_output().expect("daemon exits");
    drop(stdin);
    assert!(
        out.status.success(),
        "SIGTERM must drain and exit 0, got {:?}; stderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 1, "in-flight request still answered: {lines:#?}");
    assert_eq!(field(&lines[0], "id"), Some("before-term"));
    assert_eq!(field(&lines[0], "status"), Some("ok"), "{}", lines[0]);
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("terminated by signal"), "{log}");
}

#[test]
fn warm_restart_serves_from_disk_byte_identical() {
    let dir = tmp_dir("warm");
    let dir_s = dir.to_str().unwrap().to_string();

    // Cold daemon: compiles and persists.
    let cold = serve(&["--cache-dir", &dir_s], &toffoli_request("cold", ""));
    assert!(cold.status.success());
    let cold_lines = stdout_lines(&cold);
    assert_eq!(cold_lines.len(), 1);
    assert!(cold_lines[0].contains("\"cache_hit\":false"), "{}", cold_lines[0]);
    let cold_qasm = field(&cold_lines[0], "qasm").expect("cold row carries qasm").to_string();
    let entries = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".qsc"))
        .count();
    assert_eq!(entries, 1, "one persisted entry");

    // Warm daemon, new process: must hit the disk tier and emit
    // byte-identical QASM.
    let warm = serve(&["--cache-dir", &dir_s], &toffoli_request("warm", ""));
    assert!(warm.status.success());
    let warm_lines = stdout_lines(&warm);
    assert_eq!(warm_lines.len(), 1);
    assert!(
        warm_lines[0].contains("\"cache_hit\":true"),
        "restart must hit the disk cache: {}",
        warm_lines[0]
    );
    assert_eq!(
        field(&warm_lines[0], "qasm").expect("warm row carries qasm"),
        cold_qasm,
        "disk hit must be byte-identical to the cold compile"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn poisoned_disk_entry_quarantines_and_recomputes_identically() {
    let dir = tmp_dir("poison");
    let dir_s = dir.to_str().unwrap().to_string();

    // Compile, persist — then poison this request's own entry via the
    // service-boundary fault.
    let cold = serve(
        &["--cache-dir", &dir_s],
        &toffoli_request("seed", ",\"inject\":\"poison-disk\""),
    );
    assert!(cold.status.success());
    let cold_qasm = field(&stdout_lines(&cold)[0], "qasm").unwrap().to_string();

    // Restart: the poisoned entry must be quarantined (never served), the
    // request recomputed byte-identically, and a fresh entry written.
    let warm = serve(&["--cache-dir", &dir_s], &toffoli_request("retry", ""));
    assert!(warm.status.success());
    let warm_lines = stdout_lines(&warm);
    assert_eq!(warm_lines.len(), 1);
    assert!(
        warm_lines[0].contains("\"cache_hit\":false"),
        "poisoned entry must not be served: {}",
        warm_lines[0]
    );
    assert_eq!(field(&warm_lines[0], "qasm").unwrap(), cold_qasm);
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().any(|n| n.ends_with(".quarantined")),
        "poisoned entry kept as evidence: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.ends_with(".qsc")),
        "fresh entry rewritten after recompute: {names:?}"
    );

    // Third run: the rewritten entry serves from disk again.
    let third = serve(&["--cache-dir", &dir_s], &toffoli_request("third", ""));
    assert!(third.status.success());
    assert!(
        stdout_lines(&third)[0].contains("\"cache_hit\":true"),
        "{}",
        stdout_lines(&third)[0]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_metrics_poll_reconciles_with_response_rows() {
    // A mixed batch with a live `{"cmd":"metrics"}` poll in the middle:
    // two good requests, one parse error, one unknown control command.
    // The daemon answers all five lines; the poll row carries a snapshot;
    // the drained metrics file reconciles exactly with the response rows
    // and passes `qsyn check-metrics` — as does the poll row itself.
    let dir = tmp_dir("metrics");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics_path = dir.join("metrics.json");
    let metrics_s = metrics_path.to_str().unwrap().to_string();
    let batch = format!(
        "{}not json at all\n{{\"id\":\"poll\",\"cmd\":\"metrics\"}}\n{{\"cmd\":\"bogus\"}}\n{}",
        toffoli_request("m-1", ",\"emit\":false"),
        toffoli_request("m-2", ",\"emit\":false"),
    );
    let out = serve(&["--workers", "2", "--metrics-file", &metrics_s], &batch);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines = stdout_lines(&out);
    assert_eq!(lines.len(), 5, "5 input lines, 5 rows: {lines:#?}");

    // The poll row is a live snapshot, not a compile response.
    let poll = lines
        .iter()
        .find(|l| field(l, "id") == Some("poll"))
        .expect("poll row present");
    assert_eq!(field(poll, "status"), Some("metrics"), "{poll}");
    let (live, source) = qsyn::report::load(poll).expect("poll row parses as a snapshot");
    assert_eq!(source, qsyn::report::ReportSource::Snapshot);
    assert_eq!(live.counter("serve.metrics_polls"), Some(1));

    // The drained metrics file reconciles with what we saw on stdout.
    let file_text = std::fs::read_to_string(&metrics_path).expect("metrics file written on drain");
    let (snap, _) = qsyn::report::load(&file_text).expect("metrics file parses");
    assert_eq!(snap.counter("serve.requests"), Some(4), "2 ok + 2 errors");
    assert_eq!(snap.counter("serve.responses_ok"), Some(2));
    assert_eq!(snap.counter("serve.responses_error"), Some(2));
    assert_eq!(snap.counter("serve.metrics_polls"), Some(1));
    assert_eq!(snap.gauge("serve.queue_depth"), Some(0), "drained");
    let hit_rows = lines
        .iter()
        .filter(|l| l.contains("\"cache_hit\":true"))
        .count() as u64;
    assert_eq!(
        snap.counter("serve.cache_hits").unwrap_or(0),
        hit_rows,
        "cache_hits counter matches the cache_hit fields on stdout"
    );
    let lat = snap.histogram("serve.latency_us").expect("latency recorded");
    assert_eq!(lat.count, 2, "one latency sample per executed request");

    // Both snapshots pass the schema + invariant checker binary.
    let poll_file = dir.join("poll.json");
    std::fs::write(&poll_file, poll).expect("poll row written");
    for path in [&metrics_path, &poll_file] {
        let check = Command::new(env!("CARGO_BIN_EXE_qsyn"))
            .args(["check-metrics", path.to_str().unwrap()])
            .output()
            .expect("check-metrics runs");
        assert!(
            check.status.success(),
            "{path:?} must validate: {}",
            String::from_utf8_lossy(&check.stderr)
        );
        assert!(
            String::from_utf8_lossy(&check.stderr).contains("invariants hold"),
            "{}",
            String::from_utf8_lossy(&check.stderr)
        );
    }
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("1 metrics polls"), "{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn startup_eviction_trims_the_disk_cache_to_caps() {
    let dir = tmp_dir("evict");
    let dir_s = dir.to_str().unwrap().to_string();

    // Populate the tier with two distinct entries (node_budget is part of
    // the compile-cache key, so these persist separately).
    let seed = serve(
        &["--cache-dir", &dir_s],
        &format!(
            "{}{}",
            toffoli_request("e-1", ""),
            toffoli_request("e-2", ",\"node_budget\":50000"),
        ),
    );
    assert!(seed.status.success());
    let qsc_count = |dir: &PathBuf| {
        std::fs::read_dir(dir)
            .expect("cache dir exists")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".qsc"))
            .count()
    };
    assert_eq!(qsc_count(&dir), 2, "two persisted entries");

    // Restart with a zero byte budget: startup eviction must clear the
    // tier before serving and report what it reclaimed.
    let evict = serve(&["--cache-dir", &dir_s, "--cache-max-bytes", "0"], "");
    assert!(
        evict.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&evict.stderr)
    );
    let log = String::from_utf8_lossy(&evict.stderr);
    assert!(
        log.contains("disk cache: evicted 2 of 2 entries"),
        "startup eviction reported: {log}"
    );
    assert_eq!(qsc_count(&dir), 0, "tier emptied");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cold_cache_stats_still_report_every_disk_counter() {
    // A daemon that serves nothing must still print the full disk-tier
    // stats line — zeros included — so dashboards scraping the summary
    // never see a missing series.
    let dir = tmp_dir("coldstats");
    let dir_s = dir.to_str().unwrap().to_string();
    let out = serve(&["--cache-dir", &dir_s, "--cache-stats"], "");
    assert!(out.status.success());
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("disk tier"), "{log}");
    assert!(log.contains("quarantined"), "{log}");
    assert!(log.contains("evicted ("), "{log}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_session_trace_validates_whole_sessions() {
    let trace = std::env::temp_dir().join(format!("qsyn-serve-trace-{}.jsonl", std::process::id()));
    let trace_s = trace.to_str().unwrap().to_string();
    let trace_flag = format!("--trace={trace_s}");
    let out = serve(
        &[&trace_flag],
        &format!(
            "{}{}{}",
            toffoli_request("t1", ",\"emit\":false"),
            toffoli_request("t2", ",\"inject\":\"verify:panic\",\"emit\":false"),
            toffoli_request("t3", ",\"cost\":\"volume\",\"emit\":false"),
        ),
    );
    assert!(out.status.success());
    assert_eq!(stdout_lines(&out).len(), 3);
    // check-trace must accept the whole session: per-request job ids keep
    // interleaved events attributable, and even the panicked request's
    // partial event stream stays in Fig. 2 order.
    let check = Command::new(env!("CARGO_BIN_EXE_qsyn"))
        .args(["check-trace", &trace_s])
        .output()
        .expect("check-trace runs");
    assert!(
        check.status.success(),
        "session trace must validate: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let _ = std::fs::remove_file(&trace);
}
