//! The paper's blanket claim, as one test: "All outputs were confirmed to
//! be the same function as their original technology-independent
//! description by building the QMDD data structure for each design and
//! testing for equivalence." Compile the full RevLib suite across every
//! IBM device with verification enabled and assert nothing slips.

use qsyn::bench::revlib::REVLIB_BENCHMARKS;
use qsyn::prelude::*;

#[test]
fn every_revlib_mapping_is_qmdd_verified() {
    let mut verified = 0usize;
    let mut na = 0usize;
    for b in REVLIB_BENCHMARKS {
        for device in devices::ibm_devices() {
            match Compiler::new(device.clone()).compile(&b.circuit()) {
                Ok(r) => {
                    assert_eq!(
                        r.verified,
                        Some(true),
                        "{} on {}",
                        b.name,
                        device.name()
                    );
                    verified += 1;
                }
                Err(CompileError::NoAncilla { .. }) | Err(CompileError::TooWide { .. }) => {
                    na += 1;
                }
                Err(e) => panic!("{} on {}: {e}", b.name, device.name()),
            }
        }
    }
    // Table 5 shape: 23 mappings succeed, 2 are N/A (T5 on the 5-qubit
    // machines).
    assert_eq!(verified, 23);
    assert_eq!(na, 2);
}

#[test]
fn stg_small_functions_verified_everywhere() {
    for id in ["1", "3", "0f", "0356"] {
        let cascade = qsyn::bench::stg::stg_by_id(id).unwrap().cascade();
        for device in devices::ibm_devices() {
            if let Ok(r) = Compiler::new(device.clone()).compile(&cascade) {
                assert_eq!(r.verified, Some(true), "#{id} on {}", device.name());
            }
        }
    }
}
