//! Tests pinned to specific quantitative claims of the paper, so the
//! reproduction cannot silently drift away from the publication.

use qsyn::bench::big::BIG_BENCHMARKS;
use qsyn::bench::report::{run_table2, tech_independent_metrics};
use qsyn::bench::revlib::REVLIB_BENCHMARKS;
use qsyn::bench::stg::{stg_by_id, STG_FUNCTIONS};
use qsyn::prelude::*;

/// Section 3 / Table 2: coupling complexities, exact to the printed digits.
#[test]
fn table2_coupling_complexities_exact() {
    for row in run_table2() {
        assert!(
            (row.complexity - row.paper_complexity).abs() < 1e-9,
            "{}: {} vs {}",
            row.name,
            row.complexity,
            row.paper_complexity
        );
    }
}

/// Fig. 5: on ibmqx3, a CNOT q5 -> q10 reroutes via exactly two swaps,
/// first q5<->q12 then q12<->q11, with q11 driving the CNOT.
#[test]
fn fig5_ctr_example_exact() {
    let d = devices::ibmqx3();
    let r = qsyn::core::ctr_route(&d, 5, 10).unwrap();
    assert_eq!(r.path, vec![5, 12, 11]);
    assert_eq!(r.effective_control, 11);
}

/// Section 4: "all SWAP operations will have a maximum gate count of 7,
/// including four H operations and three CNOT operations".
#[test]
fn swap_expansion_bound() {
    for device in devices::all_devices() {
        for (a, b) in device.couplings() {
            let mut out = Circuit::new(device.n_qubits());
            qsyn::core::route::emit_adjacent_swap(&device, a, b, &mut out).unwrap();
            assert!(out.len() <= 7, "{}: swap {a},{b} took {}", device.name(), out.len());
            let stats = out.stats();
            assert_eq!(stats.cnot_count, 3, "three CNOTs per SWAP");
            assert!(stats.other_single_count <= 4, "at most four H");
        }
    }
}

/// Fig. 6: the CNOT orientation reversal identity, QMDD-verified.
#[test]
fn fig6_reversal_identity() {
    let mut fwd = Circuit::new(2);
    fwd.push(Gate::cx(1, 0));
    let mut rev = Circuit::new(2);
    rev.extend([
        Gate::h(0),
        Gate::h(1),
        Gate::cx(0, 1),
        Gate::h(0),
        Gate::h(1),
    ]);
    assert!(circuits_equal(&fwd, &rev));
}

/// Fig. 3: SWAP = three CNOTs, QMDD-verified.
#[test]
fn fig3_swap_identity() {
    let mut s = Circuit::new(2);
    s.push(Gate::swap(0, 1));
    let mut three = Circuit::new(2);
    three.extend([Gate::cx(0, 1), Gate::cx(1, 0), Gate::cx(0, 1)]);
    assert!(circuits_equal(&s, &three));
}

/// Table 5: the benchmark T-counts (14, 21, 35, 70, 28) reproduce exactly
/// on the 16-qubit devices, and T-count is invariant across devices.
#[test]
fn table5_t_counts_exact_and_device_invariant() {
    for b in REVLIB_BENCHMARKS {
        let mut seen = Vec::new();
        for device in devices::ibm_devices() {
            if let Ok(r) = Compiler::new(device).compile(&b.circuit()) {
                // Routing never changes T-count; the paper's column is the
                // mapped (pre-optimization) value.
                seen.push(r.unoptimized.stats().t_count);
                // Optimization may only ever lower it (phase folding).
                assert!(r.optimized.stats().t_count <= b.paper_t, "{}", b.name);
            }
        }
        assert!(!seen.is_empty(), "{}", b.name);
        assert!(
            seen.iter().all(|&t| t == b.paper_t),
            "{}: {seen:?} vs paper {}",
            b.name,
            b.paper_t
        );
    }
}

/// Table 8: the 96-qubit benchmark T-counts (336, 448, 560, 672, 784)
/// reproduce exactly, and optimization improves every benchmark.
#[test]
fn table8_t_counts_exact_and_all_improve() {
    let d = devices::qc96();
    let cost = TransmonCost::default();
    for b in BIG_BENCHMARKS {
        let r = Compiler::new(d.clone())
            .with_verification(Verification::None)
            .compile(&b.circuit())
            .unwrap();
        assert_eq!(r.unoptimized.stats().t_count, b.paper_unopt.0, "{}", b.name);
        assert_eq!(r.optimized.stats().t_count, b.paper_opt.0, "{}", b.name);
        assert!(
            r.percent_cost_decrease(&cost) > 10.0,
            "{}: optimization must bite on the big machine",
            b.name
        );
    }
}

/// Table 8 outputs compute the right classical function: spot-check the
/// compiled T6_b via sparse QMDD basis-column queries (dense expansion is
/// impossible on 96 qubits).
#[test]
fn table8_output_function_spot_check() {
    let b = qsyn::bench::big::big_by_name("T6_b").unwrap();
    let spec = b.circuit();
    let r = Compiler::new(devices::qc96())
        .with_verification(Verification::None)
        .compile(&spec)
        .unwrap();
    let (pkg, root) = qsyn::qmdd::build_circuit_qmdd(&r.optimized);
    let bit = |q: usize| 1u128 << (95 - q);
    // Input with the first gate's controls q1..q5 all ones: target q25
    // must flip; nothing else fires.
    let input = bit(1) | bit(2) | bit(3) | bit(4) | bit(5);
    let col = pkg.basis_column(root, input);
    assert_eq!(col.len(), 1, "permutation circuit");
    assert_eq!(col[0].0, input | bit(25));
    assert!(col[0].1.is_one());
    // All-zeros input is a fixed point.
    let col0 = pkg.basis_column(root, 0);
    assert_eq!(col0, vec![(0, qsyn::gate::C64::ONE)]);
}

/// Section 5: mapping to the unconstrained simulator leaves pre-optimized
/// Clifford+T circuits unchanged (no restrictions -> nothing to reroute,
/// nothing for the optimizer to cut).
#[test]
fn simulator_mapping_is_identity_on_optimal_circuits() {
    // The 15-gate Toffoli network is already optimal under our rewrites.
    let mut c = Circuit::new(3);
    c.extend(qsyn::core::decompose::toffoli_clifford_t(0, 1, 2));
    let r = Compiler::new(Device::simulator(3)).compile(&c).unwrap();
    assert_eq!(r.optimized.gates(), c.gates());
}

/// Section 5: technology mapping expands circuits, sometimes by an order
/// of magnitude, and lower coupling complexity tends to cost more gates.
#[test]
fn mapping_expansion_and_complexity_trend() {
    let f = stg_by_id("0356").unwrap();
    let cascade = f.cascade();
    let (_, tech_ind_gates, _) = tech_independent_metrics(&cascade);
    let mut results: Vec<(f64, usize)> = Vec::new();
    for device in devices::ibm_devices() {
        if let Ok(r) = Compiler::new(device.clone()).compile(&cascade) {
            results.push((device.coupling_complexity(), r.optimized.len()));
        }
    }
    // Expansion: every mapping is larger than the unconstrained form.
    for (_, gates) in &results {
        assert!(*gates > tech_ind_gates, "mapping must expand");
    }
    // Trend: the densest device (0.3) maps more cheaply than the sparsest.
    let best_dense = results
        .iter()
        .filter(|(c, _)| *c > 0.2)
        .map(|(_, g)| *g)
        .min()
        .unwrap();
    let worst_sparse = results
        .iter()
        .filter(|(c, _)| *c < 0.2)
        .map(|(_, g)| *g)
        .max()
        .unwrap();
    assert!(best_dense < worst_sparse, "{results:?}");
}

/// Section 5: most technology-dependent mappings improve under
/// optimization (the paper reports 79% of 94 outputs improving; the suite
/// composition differs slightly here, so assert a clear majority).
#[test]
fn majority_of_mappings_improve() {
    let cost = TransmonCost::default();
    let mut improved = 0usize;
    let mut total = 0usize;
    for f in STG_FUNCTIONS.iter().filter(|f| f.qubits <= 5) {
        let cascade = f.cascade();
        for device in devices::ibm_devices() {
            if let Ok(r) = Compiler::new(device)
                .with_verification(Verification::None)
                .compile(&cascade)
            {
                total += 1;
                if r.percent_cost_decrease(&cost) > 0.0 {
                    improved += 1;
                }
            }
        }
    }
    assert!(total >= 30, "suite too small: {total}");
    assert!(
        improved * 2 > total,
        "only {improved}/{total} mappings improved"
    );
}

/// Section 5 runtime claim: typical benchmarks synthesize in ~10^-2 s and
/// none should take longer than a few seconds (ours run in release-less
/// test builds, so allow generous slack while still catching pathology).
#[test]
fn synthesis_runtime_sanity() {
    let f = stg_by_id("0356").unwrap();
    let start = std::time::Instant::now();
    let _ = Compiler::new(devices::ibmqx5())
        .with_verification(Verification::None)
        .compile(&f.cascade())
        .unwrap();
    assert!(
        start.elapsed().as_secs_f64() < 5.0,
        "synthesis took {:?}",
        start.elapsed()
    );
}

/// The paper's Eqn. 2 arithmetic on its own Table 3 rows: cost columns are
/// consistent with 0.5t + 0.25c + a (cross-checks our cost model).
#[test]
fn eqn2_consistency_with_table3_rows() {
    // Row #1: 7 T, 17 gates, cost 22.25 implies 7 CNOTs; row #07: 16 T,
    // 60 gates, cost 75 implies 28 CNOTs. Integral CNOT counts confirm the
    // formula reading.
    for (t, gates, cost) in [(7.0f64, 17.0, 22.25), (16.0, 60.0, 75.0), (12.0, 42.0, 54.75)] {
        let c: f64 = (cost - 0.5 * t - gates) / 0.25;
        assert!((c - c.round()).abs() < 1e-9, "non-integral CNOT count {c}");
        assert!(c >= 0.0);
    }
}
