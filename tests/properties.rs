//! Property-based tests over the core invariants of the compiler stack:
//! QMDD semantics vs. dense matrices, optimizer soundness, router legality,
//! ESOP coverage, and parser round-trips — on randomized inputs.

use proptest::prelude::*;
use qsyn::prelude::*;
use qsyn::qmdd::build_circuit_qmdd;

/// Strategy: a random circuit over `n` qubits drawn from the full gate
/// vocabulary (including technology-independent gates).
fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0..8usize, 0..n).prop_map(|(op, q)| Gate::single(qsyn::gate::SINGLE_OPS[op], q)),
        (0..n, 0..n)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::cx(a, b)),
        (0..n, 0..n)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::cz(a, b)),
        (0..n, 0..n)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::swap(a, b)),
        (0..n, 0..n, 0..n)
            .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c)
            .prop_map(|(a, b, c)| Gate::toffoli(a, b, c)),
    ];
    proptest::collection::vec(gate, 0..max_len)
        .prop_map(move |gates| Circuit::from_gates(n, gates))
}

/// Strategy: a circuit restricted to technology-ready gates.
fn arb_tech_ready(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        (0..8usize, 0..n).prop_map(|(op, q)| Gate::single(qsyn::gate::SINGLE_OPS[op], q)),
        (0..n, 0..n)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Gate::cx(a, b)),
    ];
    proptest::collection::vec(gate, 0..max_len)
        .prop_map(move |gates| Circuit::from_gates(n, gates))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The QMDD of any circuit expands to exactly its dense unitary.
    #[test]
    fn qmdd_matches_dense_matrix(c in arb_circuit(4, 12)) {
        let (pkg, e) = build_circuit_qmdd(&c);
        prop_assert!(pkg.to_matrix(e).approx_eq(&c.to_matrix()));
    }

    /// A circuit composed with its inverse is the identity, canonically.
    #[test]
    fn circuit_times_inverse_is_identity(c in arb_circuit(4, 14)) {
        let mut both = c.clone();
        both.append(&c.inverse());
        prop_assert!(circuits_equal(&both, &Circuit::new(4)));
    }

    /// The local optimizer preserves the exact unitary (QMDD equality) and
    /// never increases the Eqn. 2 cost.
    #[test]
    fn optimizer_is_sound_and_monotone(c in arb_tech_ready(4, 30)) {
        let cost = TransmonCost::default();
        let o = qsyn::core::optimize(&c, None, &cost);
        prop_assert!(circuits_equal(&c, &o));
        prop_assert!(cost.circuit_cost(&o) <= cost.circuit_cost(&c) + 1e-9);
    }

    /// The optimizer is idempotent: a second run finds nothing further.
    #[test]
    fn optimizer_is_idempotent(c in arb_tech_ready(4, 25)) {
        let cost = TransmonCost::default();
        let once = qsyn::core::optimize(&c, None, &cost);
        let twice = qsyn::core::optimize(&once, None, &cost);
        prop_assert_eq!(once.gates(), twice.gates());
    }

    /// The persistent-layout router preserves semantics on random
    /// technology-ready circuits across devices.
    #[test]
    fn persistent_router_is_sound(c in arb_tech_ready(5, 12)) {
        use qsyn::core::{route_circuit_persistent, RoutingObjective};
        for d in [devices::ibmqx2(), devices::ibmqx5()] {
            let r = route_circuit_persistent(&c, &d, RoutingObjective::FewestSwaps).unwrap();
            prop_assert!(circuits_equal(&c, &r), "{}", d.name());
        }
    }

    /// The full pipeline preserves semantics and emits only legal CNOTs,
    /// for every random circuit and every 5-qubit device.
    #[test]
    fn pipeline_output_is_legal_and_equivalent(c in arb_circuit(4, 8)) {
        for device in [devices::ibmqx2(), devices::ibmqx4()] {
            match Compiler::new(device.clone()).compile(&c) {
                Ok(r) => {
                    prop_assert_eq!(r.verified, Some(true));
                    for g in r.optimized.gates() {
                        if let Gate::Cx { control, target } = g {
                            prop_assert!(device.has_coupling(*control, *target));
                        }
                        prop_assert!(g.is_technology_ready());
                    }
                }
                Err(CompileError::NoAncilla { .. }) => {} // legitimate N/A
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
    }

    /// The miter equivalence check agrees with the canonical check.
    #[test]
    fn miter_agrees_with_canonical(a in arb_circuit(3, 8), b in arb_circuit(3, 8)) {
        let canon = equivalent(&a, &b).equivalent;
        let miter = equivalent_miter(&a, &b).equivalent;
        prop_assert_eq!(canon, miter);
    }

    /// Minimized ESOPs cover their truth tables for random functions.
    #[test]
    fn esop_minimization_covers(bits in 0u64..65536) {
        let tt = TruthTable::from_fn(4, |i| bits >> i & 1 == 1);
        let esop = Esop::minimized(&tt);
        prop_assert_eq!(esop.truth_table(), tt);
    }

    /// Synthesized single-target gates compute `y ^= f(x)` for random f.
    #[test]
    fn single_target_synthesis_is_correct(bits in 0u64..65536) {
        let tt = TruthTable::from_fn(4, |i| bits >> i & 1 == 1);
        let c = synthesize_single_target(&tt);
        for x in 0..16u64 {
            prop_assert_eq!(c.permute_basis(x << 1), x << 1 | tt.eval(x) as u64);
        }
    }

    /// QASM round-trips preserve the gate list exactly.
    #[test]
    fn qasm_round_trip(c in arb_circuit(4, 15)) {
        let qasm = c.to_qasm().unwrap();
        let parsed = Circuit::from_qasm(&qasm).unwrap();
        prop_assert_eq!(parsed.gates(), c.gates());
    }

    /// `.qc` round-trips preserve the gate list exactly.
    #[test]
    fn qc_round_trip(c in arb_circuit(4, 15)) {
        let qc = c.to_qc();
        let parsed = Circuit::from_qc(&qc).unwrap();
        prop_assert_eq!(parsed.gates(), c.gates());
    }

    /// CTR always finds a path on a connected device, the path walks real
    /// couplings, and never steps on the target.
    #[test]
    fn ctr_paths_are_valid_walks(control in 0usize..16, target in 0usize..16) {
        prop_assume!(control != target);
        let d = devices::ibmqx5();
        let route = qsyn::core::ctr_route(&d, control, target).unwrap();
        prop_assert_eq!(*route.path.first().unwrap(), control);
        for w in route.path.windows(2) {
            prop_assert!(d.are_adjacent(w[0], w[1]));
        }
        prop_assert!(!route.path.contains(&target));
        prop_assert!(d.are_adjacent(route.effective_control, target));
    }

    /// Every combination of pipeline strategies produces a verified,
    /// legal mapping of random circuits.
    #[test]
    fn strategy_matrix_is_sound(c in arb_circuit(4, 6)) {
        for swaps in [SwapStrategy::ReturnControl, SwapStrategy::PersistentLayout] {
            for decompose in [DecomposeStrategy::Exact, DecomposeStrategy::RelativePhase] {
                match Compiler::new(devices::ibmqx5())
                    .with_swap_strategy(swaps)
                    .with_decompose_strategy(decompose)
                    .compile(&c)
                {
                    Ok(r) => {
                        prop_assert_eq!(r.verified, Some(true), "{:?}/{:?}", swaps, decompose);
                        for g in r.optimized.gates() {
                            if let Gate::Cx { control, target } = g {
                                prop_assert!(devices::ibmqx5().has_coupling(*control, *target));
                            }
                        }
                    }
                    Err(CompileError::NoAncilla { .. }) => {}
                    Err(e) => prop_assert!(false, "unexpected: {e}"),
                }
            }
        }
    }

    /// MMD synthesis realizes arbitrary permutations of 3-line registers.
    #[test]
    fn mmd_synthesis_is_correct(seed in 0u64..200) {
        use qsyn::esop::{synthesize_permutation, Permutation};
        // Fisher-Yates from the seed.
        let mut map: Vec<u64> = (0..8).collect();
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(99);
        for i in (1..8usize).rev() {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            map.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let p = Permutation::new(3, map).unwrap();
        let c = synthesize_permutation(&p);
        for x in 0..8u64 {
            prop_assert_eq!(c.permute_basis(x), p.apply(x));
        }
    }

    /// Fidelity-objective routing yields circuits equivalent to hop-count
    /// routing, for random error annotations.
    #[test]
    fn routing_objectives_agree_semantically(
        control in 0usize..16,
        target in 0usize..16,
        noise_seed in 0u64..50,
    ) {
        prop_assume!(control != target);
        use qsyn::core::{emit_cnot_with, RoutingObjective};
        let mut d = devices::ibmqx5();
        let mut s = noise_seed.wrapping_mul(0x2545f4914f6cdd1d).wrapping_add(3);
        let pairs: Vec<(usize, usize)> = d.couplings().collect();
        for (c, t) in pairs {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            d.set_cnot_error(c, t, (s % 100) as f64 / 1000.0);
        }
        let mut fast = Circuit::new(16);
        emit_cnot_with(&d, control, target, RoutingObjective::FewestSwaps, &mut fast).unwrap();
        let mut clean = Circuit::new(16);
        emit_cnot_with(&d, control, target, RoutingObjective::HighestFidelity, &mut clean)
            .unwrap();
        prop_assert!(circuits_equal(&fast, &clean));
    }

    /// The DD simulator agrees with dense state vectors on random
    /// technology-ready circuits.
    #[test]
    fn dd_simulator_matches_dense(c in arb_tech_ready(4, 20)) {
        let mut sim = Simulator::new(4);
        sim.run(&c);
        let mut dense = vec![C64::ZERO; 16];
        dense[0] = C64::ONE;
        c.apply_to_state(&mut dense);
        for (b, expected) in dense.iter().enumerate() {
            prop_assert!(sim.amplitude(b as u128).approx_eq(*expected), "basis {b}");
        }
    }

    /// PLA planes with OR semantics synthesize circuits computing exactly
    /// the covered functions.
    #[test]
    fn pla_synthesis_is_correct(rows in proptest::collection::vec((0u32..16, 0u32..16, 1u32..4), 1..6)) {
        let mut src = String::from(".i 4\n.o 2\n");
        for (care, pol, outs) in &rows {
            for v in 0..4 {
                src.push(match (care >> v & 1, pol >> v & 1) {
                    (0, _) => '-',
                    (_, 1) => '1',
                    _ => '0',
                });
            }
            src.push(' ');
            for k in 0..2 {
                src.push(if outs >> k & 1 == 1 { '1' } else { '0' });
            }
            src.push('\n');
        }
        let pla = parse_pla(&src).unwrap();
        let c = pla.synthesize();
        for x in 0..16u64 {
            let out = c.permute_basis(x << 2);
            let o0 = pla.output_table(0).eval(x) as u64;
            let o1 = pla.output_table(1).eval(x) as u64;
            prop_assert_eq!(out, x << 2 | o0 << 1 | o1);
        }
    }

    /// Random devices round-trip through the textual description format.
    #[test]
    fn device_description_round_trips(
        n in 2usize..10,
        edges in proptest::collection::vec((0usize..10, 0usize..10, 0u8..2), 1..20),
    ) {
        use qsyn::arch::{device_description, parse_device};
        let pairs: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(a, b, _)| (a % n, b % n))
            .filter(|&(a, b)| a != b)
            .collect();
        prop_assume!(!pairs.is_empty());
        let mut d = Device::from_pairs("randdev", n, pairs.clone());
        // Annotate a few couplings.
        for (i, &(a, b)) in pairs.iter().enumerate() {
            if i % 2 == 0 {
                d.set_cnot_error(a, b, 0.01 + i as f64 * 0.001);
            }
        }
        let again = parse_device(&device_description(&d)).unwrap();
        prop_assert_eq!(d, again);
    }

    /// ASCII drawing never panics and mentions every line label.
    #[test]
    fn draw_is_total(c in arb_circuit(4, 20)) {
        let art = c.draw();
        for q in 0..4 {
            let label = format!("q{q}:");
            prop_assert!(art.contains(&label));
        }
    }

    /// Statevector simulation agrees with permute_basis on classical
    /// circuits.
    #[test]
    fn classical_simulation_agrees(seed in 0u64..500) {
        // Derive a deterministic classical circuit from the seed.
        let mut gates = Vec::new();
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..8 {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let a = (s % 4) as usize;
            let b = ((s >> 8) % 4) as usize;
            let c = ((s >> 16) % 4) as usize;
            match s % 3 {
                0 => gates.push(Gate::x(a)),
                1 if a != b => gates.push(Gate::cx(a, b)),
                2 if a != b && b != c && a != c => gates.push(Gate::toffoli(a, b, c)),
                _ => {}
            }
        }
        let circuit = Circuit::from_gates(4, gates);
        let m = circuit.to_matrix();
        for input in 0..16u64 {
            let out = circuit.permute_basis(input);
            prop_assert!(m[(out as usize, input as usize)].is_one());
        }
    }
}
