//! Cross-crate integration tests: classical specification -> ESOP front-end
//! -> technology mapping -> QMDD verification, across the device library.

use qsyn::prelude::*;

/// Full pipeline for a handful of classical functions on every IBM device:
/// synthesize, compile, verify, and re-parse the QASM output.
#[test]
fn classical_function_to_verified_qasm_on_every_device() {
    let functions: Vec<(&str, TruthTable)> = vec![
        ("and3", TruthTable::from_fn(3, |x| x == 0b111)),
        ("parity", TruthTable::from_fn(3, |x| x.count_ones() % 2 == 1)),
        ("majority", TruthTable::from_fn(3, |x| x.count_ones() >= 2)),
    ];
    for (name, tt) in &functions {
        let cascade = synthesize_single_target(tt);
        for device in devices::ibm_devices() {
            let r = Compiler::new(device.clone())
                .compile(&cascade)
                .unwrap_or_else(|e| panic!("{name} on {}: {e}", device.name()));
            assert_eq!(r.verified, Some(true), "{name} on {}", device.name());
            assert!(r.optimized.is_technology_ready());
            for g in r.optimized.gates() {
                if let Gate::Cx { control, target } = g {
                    assert!(device.has_coupling(*control, *target));
                }
            }
            // The emitted QASM parses back to an equivalent circuit.
            let qasm = r.optimized.to_qasm().unwrap();
            let parsed = Circuit::from_qasm(&qasm).unwrap();
            assert!(circuits_equal(&r.optimized, &parsed));
        }
    }
}

/// The mapped circuit computes the same classical function: check by
/// explicit state-vector simulation, independent of the QMDD machinery.
#[test]
fn mapped_circuit_computes_the_function() {
    let tt = TruthTable::from_fn(3, |x| (x * 3 + 1) % 7 < 3);
    let cascade = synthesize_single_target(&tt);
    let r = Compiler::new(devices::ibmqx2()).compile(&cascade).unwrap();
    let n = r.optimized.n_qubits();
    for x in 0..8u64 {
        let mut state = vec![C64::ZERO; 1 << n];
        let input = (x << 1) << (n - 4); // vars on lines 0-2, target line 3
        state[input as usize] = C64::ONE;
        r.optimized.apply_to_state(&mut state);
        let expected = (input | (tt.eval(x) as u64) << (n - 4)) as usize;
        assert!(
            state[expected].abs() > 0.999,
            "x={x}: amplitude {}",
            state[expected].abs()
        );
    }
}

/// `.real` input (the RevLib path) through the compiler.
#[test]
fn real_format_input_end_to_end() {
    let src = "\
.version 2.0
.numvars 4
.variables a b c d
.begin
t1 a
t2 a b
t3 a b c
t4 a b c d
f2 a d
f3 b c d
.end
";
    let circuit = Circuit::from_real(src).unwrap();
    let r = Compiler::new(devices::ibmqx5()).compile(&circuit).unwrap();
    assert_eq!(r.verified, Some(true));
}

/// `.qc` input (the single-target-gate path) through the compiler.
#[test]
fn qc_format_input_end_to_end() {
    let src = ".v a b c\nBEGIN\nH c\nT a\ntof a b c\nT* a\nS b\ntof b c\nEND\n";
    let circuit = Circuit::from_qc(src).unwrap();
    let r = Compiler::new(devices::ibmqx4()).compile(&circuit).unwrap();
    assert_eq!(r.verified, Some(true));
}

/// QASM input through the compiler.
#[test]
fn qasm_format_input_end_to_end() {
    let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\ncreg c[3];\n\
               h q[0];\nccx q[0],q[1],q[2];\ncz q[1],q[2];\nswap q[0],q[2];\n";
    let circuit = Circuit::from_qasm(src).unwrap();
    let r = Compiler::new(devices::ibmq_16()).compile(&circuit).unwrap();
    assert_eq!(r.verified, Some(true));
}

/// Both verification strategies agree with each other on mapped outputs.
#[test]
fn canonical_and_miter_verification_agree() {
    let mut spec = Circuit::new(4);
    spec.push(Gate::toffoli(0, 1, 3));
    spec.push(Gate::h(2));
    spec.push(Gate::cx(3, 2));
    for v in [Verification::Canonical, Verification::Miter] {
        let r = Compiler::new(devices::ibmqx5())
            .with_verification(v)
            .compile(&spec)
            .unwrap();
        assert_eq!(r.verified, Some(true), "{v:?}");
    }
}

/// Compiling the inverse circuit yields the inverse function.
#[test]
fn inverse_circuit_compiles_to_inverse() {
    let mut spec = Circuit::new(3);
    spec.push(Gate::h(0));
    spec.push(Gate::toffoli(0, 1, 2));
    spec.push(Gate::t(1));
    let fwd = Compiler::new(devices::ibmqx4()).compile(&spec).unwrap();
    let bwd = Compiler::new(devices::ibmqx4())
        .compile(&spec.inverse())
        .unwrap();
    let mut both = fwd.optimized.clone();
    both.append(&bwd.optimized);
    assert!(circuits_equal(&both, &Circuit::new(5)));
}

/// The paper's N/A cases: too wide, and T5 with no borrowable line.
#[test]
fn na_cases_error_cleanly() {
    let mut six_wide = Circuit::new(6);
    six_wide.push(Gate::x(5));
    assert!(matches!(
        Compiler::new(devices::ibmqx2()).compile(&six_wide),
        Err(CompileError::TooWide { .. })
    ));

    let mut t5 = Circuit::new(5);
    t5.push(Gate::mct(vec![0, 1, 2, 3], 4));
    assert!(matches!(
        Compiler::new(devices::ibmqx4()).compile(&t5),
        Err(CompileError::NoAncilla { .. })
    ));
}

/// Multi-output synthesis (adder) maps and verifies.
#[test]
fn multi_output_adder_end_to_end() {
    let sum = TruthTable::from_fn(3, |x| x.count_ones() % 2 == 1);
    let carry = TruthTable::from_fn(3, |x| x.count_ones() >= 2);
    let adder = synthesize_multi_output(&[sum, carry]);
    let r = Compiler::new(devices::ibmqx5()).compile(&adder).unwrap();
    assert_eq!(r.verified, Some(true));
}

/// Compilation on the big 96-qubit machine with the miter check.
#[test]
fn qc96_small_workload_verifies() {
    let mut spec = Circuit::new(96);
    spec.push(Gate::mct(vec![1, 2, 3], 25));
    spec.push(Gate::cx(25, 45));
    let r = Compiler::new(devices::qc96()).compile(&spec).unwrap();
    assert_eq!(r.verified, Some(true));
    assert!(r.optimized.len() > 50, "long-range routing must expand");
}

/// The arithmetic workloads flow through every pipeline configuration.
#[test]
fn adder_across_strategies() {
    let adder = qsyn::bench::arith::cuccaro_adder(2); // 6 lines
    for swaps in [SwapStrategy::ReturnControl, SwapStrategy::PersistentLayout] {
        for decompose in [DecomposeStrategy::Exact, DecomposeStrategy::RelativePhase] {
            let r = Compiler::new(devices::ibmqx5())
                .with_swap_strategy(swaps)
                .with_decompose_strategy(decompose)
                .compile(&adder)
                .unwrap();
            assert_eq!(r.verified, Some(true), "{swaps:?}/{decompose:?}");
        }
    }
}

/// Algorithm workloads compile everywhere they fit, and the mapped
/// Bernstein-Vazirani still answers in one query (simulated).
#[test]
fn bernstein_vazirani_mapped_still_works() {
    use qsyn::bench::algorithms::bernstein_vazirani;
    let secret = 0b110u64;
    let bv = bernstein_vazirani(3, secret);
    let r = Compiler::new(devices::ibmqx4()).compile(&bv).unwrap();
    assert_eq!(r.verified, Some(true));
    let mut sim = Simulator::new(5);
    sim.run(&r.optimized);
    let read = (secret as u128) << 2; // query lines on top, 5-qubit device
    assert!(sim.amplitude(read).abs() > 0.999);
}

/// A compiled circuit on qc96 remains exactly the adder, shown by sparse
/// basis-column queries on the 96-qubit register.
#[test]
fn adder_on_qc96_functional_spot_check() {
    use qsyn::bench::arith::{adder_input, adder_output, cuccaro_adder};
    let adder = cuccaro_adder(2); // 6 lines, placed on q0..q5
    let r = Compiler::new(devices::qc96())
        .with_verification(Verification::None)
        .compile(&adder)
        .unwrap();
    let (pkg, root) = qsyn::qmdd::build_circuit_qmdd(&r.optimized);
    for (a, b) in [(1u64, 2u64), (3, 3)] {
        let input = (adder_input(2, a, b, false) as u128) << 90;
        let col = pkg.basis_column(root, input);
        assert_eq!(col.len(), 1);
        let (sum, carry, _) = adder_output(2, (col[0].0 >> 90) as u64);
        assert_eq!(sum, (a + b) % 4, "{a}+{b}");
        assert_eq!(carry, a + b >= 4);
    }
}

/// Degenerate inputs flow through the whole pipeline without surprises.
#[test]
fn degenerate_inputs() {
    // Empty circuit: compiles to an empty, verified identity.
    let empty = Circuit::new(3);
    let r = Compiler::new(devices::ibmqx4()).compile(&empty).unwrap();
    assert!(r.optimized.is_empty());
    assert_eq!(r.verified, Some(true));

    // Single-qubit-only circuit: no routing at all.
    let mut singles = Circuit::new(2);
    singles.push(Gate::h(0));
    singles.push(Gate::t(1));
    let r = Compiler::new(devices::ibmqx2()).compile(&singles).unwrap();
    assert_eq!(r.optimized.len(), 2);
    assert_eq!(r.verified, Some(true));

    // A circuit that optimizes to nothing.
    let mut cancels = Circuit::new(2);
    cancels.push(Gate::cx(0, 1));
    cancels.push(Gate::cx(0, 1));
    let r = Compiler::new(devices::ibmqx2()).compile(&cancels).unwrap();
    assert!(r.optimized.is_empty(), "got {}", r.optimized.len());
    assert_eq!(r.verified, Some(true));
}

/// Constant-true oracle: the tautology cube becomes a bare X and still
/// flows through mapping.
#[test]
fn tautology_oracle_end_to_end() {
    let f = TruthTable::from_fn(3, |_| true);
    let cascade = synthesize_single_target(&f);
    assert_eq!(cascade.gates(), &[Gate::x(3)]);
    let r = Compiler::new(devices::ibmqx5()).compile(&cascade).unwrap();
    assert_eq!(r.verified, Some(true));
    assert_eq!(r.optimized.len(), 1);
}

/// Parser edge cases that should not be fatal.
#[test]
fn parser_edges() {
    // .real informational directives.
    let src = ".version 2.0\n.numvars 2\n.variables a b\n.inputs a b\n\
               .outputs a b\n.constants --\n.garbage --\n.begin\nt2 a b\n.end\n";
    let c = Circuit::from_real(src).unwrap();
    assert_eq!(c.len(), 1);

    // .qc without BEGIN/END markers.
    let c = Circuit::from_qc(".v a b\ntof a b\n").unwrap();
    assert_eq!(c.len(), 1);

    // QASM with statements crammed on one line.
    let c = Circuit::from_qasm("qreg q[2]; h q[0]; cx q[0],q[1]; t q[1];").unwrap();
    assert_eq!(c.len(), 3);
}

/// Greedy placement never breaks correctness on any device.
#[test]
fn greedy_placement_verifies_everywhere() {
    let mut spec = Circuit::new(4);
    spec.push(Gate::toffoli(0, 2, 3));
    spec.push(Gate::cx(3, 1));
    spec.push(Gate::t(0));
    for device in devices::ibm_devices() {
        let r = Compiler::new(device.clone())
            .with_placement(PlacementStrategy::Greedy)
            .compile(&spec)
            .unwrap();
        assert_eq!(r.verified, Some(true), "{}", device.name());
    }
}
