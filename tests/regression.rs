//! Golden regression tests: exact outputs pinned so behavior-visible
//! changes are deliberate, not accidental.

use qsyn::prelude::*;

/// The Clifford+T Toffoli network is a fixed 15-gate sequence.
#[test]
fn golden_toffoli_network() {
    let gates = qsyn::core::decompose::toffoli_clifford_t(0, 1, 2);
    let names: Vec<String> = gates.iter().map(|g| g.to_string()).collect();
    assert_eq!(
        names,
        [
            "H q2",
            "CNOT q1 -> q2",
            "T† q2",
            "CNOT q0 -> q2",
            "T q2",
            "CNOT q1 -> q2",
            "T† q2",
            "CNOT q0 -> q2",
            "T q1",
            "T q2",
            "H q2",
            "CNOT q0 -> q1",
            "T q0",
            "T† q1",
            "CNOT q0 -> q1",
        ]
    );
}

/// Compiling a Toffoli for the unconstrained simulator yields exactly the
/// 15-gate network as QASM.
#[test]
fn golden_simulator_toffoli_qasm() {
    let mut spec = Circuit::new(3).with_name("tof");
    spec.push(Gate::toffoli(0, 1, 2));
    let r = Compiler::new(Device::simulator(3)).compile(&spec).unwrap();
    let qasm = r.optimized.to_qasm().unwrap();
    assert_eq!(
        qasm,
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n// circuit: tof@simulator\n\
         qreg q[3];\ncreg c[3];\n\
         h q[2];\ncx q[1],q[2];\ntdg q[2];\ncx q[0],q[2];\nt q[2];\n\
         cx q[1],q[2];\ntdg q[2];\ncx q[0],q[2];\nt q[1];\nt q[2];\n\
         h q[2];\ncx q[0],q[1];\nt q[0];\ntdg q[1];\ncx q[0],q[1];\n"
    );
}

/// The Fig. 5 reroute emits a fixed 29-gate sequence on ibmqx3.
#[test]
fn golden_fig5_sequence_shape() {
    let d = devices::ibmqx3();
    let mut out = Circuit::new(16);
    qsyn::core::emit_cnot(&d, 5, 10, &mut out).unwrap();
    assert_eq!(out.len(), 29, "4 swaps x 7 + 1 CNOT");
    let s = out.stats();
    assert_eq!(s.cnot_count, 13, "4 x 3 + 1 CNOTs");
    assert_eq!(s.other_single_count, 16, "4 x 4 Hadamards");
    // The executing CNOT is exactly q11 -> q10, dead center.
    assert_eq!(out.gates()[14], Gate::cx(11, 10));
    // Swap-back: the first 14 gates (swap out) and the last 14 (swap back)
    // are mutually inverse as circuits.
    let forward = Circuit::from_gates(16, out.gates()[..14].to_vec());
    let backward = Circuit::from_gates(16, out.gates()[15..].to_vec());
    assert!(circuits_equal(&forward.inverse(), &backward));
}

/// The V-chain for a 4-control MCT is a fixed 8-Toffoli sequence.
#[test]
fn golden_v_chain_structure() {
    let gates = qsyn::core::mct_to_toffolis(&[0, 1, 2, 3], 4, &[5, 6]).unwrap();
    let names: Vec<String> = gates.iter().map(|g| g.to_string()).collect();
    let half = [
        "T3(q3, q6 -> q4)",
        "T3(q2, q5 -> q6)",
        "T3(q0, q1 -> q5)",
        "T3(q2, q5 -> q6)",
    ];
    let expected: Vec<&str> = half.iter().chain(half.iter()).copied().collect();
    assert_eq!(names, expected);
}

/// Table 2 numbers, printed to six decimals, are stable.
#[test]
fn golden_table2_rendering() {
    let text = qsyn::bench::report::render_table2(&qsyn::bench::report::run_table2());
    assert!(text.contains("| ibmqx2 | 5 | 0.300000 | 0.300000 |"));
    assert!(text.contains("| ibmqx3 | 16 | 0.083333 | 0.083333 |"));
    assert!(text.contains("| ibmqx5 | 16 | 0.091667 | 0.091667 |"));
    assert!(text.contains("| ibmq_16 | 14 | 0.098901 | 0.098901 |"));
}

/// The #1 single-target-gate cascade is deterministic.
#[test]
fn golden_stg_1_cascade() {
    let c = qsyn::bench::stg::stg_by_id("1").unwrap().cascade();
    // Table id "1" = minterm 0 of two variables, i.e. NOR: an X-wrapped
    // Toffoli.
    assert_eq!(
        c.gates(),
        &[
            Gate::x(0),
            Gate::x(1),
            Gate::toffoli(0, 1, 2),
            Gate::x(0),
            Gate::x(1),
        ]
    );
}

/// Device descriptions round-trip to a canonical text form.
#[test]
fn golden_device_description() {
    let d = devices::ibmqx2();
    let text = qsyn::arch::device_description(&d);
    assert_eq!(
        text,
        "name ibmqx2\nqubits 5\nnative cnot\n\
         coupling 0 1\ncoupling 0 2\ncoupling 1 2\ncoupling 3 2\ncoupling 3 4\ncoupling 4 2\n"
    );
}

/// The relative-phase Toffoli word is the fixed 9-gate RCCX.
#[test]
fn golden_rccx_word() {
    let names: Vec<String> = qsyn::core::rccx(0, 1, 2)
        .iter()
        .map(|g| g.to_string())
        .collect();
    assert_eq!(
        names,
        [
            "H q2",
            "T q2",
            "CNOT q0 -> q2",
            "T† q2",
            "CNOT q1 -> q2",
            "T q2",
            "CNOT q0 -> q2",
            "T† q2",
            "H q2",
        ]
    );
}
