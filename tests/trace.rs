//! Integration tests for the pass-level observability layer: the trace
//! events the compiler emits, their ordering, their cost accounting, the
//! JSONL round trip, and the zero-cost guarantee of [`NullSink`].

use qsyn::prelude::*;
use qsyn::trace::json;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Two Toffolis on non-adjacent lines: exercises placement, Barenco +
/// Clifford+T decomposition, CTR routing, optimization and verification.
fn spec() -> Circuit {
    let mut c = Circuit::new(4);
    c.push(Gate::toffoli(0, 1, 3));
    c.push(Gate::toffoli(1, 2, 0));
    c
}

#[test]
fn events_follow_the_fig2_pipeline_order() {
    let r = Compiler::new(devices::ibmqx5()).compile(&spec()).unwrap();
    let m = r.metrics();
    let order: Vec<Pass> = m.events.iter().map(|e| e.pass).collect();
    assert_eq!(order, Pass::FIG2_ORDER);
    assert_eq!(m.verified, Some(true));
    assert!(m.total_seconds > 0.0);
    // Snapshots chain: each pass starts from its predecessor's output.
    for w in m.events.windows(2) {
        assert_eq!(w[0].output, w[1].input);
    }
}

#[test]
fn cost_deltas_telescope_to_the_reported_decrease() {
    let cost = TransmonCost::default();
    let r = Compiler::new(devices::ibmqx5()).compile(&spec()).unwrap();
    let m = r.metrics();

    // The per-pass deltas telescope: their sum is spec cost minus final
    // cost (routing's delta is negative — it *adds* cost; optimization's
    // is positive).
    let sum: f64 = m.events.iter().map(|e| e.cost_delta()).sum();
    let first = m.events.first().unwrap();
    let last = m.events.last().unwrap();
    assert!((sum - (first.cost_in - last.cost_out)).abs() < 1e-9);

    // The optimize pass accounts for exactly the percent decrease the
    // result reports against the same cost model.
    let opt = m.pass(Pass::Optimize).unwrap();
    let pct = opt.cost_delta() / opt.cost_in * 100.0;
    assert!((pct - r.percent_cost_decrease(&cost)).abs() < 1e-9);
    assert!((m.percent_cost_decrease() - pct).abs() < 1e-9);

    // And the optimize costs are the unoptimized/optimized circuit costs.
    assert!((opt.cost_in - cost.circuit_cost(&r.unoptimized)).abs() < 1e-9);
    assert!((opt.cost_out - cost.circuit_cost(&r.optimized)).abs() < 1e-9);
}

/// A `Write` handle into shared memory, so the test can inspect what a
/// [`JsonlSink`] wrote.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_sink_round_trips_every_event() {
    let buf = SharedBuf::default();
    let sink = Arc::new(JsonlSink::new(Box::new(buf.clone())));
    let r = Compiler::new(devices::ibmqx5())
        .with_trace(sink)
        .compile(&spec())
        .unwrap();

    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), r.metrics().events.len());
    for (line, original) in lines.iter().zip(&r.metrics().events) {
        let v = json::parse(line).expect("every line is well-formed JSON");
        let parsed = PassEvent::from_json(&v).expect("every line is a pass event");
        assert_eq!(&parsed, original, "JSONL round trip is lossless");
    }

    // The whole metrics bundle round-trips through JSON too.
    let reparsed = CompileMetrics::parse(&r.metrics().to_json().to_string()).unwrap();
    assert_eq!(&reparsed, r.metrics());
}

#[test]
fn null_sink_results_are_bit_identical_to_untraced() {
    let plain = Compiler::new(devices::ibmqx5()).compile(&spec()).unwrap();
    let nulled = Compiler::new(devices::ibmqx5())
        .with_trace(Arc::new(NullSink))
        .compile(&spec())
        .unwrap();
    assert_eq!(plain.optimized.to_qasm().unwrap(), nulled.optimized.to_qasm().unwrap());
    assert_eq!(plain.unoptimized.to_qasm().unwrap(), nulled.unoptimized.to_qasm().unwrap());
    assert_eq!(plain.verified, nulled.verified);
    // Same events, counters and snapshots; only wall times may differ.
    let (a, b) = (&plain.metrics().events, &nulled.metrics().events);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.pass, y.pass);
        assert_eq!(x.input, y.input);
        assert_eq!(x.output, y.output);
        assert_eq!(x.counters, y.counters);
    }
}

#[test]
fn table_sink_subsumes_the_report_view() {
    let sink = Arc::new(TableSink::new());
    let r = Compiler::new(devices::ibmqx5())
        .with_trace(sink.clone())
        .compile(&spec())
        .unwrap();
    assert_eq!(sink.events(), r.metrics().events);
    let table = sink.render();
    for pass in ["place", "decompose", "route", "optimize", "verify"] {
        assert!(table.contains(pass), "missing {pass} row:\n{table}");
    }
    // The deprecated free-text report and the structured table agree on
    // the headline number.
    let pct = format!("{:.1}%", r.metrics().percent_cost_decrease());
    assert!(r.metrics().render_table().contains(&pct));
}

#[test]
fn route_counters_surface_backend_work() {
    let r = Compiler::new(devices::ibmqx5()).compile(&spec()).unwrap();
    let route = r.metrics().pass(Pass::Route).unwrap();
    let swaps = route.counter("swaps_inserted").unwrap();
    let rerouted = route.counter("gates_rerouted").unwrap();
    assert!(swaps >= 0.0 && rerouted >= 0.0);
    let verify = r.metrics().pass(Pass::Verify).unwrap();
    assert!(verify.counter("unique_nodes").unwrap() > 0.0);
    assert!(verify.counter("cache_lookups").unwrap() > 0.0);
    let rate = verify.counter("cache_hit_rate").unwrap();
    assert!((0.0..=1.0).contains(&rate));
}
