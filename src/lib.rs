//! # qsyn — a technology-dependent quantum logic synthesis tool
//!
//! A Rust reproduction of Smith & Thornton, *"A Quantum Computational
//! Compiler and Design Tool for Technology-Specific Targets"* (ISCA 2019):
//! an end-to-end compiler that maps technology-independent quantum circuits
//! (and classical switching functions) onto real, coupling-map-constrained
//! quantum computers, optimizes them against a quantum cost function, and
//! formally verifies every output with Quantum Multiple-valued Decision
//! Diagrams (QMDDs).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`gate`] — complex arithmetic, dense unitaries, the Table 1 gate set;
//! * [`circuit`] — the circuit IR and the QASM / `.qc` / `.real` formats;
//! * [`qmdd`] — the canonical decision-diagram package and equivalence
//!   checking;
//! * [`arch`] — devices, coupling maps, coupling complexity, cost models;
//! * [`esop`] — the classical-function front-end (ESOP to Toffoli
//!   cascades);
//! * [`core`] — the compiler back-end (decomposition, CTR routing, local
//!   optimization, verification);
//! * [`trace`] — pass-level observability: structured per-pass events,
//!   timing, and pluggable sinks (see `docs/OBSERVABILITY.md`);
//! * [`bench`](mod@crate::bench) — benchmark workloads and the experiment harness that
//!   regenerates every table of the paper.
//!
//! # Quickstart
//!
//! ```
//! use qsyn::prelude::*;
//!
//! // Synthesize a majority-vote function from its truth table...
//! let maj = TruthTable::from_fn(3, |x| x.count_ones() >= 2);
//! let cascade = synthesize_single_target(&maj);
//!
//! // ...compile it for a real device...
//! let result = Compiler::new(devices::ibmqx4()).compile(&cascade)?;
//!
//! // ...and get formally verified, executable OpenQASM.
//! assert_eq!(result.verified, Some(true));
//! let qasm = result.optimized.to_qasm().unwrap();
//! assert!(qasm.starts_with("OPENQASM 2.0;"));
//! # Ok::<(), qsyn::core::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod report;
pub mod serve;

pub use qsyn_arch as arch;
pub use qsyn_bench as bench;
pub use qsyn_circuit as circuit;
pub use qsyn_core as core;
pub use qsyn_esop as esop;
pub use qsyn_gate as gate;
pub use qsyn_qmdd as qmdd;
pub use qsyn_trace as trace;

/// The most commonly used items in one import.
pub mod prelude {
    pub use qsyn_arch::{
        devices, CostModel, Device, FidelityCost, RouteHint, TransmonCost, TwoQubitNative,
        VolumeCost,
    };
    pub use qsyn_circuit::{Circuit, CircuitStats};
    pub use qsyn_core::{
        BudgetResource, CacheMode, CacheStatsSnapshot, CompileBudget, CompileError, CompileResult,
        Compiler, CtrStrategy, DecomposeStrategy, LazySynthStrategy, LookaheadStrategy,
        Optimization, OptimizeConfig, PlacementStrategy, RouteOutcome, RouteRequest,
        RouteStrategyKind, RoutingObjective, RoutingStrategy, SwapStrategy, Verification,
        VerifyMode,
    };
    pub use qsyn_esop::{
        cascade_from_esop, parse_pla, synthesize_multi_output, synthesize_single_target, Cube,
        Esop, Pla, TruthTable,
    };
    pub use qsyn_gate::{Gate, Matrix, SingleOp, C64};
    pub use qsyn_qmdd::{circuits_equal, equivalent, equivalent_miter, Qmdd, Simulator};
    pub use qsyn_trace::{
        CompileMetrics, JsonlSink, NullSink, Pass, PassEvent, TableSink, TraceSink, Verdict,
    };
}
