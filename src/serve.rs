//! The `qsyn serve` daemon loop: JSONL requests in, JSONL responses out.
//!
//! This module is the threading shell around [`qsyn_core::serve`]: a
//! reader thread feeds request lines into a coordinator, the coordinator
//! applies admission control and hands accepted requests to a
//! [`WorkerPool`], and workers send
//! pre-rendered response lines to a single writer thread. The invariants
//! the daemon guarantees, whatever the requests do:
//!
//! * **N responses for N request lines.** Every line — valid, malformed,
//!   rejected for overload, expired in queue, panicked mid-compile —
//!   produces exactly one structured response row.
//! * **The daemon outlives its requests.** Compiles run under
//!   `catch_unwind` ([`qsyn_core::serve::execute`]) and the pool's
//!   workers survive panicking jobs, so one poisoned request cannot take
//!   the service down.
//! * **Graceful shutdown.** On stdin EOF or SIGTERM the daemon stops
//!   accepting, answers any still-queued lines with `shutting-down`
//!   rows, drains in-flight compiles, flushes, and exits 0.
//!
//! Responses are written in **completion order**, not arrival order —
//! clients correlate by the echoed `id` field (that is what it is for).

use qsyn_bench::par::WorkerPool;
use qsyn_core::serve::{
    parse_request, NodeBudgetGate, ServeContext, ServeDefaults, ServeResponse,
};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Set by the SIGTERM handler (installed by the binary); the coordinator
/// polls it between lines and begins a graceful drain when it flips.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Daemon configuration beyond the per-request defaults.
pub struct ServeOptions {
    /// Worker thread count.
    pub workers: usize,
    /// Admission cap: when this many requests are already queued or
    /// compiling, new requests are rejected with `overloaded` rows
    /// instead of being buffered without bound.
    pub queue_cap: usize,
    /// Hard cap on one request line, in bytes.
    pub max_line_bytes: usize,
    /// Per-request defaults and validation limits.
    pub defaults: ServeDefaults,
    /// Shared execution context (disk cache, trace sink, node gate).
    pub disk: Option<Arc<qsyn_core::DiskCache>>,
    /// Trace sink for per-request pass events.
    pub trace: Option<Arc<dyn qsyn_trace::TraceSink>>,
    /// Global in-flight node-budget ceiling.
    pub node_ceiling: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: qsyn_bench::par::default_jobs(),
            queue_cap: 64,
            max_line_bytes: 4 << 20,
            defaults: ServeDefaults::default(),
            disk: None,
            trace: None,
            node_ceiling: None,
        }
    }
}

/// What a serving session did, reported on stderr at exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines read.
    pub requests: u64,
    /// `status: ok` rows written.
    pub ok: u64,
    /// `status: error` rows written (every kind).
    pub errors: u64,
    /// Requests rejected by admission control (subset of `errors`).
    pub overloaded: u64,
    /// Lines answered with `shutting-down` rows during the drain.
    pub shed: u64,
    /// Whether the session ended on SIGTERM rather than EOF.
    pub terminated: bool,
}

/// Runs a serving session over the given byte streams until EOF or
/// SIGTERM, then drains and returns the session summary.
///
/// The reader runs on its own thread (a blocked `read_line` cannot be
/// interrupted portably, so the coordinator must not be the one blocked
/// on it when SIGTERM arrives); `input` therefore needs `Send + 'static`.
pub fn run(
    input: impl BufRead + Send + 'static,
    output: impl Write,
    opts: ServeOptions,
) -> std::io::Result<ServeSummary> {
    let ctx = Arc::new(ServeContext {
        defaults: opts.defaults.clone(),
        disk: opts.disk.clone(),
        trace: opts.trace.clone(),
        gate: opts.node_ceiling.map(|n| Arc::new(NodeBudgetGate::new(n))),
    });
    let pool = WorkerPool::new(opts.workers);
    let mut summary = ServeSummary::default();

    // Reader thread: lines flow through a bounded channel so a fast
    // client cannot buffer unbounded input ahead of admission control.
    let (line_tx, line_rx) = mpsc::sync_channel::<std::io::Result<String>>(opts.queue_cap.max(1));
    let reader = std::thread::Builder::new()
        .name("qsyn-serve-reader".to_string())
        .spawn(move || {
            let mut input = input;
            loop {
                let mut line = String::new();
                match input.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        if line_tx.send(Ok(line)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = line_tx.send(Err(e));
                        break;
                    }
                }
            }
        })
        .expect("spawning reader thread");

    // Response channel: workers send pre-rendered rows; the coordinator
    // owns the output stream and is the only writer.
    let (resp_tx, resp_rx) = mpsc::channel::<ServeResponse>();
    let mut output = output;
    let write_row = |output: &mut dyn Write,
                         summary: &mut ServeSummary,
                         row: &ServeResponse|
     -> std::io::Result<()> {
        if row.is_ok() {
            summary.ok += 1;
        } else {
            summary.errors += 1;
        }
        writeln!(output, "{}", row.render())?;
        output.flush()
    };

    let mut next_job: u64 = 0;
    loop {
        // Deliver any finished responses first so completion latency does
        // not depend on new requests arriving.
        while let Ok(row) = resp_rx.try_recv() {
            write_row(&mut output, &mut summary, &row)?;
        }
        if SHUTDOWN.load(Ordering::SeqCst) {
            summary.terminated = true;
            break;
        }
        let line = match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Ok(line)) => line,
            Ok(Err(e)) => return Err(e),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        if line.trim().is_empty() {
            continue; // blank lines are keep-alive, not requests
        }
        summary.requests += 1;
        let job = next_job;
        next_job += 1;
        let accepted = Instant::now();

        if line.len() > opts.max_line_bytes {
            let row = ServeResponse::error(
                None,
                job,
                "too-large",
                format!(
                    "request line is {} bytes; the daemon caps lines at {}",
                    line.len(),
                    opts.max_line_bytes
                ),
            );
            write_row(&mut output, &mut summary, &row)?;
            continue;
        }
        let req = match parse_request(&line, &opts.defaults) {
            Ok(req) => req,
            Err(e) => {
                let row = ServeResponse::rejection(job, &e);
                write_row(&mut output, &mut summary, &row)?;
                continue;
            }
        };
        // Admission control: shed load instead of queueing without bound.
        if pool.pending() >= opts.queue_cap {
            summary.overloaded += 1;
            let row = ServeResponse::error(
                Some(req.id.clone()),
                job,
                "overloaded",
                format!(
                    "{} requests already in flight (cap {}); retry later",
                    pool.pending(),
                    opts.queue_cap
                ),
            );
            write_row(&mut output, &mut summary, &row)?;
            continue;
        }
        let ctx = Arc::clone(&ctx);
        let resp_tx = resp_tx.clone();
        pool.submit(move || {
            let row = qsyn_core::serve::execute(&req, job, accepted, &ctx);
            // The coordinator may already have exited on a write error;
            // dropping the row is then the only option.
            let _ = resp_tx.send(row);
        });
    }

    // Drain: answer lines already read but not yet admitted with
    // `shutting-down` rows (N in, N out), finish in-flight compiles,
    // deliver their rows, and stop.
    while let Ok(line) = line_rx.try_recv() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        summary.shed += 1;
        let job = next_job;
        next_job += 1;
        let id = qsyn_trace::json::parse(line.trim())
            .ok()
            .and_then(|v| v.get("id").and_then(|id| id.as_str().map(str::to_string)));
        let row = ServeResponse::error(id, job, "shutting-down", "daemon is draining; resubmit");
        write_row(&mut output, &mut summary, &row)?;
    }
    drop(line_rx); // reader unblocks on its next send
    pool.drain();
    drop(resp_tx);
    while let Ok(row) = resp_rx.recv() {
        write_row(&mut output, &mut summary, &row)?;
    }
    pool.shutdown();
    // The reader may still be blocked on read_line (SIGTERM path with the
    // terminal open); it exits on the next line or EOF. Joining would
    // hang, so it is detached by dropping the handle — but on the EOF
    // path it has already finished and the join is immediate.
    if summary.terminated {
        drop(reader);
    } else {
        let _ = reader.join();
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toffoli_line(id: &str) -> String {
        format!(
            "{{\"id\":\"{id}\",\"circuit\":\"OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[3];\\nccx q[0],q[1],q[2];\\n\",\"device\":\"ibmqx4\"}}"
        )
    }

    fn run_session(input: String, opts: ServeOptions) -> (ServeSummary, Vec<String>) {
        let mut out: Vec<u8> = Vec::new();
        let summary = run(std::io::Cursor::new(input), &mut out, opts).expect("session runs");
        let lines = String::from_utf8(out)
            .expect("utf8 output")
            .lines()
            .map(str::to_string)
            .collect();
        (summary, lines)
    }

    #[test]
    fn n_requests_yield_n_responses() {
        let input = format!(
            "{}\n{}\nnot json at all\n{}\n",
            toffoli_line("a"),
            toffoli_line("b"),
            toffoli_line("c")
        );
        let (summary, lines) = run_session(input, ServeOptions::default());
        assert_eq!(summary.requests, 4);
        assert_eq!(lines.len(), 4);
        assert_eq!(summary.ok, 3);
        assert_eq!(summary.errors, 1);
        assert!(!summary.terminated);
        // Every id answered exactly once.
        for id in ["\"id\":\"a\"", "\"id\":\"b\"", "\"id\":\"c\""] {
            assert_eq!(lines.iter().filter(|l| l.contains(id)).count(), 1);
        }
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"parse\""))
                .count(),
            1
        );
    }

    #[test]
    fn blank_lines_are_ignored() {
        let input = format!("\n\n{}\n\n", toffoli_line("only"));
        let (summary, lines) = run_session(input, ServeOptions::default());
        assert_eq!(summary.requests, 1);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn oversized_line_is_rejected_structurally() {
        let opts = ServeOptions {
            max_line_bytes: 128,
            ..ServeOptions::default()
        };
        let input = format!("{}\n", toffoli_line(&"x".repeat(200)));
        let (summary, lines) = run_session(input, opts);
        assert_eq!(summary.errors, 1);
        assert!(lines[0].contains("\"kind\":\"too-large\""), "{}", lines[0]);
    }
}
