//! The `qsyn serve` daemon loop: JSONL requests in, JSONL responses out.
//!
//! This module is the threading shell around [`qsyn_core::serve`]: a
//! reader thread feeds request lines into a coordinator, the coordinator
//! applies admission control and hands accepted requests to a
//! [`WorkerPool`], and workers send
//! pre-rendered response lines to a single writer thread. The invariants
//! the daemon guarantees, whatever the requests do:
//!
//! * **N responses for N request lines.** Every line — valid, malformed,
//!   rejected for overload, expired in queue, panicked mid-compile —
//!   produces exactly one structured response row.
//! * **The daemon outlives its requests.** Compiles run under
//!   `catch_unwind` ([`qsyn_core::serve::execute`]) and the pool's
//!   workers survive panicking jobs, so one poisoned request cannot take
//!   the service down.
//! * **Graceful shutdown.** On stdin EOF or SIGTERM the daemon stops
//!   accepting, answers any still-queued lines with `shutting-down`
//!   rows, drains in-flight compiles, flushes, and exits 0.
//!
//! Responses are written in **completion order**, not arrival order —
//! clients correlate by the echoed `id` field (that is what it is for).
//!
//! The daemon is also a metrics surface. Every session feeds the
//! process-wide registry (`qsyn_trace::metrics`): `serve.requests` /
//! `serve.responses_ok` / `serve.responses_error` / `serve.overloaded` /
//! `serve.shed` counters, a `serve.queue_depth` gauge, and the latency
//! histograms recorded by [`qsyn_core::serve::execute`]. Two surfaces
//! expose it live: `--metrics-file FILE` (periodic atomic snapshot
//! rewrite, final snapshot on drain) and the `{"cmd":"metrics"}` control
//! row, which a client sends over the same JSONL connection to get a
//! `status: metrics` row carrying the snapshot. Control rows are not
//! compile requests — they do not count toward `serve.requests`, so the
//! invariant `serve.requests == serve.responses_ok +
//! serve.responses_error` holds in every drained snapshot
//! (`qsyn check-metrics` verifies exactly this).

use qsyn_bench::par::WorkerPool;
use qsyn_core::serve::{
    parse_request, NodeBudgetGate, ServeContext, ServeDefaults, ServeResponse,
};
use qsyn_trace::json::Value;
use qsyn_trace::metrics;
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Set by the SIGTERM handler (installed by the binary); the coordinator
/// polls it between lines and begins a graceful drain when it flips.
pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Daemon configuration beyond the per-request defaults.
pub struct ServeOptions {
    /// Worker thread count.
    pub workers: usize,
    /// Admission cap: when this many requests are already queued or
    /// compiling, new requests are rejected with `overloaded` rows
    /// instead of being buffered without bound.
    pub queue_cap: usize,
    /// Hard cap on one request line, in bytes.
    pub max_line_bytes: usize,
    /// Per-request defaults and validation limits.
    pub defaults: ServeDefaults,
    /// Shared execution context (disk cache, trace sink, node gate).
    pub disk: Option<Arc<qsyn_core::DiskCache>>,
    /// Trace sink for per-request pass events.
    pub trace: Option<Arc<dyn qsyn_trace::TraceSink>>,
    /// Global in-flight node-budget ceiling.
    pub node_ceiling: Option<usize>,
    /// When set, the daemon rewrites this file with a JSON metrics
    /// snapshot periodically and once more after the drain (atomic
    /// temp-and-rename, so readers never see a torn snapshot).
    pub metrics_file: Option<PathBuf>,
    /// Rewrite cadence for `metrics_file` — also the cadence of the
    /// online disk-cache eviction sweep, which piggybacks this timer.
    pub metrics_interval: Duration,
    /// Disk-cache size cap. When either cap is set (and a disk tier is
    /// configured), the coordinator re-runs the eviction sweep every
    /// `metrics_interval`, so a long-running daemon keeps the tier
    /// within bounds as compiles accumulate — startup eviction alone
    /// only trims the previous run's leftovers.
    pub cache_max_bytes: Option<u64>,
    /// Disk-cache age cap; see `cache_max_bytes`.
    pub cache_max_age: Option<Duration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: qsyn_bench::par::default_jobs(),
            queue_cap: 64,
            max_line_bytes: 4 << 20,
            defaults: ServeDefaults::default(),
            disk: None,
            trace: None,
            node_ceiling: None,
            metrics_file: None,
            metrics_interval: Duration::from_secs(1),
            cache_max_bytes: None,
            cache_max_age: None,
        }
    }
}

/// What a serving session did, reported on stderr at exit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines read.
    pub requests: u64,
    /// `status: ok` rows written.
    pub ok: u64,
    /// `status: error` rows written (every kind).
    pub errors: u64,
    /// Requests rejected by admission control (subset of `errors`).
    pub overloaded: u64,
    /// Lines answered with `shutting-down` rows during the drain.
    pub shed: u64,
    /// `{"cmd":"metrics"}` control rows answered with snapshots.
    pub metrics_polls: u64,
    /// Whether the session ended on SIGTERM rather than EOF.
    pub terminated: bool,
}

// Session-level metrics handles (the per-request histograms live in
// `qsyn_core::serve`); cached so the per-line cost is one atomic add.
macro_rules! session_metric {
    ($fn_name:ident, counter, $name:literal) => {
        fn $fn_name() -> &'static metrics::Counter {
            static CELL: std::sync::OnceLock<Arc<metrics::Counter>> = std::sync::OnceLock::new();
            CELL.get_or_init(|| metrics::global().counter($name))
        }
    };
    ($fn_name:ident, gauge, $name:literal) => {
        fn $fn_name() -> &'static metrics::Gauge {
            static CELL: std::sync::OnceLock<Arc<metrics::Gauge>> = std::sync::OnceLock::new();
            CELL.get_or_init(|| metrics::global().gauge($name))
        }
    };
}

session_metric!(m_requests, counter, "serve.requests");
session_metric!(m_responses_ok, counter, "serve.responses_ok");
session_metric!(m_responses_error, counter, "serve.responses_error");
session_metric!(m_overloaded, counter, "serve.overloaded");
session_metric!(m_shed, counter, "serve.shed");
session_metric!(m_metrics_polls, counter, "serve.metrics_polls");
session_metric!(m_queue_depth, gauge, "serve.queue_depth");

/// Renders the `status: metrics` response row for a `{"cmd":"metrics"}`
/// poll: the full registry snapshot inline, correlated like any other
/// row by `id` and `job`.
fn metrics_row(id: Option<String>, job: u64) -> String {
    Value::Obj(vec![
        (
            "id".to_string(),
            id.map_or(Value::Null, Value::Str),
        ),
        ("job".to_string(), Value::Num(job as f64)),
        ("status".to_string(), Value::Str("metrics".to_string())),
        ("metrics".to_string(), metrics::global().snapshot().to_json()),
    ])
    .to_string()
}

/// Atomically rewrites `path` with the current metrics snapshot: the
/// JSON is written to a temp file next to the target and renamed over
/// it, so a concurrent reader sees the old snapshot or the new one,
/// never a torn file.
fn write_metrics_file(path: &Path) -> std::io::Result<()> {
    let mut text = metrics::global().snapshot().to_json().to_string();
    text.push('\n');
    let tmp = path.with_file_name(format!(
        ".tmp-metrics-{}",
        std::process::id()
    ));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Runs a serving session over the given byte streams until EOF or
/// SIGTERM, then drains and returns the session summary.
///
/// The reader runs on its own thread (a blocked `read_line` cannot be
/// interrupted portably, so the coordinator must not be the one blocked
/// on it when SIGTERM arrives); `input` therefore needs `Send + 'static`.
pub fn run(
    input: impl BufRead + Send + 'static,
    output: impl Write,
    opts: ServeOptions,
) -> std::io::Result<ServeSummary> {
    let ctx = Arc::new(ServeContext {
        defaults: opts.defaults.clone(),
        disk: opts.disk.clone(),
        trace: opts.trace.clone(),
        gate: opts.node_ceiling.map(|n| Arc::new(NodeBudgetGate::new(n))),
    });
    let pool = WorkerPool::new(opts.workers);
    let mut summary = ServeSummary::default();

    // Reader thread: lines flow through a bounded channel so a fast
    // client cannot buffer unbounded input ahead of admission control.
    let (line_tx, line_rx) = mpsc::sync_channel::<std::io::Result<String>>(opts.queue_cap.max(1));
    let reader = std::thread::Builder::new()
        .name("qsyn-serve-reader".to_string())
        .spawn(move || {
            let mut input = input;
            loop {
                let mut line = String::new();
                match input.read_line(&mut line) {
                    Ok(0) => break,
                    Ok(_) => {
                        if line_tx.send(Ok(line)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = line_tx.send(Err(e));
                        break;
                    }
                }
            }
        })
        .expect("spawning reader thread");

    // Response channel: workers send pre-rendered rows; the coordinator
    // owns the output stream and is the only writer.
    let (resp_tx, resp_rx) = mpsc::channel::<ServeResponse>();
    let mut output = output;
    let write_row = |output: &mut dyn Write,
                         summary: &mut ServeSummary,
                         row: &ServeResponse|
     -> std::io::Result<()> {
        if row.is_ok() {
            summary.ok += 1;
            m_responses_ok().inc();
        } else {
            summary.errors += 1;
            m_responses_error().inc();
        }
        writeln!(output, "{}", row.render())?;
        output.flush()
    };

    let mut next_job: u64 = 0;
    let mut last_metrics = Instant::now();
    loop {
        // Deliver any finished responses first so completion latency does
        // not depend on new requests arriving.
        while let Ok(row) = resp_rx.try_recv() {
            write_row(&mut output, &mut summary, &row)?;
        }
        if last_metrics.elapsed() >= opts.metrics_interval {
            if let Some(path) = &opts.metrics_file {
                write_metrics_file(path)?;
            }
            // Online eviction sweep, piggybacking the metrics cadence:
            // deletions land in the `cache.disk.evicted_*` counters. A
            // failed sweep costs capacity enforcement until the next
            // tick, never the daemon.
            if opts.cache_max_bytes.is_some() || opts.cache_max_age.is_some() {
                if let Some(disk) = &ctx.disk {
                    let _ = disk.evict(opts.cache_max_bytes, opts.cache_max_age);
                }
            }
            last_metrics = Instant::now();
        }
        if SHUTDOWN.load(Ordering::SeqCst) {
            summary.terminated = true;
            break;
        }
        let line = match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Ok(line)) => line,
            Ok(Err(e)) => return Err(e),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        if line.trim().is_empty() {
            continue; // blank lines are keep-alive, not requests
        }
        summary.requests += 1;
        let job = next_job;
        next_job += 1;
        let accepted = Instant::now();

        if line.len() > opts.max_line_bytes {
            m_requests().inc();
            let row = ServeResponse::error(
                None,
                job,
                "too-large",
                format!(
                    "request line is {} bytes; the daemon caps lines at {}",
                    line.len(),
                    opts.max_line_bytes
                ),
            );
            write_row(&mut output, &mut summary, &row)?;
            continue;
        }
        // Control rows: a line with a top-level "cmd" key is a directive
        // to the daemon, not a compile request. The substring test is a
        // cheap pre-filter; the parse confirms the key is top-level (a
        // circuit string containing "cmd" falls through to the normal
        // path below).
        if line.contains("\"cmd\"") {
            if let Some(v) = qsyn_trace::json::parse(line.trim()).ok().filter(|v| v.get("cmd").is_some()) {
                let id = v.get("id").and_then(|i| i.as_str().map(str::to_string));
                let cmd = v.get("cmd").and_then(|c| c.as_str()).unwrap_or("");
                if cmd == "metrics" {
                    summary.metrics_polls += 1;
                    m_metrics_polls().inc();
                    writeln!(output, "{}", metrics_row(id, job))?;
                    output.flush()?;
                } else {
                    m_requests().inc();
                    let row = ServeResponse::error(
                        id,
                        job,
                        "bad-value",
                        format!("unknown cmd {cmd:?}; the daemon understands \"metrics\""),
                    );
                    write_row(&mut output, &mut summary, &row)?;
                }
                continue;
            }
        }
        m_requests().inc();
        let req = match parse_request(&line, &opts.defaults) {
            Ok(req) => req,
            Err(e) => {
                let row = ServeResponse::rejection(job, &e);
                write_row(&mut output, &mut summary, &row)?;
                continue;
            }
        };
        // Admission control: shed load instead of queueing without bound.
        if pool.pending() >= opts.queue_cap {
            summary.overloaded += 1;
            m_overloaded().inc();
            let row = ServeResponse::error(
                Some(req.id.clone()),
                job,
                "overloaded",
                format!(
                    "{} requests already in flight (cap {}); retry later",
                    pool.pending(),
                    opts.queue_cap
                ),
            );
            write_row(&mut output, &mut summary, &row)?;
            continue;
        }
        let ctx = Arc::clone(&ctx);
        let resp_tx = resp_tx.clone();
        m_queue_depth().inc();
        pool.submit(move || {
            let row = qsyn_core::serve::execute(&req, job, accepted, &ctx);
            m_queue_depth().dec();
            // The coordinator may already have exited on a write error;
            // dropping the row is then the only option.
            let _ = resp_tx.send(row);
        });
    }

    // Drain: answer lines already read but not yet admitted with
    // `shutting-down` rows (N in, N out), finish in-flight compiles,
    // deliver their rows, and stop.
    while let Ok(line) = line_rx.try_recv() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        summary.shed += 1;
        m_requests().inc();
        m_shed().inc();
        let job = next_job;
        next_job += 1;
        let id = qsyn_trace::json::parse(line.trim())
            .ok()
            .and_then(|v| v.get("id").and_then(|id| id.as_str().map(str::to_string)));
        let row = ServeResponse::error(id, job, "shutting-down", "daemon is draining; resubmit");
        write_row(&mut output, &mut summary, &row)?;
    }
    drop(line_rx); // reader unblocks on its next send
    pool.drain();
    drop(resp_tx);
    while let Ok(row) = resp_rx.recv() {
        write_row(&mut output, &mut summary, &row)?;
    }
    pool.shutdown();
    // Final snapshot after the drain: every in-flight compile has
    // delivered its row, so the queue-depth gauge is back to zero and
    // requests == responses_ok + responses_error holds in the file.
    if let Some(path) = &opts.metrics_file {
        write_metrics_file(path)?;
    }
    // The reader may still be blocked on read_line (SIGTERM path with the
    // terminal open); it exits on the next line or EOF. Joining would
    // hang, so it is detached by dropping the handle — but on the EOF
    // path it has already finished and the join is immediate.
    if summary.terminated {
        drop(reader);
    } else {
        let _ = reader.join();
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toffoli_line(id: &str) -> String {
        format!(
            "{{\"id\":\"{id}\",\"circuit\":\"OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[3];\\nccx q[0],q[1],q[2];\\n\",\"device\":\"ibmqx4\"}}"
        )
    }

    fn run_session(input: String, opts: ServeOptions) -> (ServeSummary, Vec<String>) {
        let mut out: Vec<u8> = Vec::new();
        let summary = run(std::io::Cursor::new(input), &mut out, opts).expect("session runs");
        let lines = String::from_utf8(out)
            .expect("utf8 output")
            .lines()
            .map(str::to_string)
            .collect();
        (summary, lines)
    }

    #[test]
    fn n_requests_yield_n_responses() {
        let input = format!(
            "{}\n{}\nnot json at all\n{}\n",
            toffoli_line("a"),
            toffoli_line("b"),
            toffoli_line("c")
        );
        let (summary, lines) = run_session(input, ServeOptions::default());
        assert_eq!(summary.requests, 4);
        assert_eq!(lines.len(), 4);
        assert_eq!(summary.ok, 3);
        assert_eq!(summary.errors, 1);
        assert!(!summary.terminated);
        // Every id answered exactly once.
        for id in ["\"id\":\"a\"", "\"id\":\"b\"", "\"id\":\"c\""] {
            assert_eq!(lines.iter().filter(|l| l.contains(id)).count(), 1);
        }
        assert_eq!(
            lines
                .iter()
                .filter(|l| l.contains("\"kind\":\"parse\""))
                .count(),
            1
        );
    }

    #[test]
    fn blank_lines_are_ignored() {
        let input = format!("\n\n{}\n\n", toffoli_line("only"));
        let (summary, lines) = run_session(input, ServeOptions::default());
        assert_eq!(summary.requests, 1);
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn metrics_control_row_returns_snapshot() {
        let input = format!(
            "{}\n{{\"id\":\"m1\",\"cmd\":\"metrics\"}}\n{{\"cmd\":\"flush\"}}\n",
            toffoli_line("a")
        );
        let (summary, lines) = run_session(input, ServeOptions::default());
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.metrics_polls, 1);
        assert_eq!(lines.len(), 3);
        let poll = lines
            .iter()
            .find(|l| l.contains("\"status\":\"metrics\""))
            .expect("metrics row present");
        assert!(poll.contains("\"id\":\"m1\""), "{poll}");
        assert!(poll.contains("qsyn-metrics/1"), "{poll}");
        // The snapshot carried inline is a valid metrics document.
        let v = qsyn_trace::json::parse(poll).expect("row parses");
        let snap = metrics::MetricsSnapshot::from_json(v.get("metrics").expect("metrics field"))
            .expect("snapshot parses");
        assert!(snap.counter("serve.metrics_polls").unwrap_or(0) >= 1);
        // Unknown commands get an error row, not silence.
        assert!(
            lines.iter().any(|l| l.contains("\"kind\":\"bad-value\"")),
            "{lines:?}"
        );
    }

    #[test]
    fn metrics_file_is_written_on_drain() {
        let dir = std::env::temp_dir().join(format!("qsyn-serve-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.json");
        let opts = ServeOptions {
            metrics_file: Some(path.clone()),
            ..ServeOptions::default()
        };
        let before = metrics::global().snapshot();
        let (summary, _lines) = run_session(format!("{}\n", toffoli_line("f")), opts);
        assert_eq!(summary.ok, 1);
        let text = std::fs::read_to_string(&path).expect("metrics file written");
        let snap = metrics::MetricsSnapshot::from_json(
            &qsyn_trace::json::parse(&text).expect("file parses"),
        )
        .expect("snapshot parses");
        // Delta over this session: one request, one ok row, queue drained.
        // (The registry is process-global, so other tests in this binary
        // contribute to absolute values; deltas isolate this session.)
        let delta = snap.since(&before);
        assert!(delta.counter("serve.requests").unwrap_or(0) >= 1);
        // Other tests in this binary may have jobs in flight at the
        // moment of the final write, so only presence is checked here;
        // the e2e test (own process) checks the drained value is zero.
        assert!(snap.gauge("serve.queue_depth").is_some());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn online_eviction_sweeps_the_disk_tier_while_serving() {
        // A daemon with caps configured must not wait for a restart to
        // enforce them: the coordinator re-runs the eviction sweep on
        // the metrics cadence, so an over-cap entry planted after
        // startup disappears during the session.
        let dir = std::env::temp_dir().join(format!("qsyn-serve-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let disk = qsyn_core::DiskCache::open(&dir).expect("disk tier opens");
        let planted = dir.join("00000000000000000000000000000000.qsc");
        std::fs::write(&planted, b"stale entry").expect("plant entry");
        let opts = ServeOptions {
            disk: Some(Arc::new(disk)),
            cache_max_bytes: Some(0),
            metrics_interval: Duration::ZERO,
            ..ServeOptions::default()
        };
        let (summary, _lines) = run_session(format!("{}\n", toffoli_line("ev")), opts);
        assert_eq!(summary.ok, 1);
        assert!(
            !planted.exists(),
            "online sweep should have evicted the planted entry"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_line_is_rejected_structurally() {
        let opts = ServeOptions {
            max_line_bytes: 128,
            ..ServeOptions::default()
        };
        let input = format!("{}\n", toffoli_line(&"x".repeat(200)));
        let (summary, lines) = run_session(input, opts);
        assert_eq!(summary.errors, 1);
        assert!(lines[0].contains("\"kind\":\"too-large\""), "{}", lines[0]);
    }
}
