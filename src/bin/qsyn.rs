//! `qsyn` — command-line driver for the technology-dependent quantum
//! logic synthesis tool.
//!
//! ```text
//! qsyn devices
//! qsyn compile <input.{qasm,qc,real}> --device <name> [options]
//! qsyn check <a> <b>
//! qsyn stats <input>
//! qsyn synth <hex-truth-table> <n-vars> [--out file.real]
//! ```
//!
//! Input format is chosen by file extension (`.qasm`, `.qc`, `.real`).
//! `compile` prints technology-dependent OpenQASM 2.0 to stdout (or
//! `--out`), with mapping statistics on stderr — mirroring the paper's
//! Fig. 2 flow ending in "QASM code".

use qsyn::prelude::*;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "qsyn — technology-dependent quantum logic synthesis (Smith & Thornton, ISCA 2019)

USAGE:
  qsyn devices
      List the built-in device library (with coupling complexities and
      supported routing objectives) and the generated device families.

  qsyn compile <input> --device <name> [--out FILE] [--no-opt]
               [--no-verify] [--placement identity|greedy|annealed] [--report]
               [--cost eqn2|volume|fidelity] [--trace[=FILE]]
               [--route-strategy ctr|lookahead|lazy-synth|auto]
               [--deadline SECONDS] [--node-budget NODES] [--strict-verify]
               [--cache off|tables|mem] [--cache-stats] [--repeat N]
               [--stream WINDOW] [--stream-verify-jobs N]
      Map a circuit (.qasm/.qc/.real/.pla) to a device; emit OpenQASM 2.0.
      --report prints a stage-by-stage metrics table on stderr.
      --route-strategy selects the coupling-map router: `ctr` (default,
      the paper's swap-out/swap-back reroute), `lookahead` (SABRE-style
      persistent-layout search scoring SWAPs against upcoming gates),
      `lazy-synth` (lazy CNOT/phase resynthesis skeleton), or `auto`
      (picked from the cost model). Every strategy's output is
      QMDD-verified like any other pass.
      --trace streams one JSON line per compiler pass (wall time, gate/T/
      CNOT counts, cost delta, backend counters) to stderr, or to FILE
      with --trace=FILE.
      --deadline/--node-budget bound the compile's wall clock and QMDD
      arena; exceeding a hard budget exits with a structured error. Under
      the default degraded verification mode an over-budget equivalence
      check walks a retry ladder and reports `unverified` instead of
      failing; --strict-verify makes it a hard error (docs/ROBUSTNESS.md).
      --cache selects the caching layers (docs/PERFORMANCE.md): `tables`
      (default) precomputes routing tables and memoizes MCT cascades —
      byte-identical output, just faster; `mem` adds whole-compile
      memoization; `off` runs the legacy per-gate searches. --cache-stats
      prints per-layer hit/miss totals on stderr. --repeat N compiles the
      same input N times in one process (exercising the caches) and fails
      if any two runs diverge.
      --stream WINDOW compiles the input window by window (WINDOW input
      gates at a time) with a bounded resident circuit, writing QASM
      incrementally — each window is QMDD-verified against its input
      (windowed miter, support-restricted to the window's touched
      qubits), and the trace carries one aggregate route event with
      streaming counters. Identity placement only. --stream-verify-jobs
      N verifies completed windows on N pool workers pipelined behind
      routing (default: available parallelism; 1 = inline; Strict mode
      always verifies inline) — output and verdicts are identical at
      any N.

  qsyn serve [--workers N] [--queue-cap N] [--node-ceiling NODES]
             [--deadline SECONDS] [--node-budget NODES] [--max-swaps N]
             [--cache off|tables|mem] [--cache-dir DIR] [--trace[=FILE]]
             [--max-line-bytes N] [--no-retry] [--no-emit] [--strict-verify]
             [--cache-stats] [--metrics-file FILE]
             [--cache-max-bytes BYTES] [--cache-max-age SECONDS]
      Long-running compilation daemon: one JSON request per stdin line,
      one JSON response per request on stdout (completion order; match
      rows to requests by the echoed `id`). Every request is fault-
      isolated — a panicking or budget-blown compile yields a structured
      error row, never a dead daemon. --queue-cap bounds admitted
      requests (excess gets `overloaded` rows); --deadline/--node-budget
      set per-request defaults (requests may override); --node-ceiling
      caps the summed node budgets of concurrent compiles. --cache-dir
      adds a crash-safe on-disk cache tier under DIR (implies --cache
      mem): results persist across restarts, corrupted entries are
      quarantined and recomputed. An `Unverified` verdict earns one
      automatic retry at a doubled node budget unless --no-retry. On
      stdin EOF or SIGTERM the daemon drains in-flight requests, answers
      unadmitted lines with `shutting-down` rows, and exits 0. See
      docs/ROBUSTNESS.md for the request/response schema.
      --metrics-file FILE rewrites FILE atomically (about once a second,
      and once more on drain) with a JSON metrics snapshot — counters,
      queue-depth gauge, and latency histograms (docs/OBSERVABILITY.md);
      a client on the JSONL connection can instead poll a live snapshot
      with the control row {{\"cmd\":\"metrics\"}}. --cache-max-bytes /
      --cache-max-age evict the oldest --cache-dir entries at startup —
      and then keep sweeping online about once a second while serving —
      until the tier fits the byte cap and nothing exceeds the age cap.

  qsyn report <file> [--prometheus]
      Human metrics table from either input shape (sniffed): a metrics
      snapshot (--metrics-file output or a {{\"cmd\":\"metrics\"}} poll
      row) or a --trace JSONL stream, whose pass events are replayed
      into per-pass and per-strategy histograms. Shows count / mean /
      p50 / p95 / p99 per latency histogram (microseconds) and cache
      hit rates. --prometheus renders a snapshot in Prometheus text
      exposition format instead.

  qsyn check-metrics <file>
      Validate a metrics snapshot: schema tag, histogram internal
      consistency (count equals the sum of its bucket counts, indices
      in range and ascending), cache accounting (hits + misses +
      quarantines == lookups per layer), and serve accounting (rows
      written never exceed requests; a drained snapshot has an empty
      queue). Exits 1 listing every violated invariant.

  qsyn check <a> <b> [--miter] [--ancilla 2,3]
      QMDD formal equivalence check of two circuit files; --miter uses the
      interleaved strategy for wide registers, --ancilla checks partial
      equivalence assuming the listed lines start in |0>.

  qsyn stats <input>
      Gate statistics and Eqn. 2 cost of a circuit file.

  qsyn check-trace <trace.jsonl>
      Validate a --trace JSONL file: every line must be a well-formed
      pass event, and events sharing a sweep job id must follow Fig. 2
      pass order. Route events must carry a known routing-strategy tag
      (when present) and must not report more SWAPs than the budget cap
      recorded in the same event. Prints a per-pass summary; exits 1 on
      malformed input.

  qsyn synth <hex> <n-vars> [--out FILE]
      Synthesize the single-target gate of a control function given as a
      hex truth table; emit a .real reversible cascade.

  qsyn dot --device <name>
  qsyn dot <input>
      Graphviz DOT of a device coupling map (paper Fig. 7 style) or of a
      circuit's QMDD (paper Fig. 1 style).

  qsyn draw <input>
      ASCII rendering of a circuit with ASAP gate layers.

Devices: ibmqx2, ibmqx3, ibmqx4, ibmqx5, ibmq_16, ibmq20, qc96,
simulator:<n>, the generated families lnn:<n>, grid:<w>x<h> and
heavy-hex:<d>, or a path to a .device description file
(name/qubits/native/coupling directives)."
    );
    std::process::exit(2);
}

/// Resolves `--device` values: a library name, `simulator:<n>`, or a path
/// to a `.device` description file.
fn resolve_device(name_or_path: &str) -> Result<Device, String> {
    if let Some(d) = devices::device_by_name(name_or_path) {
        return Ok(d);
    }
    if name_or_path.ends_with(".device") || std::path::Path::new(name_or_path).exists() {
        let src = std::fs::read_to_string(name_or_path)
            .map_err(|e| format!("{name_or_path}: {e}"))?;
        return qsyn::arch::parse_device(&src).map_err(|e| format!("{name_or_path}: {e}"));
    }
    Err(format!(
        "unknown device `{name_or_path}` (library name or .device file)"
    ))
}

fn load_circuit(path: &str) -> Result<Circuit, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed = if path.ends_with(".qc") {
        Circuit::from_qc(&src).map_err(|e| e.to_string())
    } else if path.ends_with(".real") {
        Circuit::from_real(&src).map_err(|e| e.to_string())
    } else if path.ends_with(".pla") {
        // Classical multi-output specification: run the ESOP front-end.
        parse_pla(&src).map(|pla| pla.synthesize())
    } else {
        Circuit::from_qasm(&src).map_err(|e| e.to_string())
    };
    parsed.map_err(|e| format!("{path}: {e}"))
}

/// Strict flag parser: `--flag` (boolean), `--flag value` and
/// `--flag=value` forms. Every flag must be declared in `bool_flags` or
/// `value_flags`; anything else is an error naming the offending flag.
///
/// A flag in both lists takes a value only in the `=` form (`--trace` vs
/// `--trace=FILE`).
type ParsedArgs = (Vec<String>, Vec<(String, String)>);

fn parse_args(
    args: &[String],
    bool_flags: &[&str],
    value_flags: &[&str],
) -> Result<ParsedArgs, String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            if let Some((name, value)) = name.split_once('=') {
                if !value_flags.contains(&name) && !bool_flags.contains(&name) {
                    return Err(format!("unknown flag --{name}"));
                }
                flags.push((name.to_string(), value.to_string()));
            } else if bool_flags.contains(&name) {
                flags.push((name.to_string(), String::new()));
            } else if value_flags.contains(&name) {
                let Some(value) = args.get(i + 1) else {
                    return Err(format!("flag --{name} requires a value"));
                };
                flags.push((name.to_string(), value.clone()));
                i += 1;
            } else {
                return Err(format!("unknown flag --{name}"));
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

/// `parse_args` + uniform error reporting: prints `error: ...` and yields
/// exit code 2 on a bad flag.
macro_rules! parse_or_exit {
    ($args:expr, $bool_flags:expr, $value_flags:expr) => {
        match parse_args($args, $bool_flags, $value_flags) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    };
}

fn cmd_devices() -> ExitCode {
    // Every device supports both routing objectives; fidelity routing uses
    // per-edge calibration when present and a uniform default error
    // otherwise.
    let objectives = |d: &Device| {
        if d.has_error_data() {
            "swaps, fidelity (calibrated)"
        } else {
            "swaps, fidelity (uniform)"
        }
    };
    println!("| device | qubits | couplings | coupling complexity | objectives |");
    println!("|---|---|---|---|---|");
    for d in devices::all_devices() {
        println!(
            "| {} | {} | {} | {:.6} | {} |",
            d.name(),
            d.n_qubits(),
            d.coupling_count(),
            d.coupling_complexity(),
            objectives(&d)
        );
    }
    // The generated families take a size parameter on the command line;
    // one representative instantiation per family shows the shape.
    println!();
    println!("| generated family | example | qubits | couplings | objectives |");
    println!("|---|---|---|---|---|");
    for (family, example) in [
        ("lnn:<n>", "lnn:1024"),
        ("grid:<w>x<h>", "grid:32x32"),
        ("heavy-hex:<d>", "heavy-hex:14"),
    ] {
        let d = devices::device_by_name(example).expect("example family names resolve");
        println!(
            "| {} | {} | {} | {} | {} |",
            family,
            example,
            d.n_qubits(),
            d.coupling_count(),
            objectives(&d)
        );
    }
    println!();
    println!(
        "Generated families accept up to {} qubits; every edge is bidirectional \
         and carries synthetic calibration data.",
        devices::MAX_GENERATED_QUBITS
    );
    ExitCode::SUCCESS
}

fn cmd_compile(args: &[String]) -> ExitCode {
    let (pos, flags) = parse_or_exit!(
        args,
        &["no-opt", "no-verify", "report", "trace", "strict-verify", "cache-stats"],
        &[
            "device",
            "out",
            "placement",
            "cost",
            "route-strategy",
            "deadline",
            "node-budget",
            "cache",
            "repeat",
            "stream",
            "stream-verify-jobs"
        ]
    );
    let [input] = pos.as_slice() else { usage() };
    let Some(device_name) = flag(&flags, "device") else {
        eprintln!("error: --device is required");
        return ExitCode::from(2);
    };
    let device = match resolve_device(device_name) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let device_width = device.n_qubits();
    let circuit = match load_circuit(input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut compiler = Compiler::new(device)
        .with_optimization(flag(&flags, "no-opt").is_none())
        .with_verification(if flag(&flags, "no-verify").is_some() {
            Verification::None
        } else {
            Verification::Auto
        });
    match flag(&flags, "placement") {
        Some("greedy") => compiler = compiler.with_placement(PlacementStrategy::Greedy),
        Some("annealed") => compiler = compiler.with_placement(PlacementStrategy::Annealed),
        Some("identity") | None => {}
        Some(other) => {
            eprintln!("error: unknown placement `{other}`");
            return ExitCode::from(2);
        }
    }
    let cost: Box<dyn CostModel> = match flag(&flags, "cost") {
        Some("volume") => Box::new(VolumeCost),
        Some("fidelity") => Box::new(FidelityCost::default()),
        Some("eqn2") | None => Box::new(TransmonCost::default()),
        Some(other) => {
            eprintln!("error: unknown cost model `{other}`");
            return ExitCode::from(2);
        }
    };
    let eqn2 = TransmonCost::default();
    compiler = compiler.with_cost_model(cost);
    match flag(&flags, "route-strategy") {
        None => {}
        Some(spec) => match RouteStrategyKind::parse(spec) {
            Some(kind) => compiler = compiler.with_route_strategy(kind),
            None => {
                eprintln!(
                    "error: bad --route-strategy `{spec}` (want ctr, lookahead, \
                     lazy-synth or auto)"
                );
                return ExitCode::from(2);
            }
        },
    }
    let mut budget = CompileBudget::default();
    if let Some(spec) = flag(&flags, "deadline") {
        match spec.parse::<f64>() {
            Ok(secs) if secs.is_finite() && secs >= 0.0 => {
                budget = budget.with_deadline(std::time::Duration::from_secs_f64(secs));
            }
            _ => {
                eprintln!("error: bad --deadline `{spec}` (want seconds, e.g. 2.5)");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(spec) = flag(&flags, "node-budget") {
        match spec.parse::<usize>() {
            Ok(nodes) if nodes > 0 => budget = budget.with_node_budget(nodes),
            _ => {
                eprintln!("error: bad --node-budget `{spec}` (want a positive node count)");
                return ExitCode::from(2);
            }
        }
    }
    if flag(&flags, "strict-verify").is_some() {
        budget = budget.with_verify_mode(VerifyMode::Strict);
    }
    compiler = compiler.with_budget(budget);
    match flag(&flags, "cache") {
        None => {}
        Some(spec) => match CacheMode::parse(spec) {
            Some(mode) => compiler = compiler.with_cache(mode),
            None => {
                eprintln!("error: bad --cache `{spec}` (want off, tables or mem)");
                return ExitCode::from(2);
            }
        },
    }
    let repeat = match flag(&flags, "repeat") {
        None => 1usize,
        Some(spec) => match spec.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("error: bad --repeat `{spec}` (want a run count >= 1)");
                return ExitCode::from(2);
            }
        },
    };
    match flag(&flags, "trace") {
        None => {}
        Some("") => {
            compiler = compiler.with_trace(std::sync::Arc::new(JsonlSink::stderr()));
        }
        Some(path) => match JsonlSink::to_file(path) {
            Ok(sink) => compiler = compiler.with_trace(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        },
    }

    // --stream N compiles window by window with a bounded resident
    // circuit, writing QASM incrementally — the path for gate streams too
    // large to hold in memory. Placement is identity by construction and
    // whole-compile repetition does not apply.
    if let Some(spec) = flag(&flags, "stream") {
        let window = match spec.parse::<usize>() {
            Ok(w) if w >= 1 => w,
            _ => {
                eprintln!("error: bad --stream `{spec}` (want a window size >= 1)");
                return ExitCode::from(2);
            }
        };
        if repeat > 1 {
            eprintln!("error: --repeat is incompatible with --stream");
            return ExitCode::from(2);
        }
        if matches!(flag(&flags, "placement"), Some(p) if p != "identity") {
            eprintln!("error: --stream only supports identity placement");
            return ExitCode::from(2);
        }
        let verify_jobs = match flag(&flags, "stream-verify-jobs") {
            None => qsyn::core::pool::default_jobs(),
            Some(spec) => match spec.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!(
                        "error: bad --stream-verify-jobs `{spec}` (want a worker count >= 1)"
                    );
                    return ExitCode::from(2);
                }
            },
        };
        compiler = compiler.with_stream_verify_jobs(verify_jobs);
        use std::io::Write as _;
        let raw: Box<dyn std::io::Write> = match flag(&flags, "out") {
            Some(path) => match std::fs::File::create(path) {
                Ok(f) => Box::new(f),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None => Box::new(std::io::stdout()),
        };
        let mut writer = std::io::BufWriter::new(raw);
        // Streamed gates live on physical (device) qubits, so the output
        // register is device-wide even when the input circuit is narrower.
        let header = qsyn::circuit::qasm_header(device_width, circuit.name());
        if let Err(e) = writer.write_all(header.as_bytes()) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        let mut line = String::with_capacity(32);
        let mut write_err: Option<String> = None;
        let streamed = compiler.compile_stream(
            circuit.n_qubits(),
            window,
            circuit.gates().iter().cloned(),
            |g| {
                if write_err.is_some() {
                    return;
                }
                line.clear();
                if let Err(e) = qsyn::circuit::write_gate_qasm(&mut line, g)
                    .map_err(std::io::Error::other)
                    .and_then(|()| writer.write_all(line.as_bytes()))
                {
                    write_err = Some(e.to_string());
                }
            },
        );
        let summary = match streamed {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(e) = write_err.or_else(|| writer.flush().err().map(|e| e.to_string())) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "streamed {:?} -> {}: {} windows of <= {} gates, {} -> {} gates, \
             {} SWAPs, peak resident {} gates, {:.3}s",
            circuit.name().unwrap_or(input),
            device_name,
            summary.windows,
            summary.window_gates,
            summary.gates_in,
            summary.gates_out,
            summary.swaps_inserted,
            summary.peak_resident_gates,
            summary.total_seconds,
        );
        match &summary.verdict {
            Verdict::Unverified { reason } => {
                eprintln!("warning: equivalence not established: {reason}");
            }
            Verdict::Verified { method } => {
                eprintln!(
                    "verified {} of {} windows ({method})",
                    summary.verified_windows, summary.windows
                );
            }
            _ => {}
        }
        if flag(&flags, "cache-stats").is_some() {
            eprintln!("{}", qsyn::core::cache::stats().render());
        }
        return ExitCode::SUCCESS;
    }
    if flag(&flags, "stream-verify-jobs").is_some() {
        eprintln!("error: --stream-verify-jobs requires --stream");
        return ExitCode::from(2);
    }

    // --repeat runs the whole compile N times in one process; sweep-style
    // job ids keep the interleaved trace events attributable per run.
    let mut results: Vec<CompileResult> = Vec::with_capacity(repeat);
    for run in 0..repeat {
        if repeat > 1 {
            compiler = compiler.with_job_id(run as u64);
        }
        match compiler.compile(&circuit) {
            Ok(r) => {
                eprintln!(
                    "mapped {:?} -> {}: {} (cost {:.2} -> {:.2}, -{:.1}%), verified = {:?}, {:.3}s{}",
                    circuit.name().unwrap_or(input),
                    device_name,
                    r.optimized.stats(),
                    eqn2.circuit_cost(&r.unoptimized),
                    eqn2.circuit_cost(&r.optimized),
                    r.percent_cost_decrease(&eqn2),
                    r.verified,
                    r.metrics().total_seconds,
                    if r.metrics().cache_hit { ", cache hit" } else { "" },
                );
                if let Verdict::Unverified { reason } = r.verdict() {
                    eprintln!("warning: equivalence not established: {reason}");
                }
                results.push(r);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let r = results.last().expect("repeat >= 1");
    if results
        .iter()
        .any(|other| other.optimized != r.optimized || other.verified != r.verified)
    {
        eprintln!("error: --repeat runs produced diverging outputs");
        return ExitCode::FAILURE;
    }
    if flag(&flags, "report").is_some() {
        eprintln!("{}", r.metrics().render_table());
    }
    if flag(&flags, "cache-stats").is_some() {
        eprintln!("{}", qsyn::core::cache::stats().render());
    }
    let qasm = r.optimized.to_qasm().expect("mapped output is QASM-ready");
    match flag(&flags, "out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, qasm) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{qasm}"),
    }
    ExitCode::SUCCESS
}

/// Installs a SIGTERM handler that flips the serve shutdown flag. Raw
/// libc `signal(2)` via FFI: the workspace builds offline, so no `libc`
/// crate — and the handler body is a single atomic store, which is
/// async-signal-safe.
#[cfg(unix)]
fn install_sigterm_handler() {
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn on_sigterm(_: i32) {
        qsyn::serve::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

fn cmd_serve(args: &[String]) -> ExitCode {
    let (pos, flags) = parse_or_exit!(
        args,
        &["trace", "no-retry", "no-emit", "strict-verify", "cache-stats"],
        &[
            "workers",
            "queue-cap",
            "node-ceiling",
            "deadline",
            "node-budget",
            "max-swaps",
            "cache",
            "cache-dir",
            "max-line-bytes",
            "trace",
            "metrics-file",
            "cache-max-bytes",
            "cache-max-age"
        ]
    );
    if !pos.is_empty() {
        eprintln!("error: serve takes no positional arguments");
        return ExitCode::from(2);
    }
    let mut opts = qsyn::serve::ServeOptions::default();
    macro_rules! usize_flag {
        ($name:literal, $min:expr) => {
            match flag(&flags, $name) {
                None => None,
                Some(spec) => match spec.parse::<usize>() {
                    Ok(n) if n >= $min => Some(n),
                    _ => {
                        eprintln!("error: bad --{} `{spec}` (want an integer >= {})", $name, $min);
                        return ExitCode::from(2);
                    }
                },
            }
        };
    }
    if let Some(n) = usize_flag!("workers", 1) {
        opts.workers = n;
    }
    if let Some(n) = usize_flag!("queue-cap", 1) {
        opts.queue_cap = n;
    }
    if let Some(n) = usize_flag!("max-line-bytes", 1) {
        opts.max_line_bytes = n;
    }
    opts.node_ceiling = usize_flag!("node-ceiling", 1);
    opts.defaults.node_budget = usize_flag!("node-budget", 1);
    opts.defaults.max_swaps = usize_flag!("max-swaps", 1);
    if let Some(spec) = flag(&flags, "deadline") {
        match spec.parse::<f64>() {
            Ok(secs) if secs.is_finite() && secs > 0.0 => {
                opts.defaults.deadline = Some(std::time::Duration::from_secs_f64(secs));
            }
            _ => {
                eprintln!("error: bad --deadline `{spec}` (want seconds, e.g. 2.5)");
                return ExitCode::from(2);
            }
        }
    }
    match flag(&flags, "cache") {
        None => {}
        Some(spec) => match CacheMode::parse(spec) {
            Some(mode) => opts.defaults.cache = mode,
            None => {
                eprintln!("error: bad --cache `{spec}` (want off, tables or mem)");
                return ExitCode::from(2);
            }
        },
    }
    let cache_max_bytes = match flag(&flags, "cache-max-bytes") {
        None => None,
        Some(spec) => match spec.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: bad --cache-max-bytes `{spec}` (want a byte count)");
                return ExitCode::from(2);
            }
        },
    };
    let cache_max_age = match flag(&flags, "cache-max-age") {
        None => None,
        Some(spec) => match spec.parse::<f64>() {
            Ok(secs) if secs.is_finite() && secs >= 0.0 => {
                Some(std::time::Duration::from_secs_f64(secs))
            }
            _ => {
                eprintln!("error: bad --cache-max-age `{spec}` (want seconds, e.g. 86400)");
                return ExitCode::from(2);
            }
        },
    };
    if (cache_max_bytes.is_some() || cache_max_age.is_some()) && flag(&flags, "cache-dir").is_none()
    {
        eprintln!("error: --cache-max-bytes/--cache-max-age need --cache-dir");
        return ExitCode::from(2);
    }
    if let Some(dir) = flag(&flags, "cache-dir") {
        // The disk tier sits under the whole-compile memo, so it requires
        // the mem layer; --cache-dir implies it rather than erroring.
        opts.defaults.cache = CacheMode::Mem;
        match qsyn::core::DiskCache::open(std::path::Path::new(dir)) {
            Ok(disk) => {
                // Startup eviction: trim the tier to the configured caps
                // before serving, oldest entries first.
                if cache_max_bytes.is_some() || cache_max_age.is_some() {
                    match disk.evict(cache_max_bytes, cache_max_age) {
                        Ok(ev) => eprintln!(
                            "disk cache: evicted {} of {} entries ({} bytes reclaimed), \
                             {} entries ({} bytes) remain",
                            ev.evicted, ev.scanned, ev.evicted_bytes, ev.remaining,
                            ev.remaining_bytes
                        ),
                        Err(e) => {
                            eprintln!("error: --cache-dir {dir}: eviction failed: {e}");
                            return ExitCode::from(2);
                        }
                    }
                }
                opts.disk = Some(std::sync::Arc::new(disk));
                // The coordinator re-runs the sweep online, on the
                // metrics-file cadence, so long-running daemons stay
                // within the caps as new entries accumulate.
                opts.cache_max_bytes = cache_max_bytes;
                opts.cache_max_age = cache_max_age;
            }
            Err(e) => {
                eprintln!("error: --cache-dir {dir}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = flag(&flags, "metrics-file") {
        opts.metrics_file = Some(std::path::PathBuf::from(path));
    }
    opts.defaults.retry = flag(&flags, "no-retry").is_none();
    opts.defaults.emit_qasm = flag(&flags, "no-emit").is_none();
    opts.defaults.strict_verify = flag(&flags, "strict-verify").is_some();
    match flag(&flags, "trace") {
        None => {}
        Some("") => opts.trace = Some(std::sync::Arc::new(JsonlSink::stderr())),
        Some(path) => match JsonlSink::to_file(path) {
            Ok(sink) => opts.trace = Some(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::from(2);
            }
        },
    }

    install_sigterm_handler();
    let input = std::io::BufReader::new(std::io::stdin());
    let stdout = std::io::stdout();
    match qsyn::serve::run(input, stdout.lock(), opts) {
        Ok(summary) => {
            eprintln!(
                "served {} requests: {} ok, {} errors ({} overloaded, {} shed), \
                 {} metrics polls{}",
                summary.requests,
                summary.ok,
                summary.errors,
                summary.overloaded,
                summary.shed,
                summary.metrics_polls,
                if summary.terminated {
                    ", terminated by signal"
                } else {
                    ""
                },
            );
            if flag(&flags, "cache-stats").is_some() {
                eprintln!("{}", qsyn::core::cache::stats().render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let (pos, flags) = parse_or_exit!(args, &["miter"], &["ancilla"]);
    let [a, b] = pos.as_slice() else { usage() };
    match (load_circuit(a), load_circuit(b)) {
        (Ok(ca), Ok(cb)) => {
            let report = if let Some(spec) = flag(&flags, "ancilla") {
                // Comma-separated clean-ancilla lines.
                let lines: Vec<usize> = spec
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .filter_map(|s| s.trim().parse().ok())
                    .collect();
                qsyn::qmdd::equivalent_with_ancillas(&ca, &cb, &lines)
            } else if flag(&flags, "miter").is_some() {
                equivalent_miter(&ca, &cb)
            } else {
                equivalent(&ca, &cb)
            };
            println!(
                "{}",
                if report.equivalent {
                    "EQUIVALENT"
                } else {
                    "DIFFERENT"
                }
            );
            if report.equivalent {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_stats(args: &[String]) -> ExitCode {
    let (pos, _) = parse_or_exit!(args, &[], &[]);
    let [input] = pos.as_slice() else { usage() };
    match load_circuit(input) {
        Ok(c) => {
            let s = c.stats();
            println!("qubits          : {}", c.n_qubits());
            println!("gates           : {}", s.volume);
            println!("T / T-dagger    : {}", s.t_count);
            println!("CNOT            : {}", s.cnot_count);
            println!("other 1-qubit   : {}", s.other_single_count);
            println!("unmapped multi  : {}", s.unmapped_multi_count);
            println!("largest MCT     : {} controls", s.max_mct_controls);
            println!("depth           : {}", qsyn::circuit::depth(&c));
            println!("T-depth         : {}", qsyn::circuit::t_depth(&c));
            println!(
                "Eqn. 2 cost     : {:.2}",
                TransmonCost::default().cost(&s)
            );
            println!("technology-ready: {}", c.is_technology_ready());
            let hist = qsyn::circuit::gate_histogram(&c);
            let parts: Vec<String> =
                hist.iter().map(|(k, v)| format!("{k}x{v}")).collect();
            println!("histogram       : {}", parts.join(", "));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_check_trace(args: &[String]) -> ExitCode {
    let (pos, _) = parse_or_exit!(args, &[], &[]);
    let [input] = pos.as_slice() else { usage() };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut events = Vec::new();
    for (k, line) in text.lines().enumerate() {
        let parsed = qsyn::trace::json::parse(line)
            .ok()
            .and_then(|v| PassEvent::from_json(&v));
        match parsed {
            Some(e) => events.push(e),
            None => {
                eprintln!("error: {input}:{}: not a well-formed pass event", k + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    for e in &events {
        let job = e.job.map_or(String::new(), |j| format!("job {j:<4} "));
        println!(
            "{job}{:<9} {:>8.3} ms  {:>4} gates  Δcost {:+.2}",
            e.pass,
            e.seconds * 1e3,
            e.output.stats.volume,
            e.cost_delta()
        );
    }
    // A sweep job is one compilation, so its events — however interleaved
    // with other jobs in the stream — must follow Fig. 2 pass order. A
    // trace may aggregate several sweeps (`experiments` runs three tables
    // back to back, each restarting job ids at 0), so a job is allowed to
    // begin a fresh pipeline — but only from `place`; any other backward
    // jump is stream corruption.
    let mut jobs: Vec<u64> = events.iter().filter_map(|e| e.job).collect();
    jobs.sort_unstable();
    jobs.dedup();
    for &job in &jobs {
        let mut cursor = 0;
        for e in events.iter().filter(|e| e.job == Some(job)) {
            let idx = Pass::FIG2_ORDER
                .iter()
                .position(|p| *p == e.pass)
                .expect("FIG2_ORDER is exhaustive");
            if idx < cursor && idx != 0 {
                eprintln!(
                    "error: {input}: job {job}: pass `{}` repeats or breaks Fig. 2 order",
                    e.pass
                );
                return ExitCode::FAILURE;
            }
            cursor = idx + 1;
        }
    }
    // Verify events carry the degradation-ladder counters (see
    // docs/ROBUSTNESS.md): `unverified = 1` events must say how many rungs
    // were tried, and `unverified = 0` events must name the rung (1-based)
    // that succeeded. Events predating the ladder carry neither counter and
    // are tolerated as legacy.
    let mut degraded = 0usize;
    let mut unverified = 0usize;
    for (k, e) in events.iter().enumerate() {
        if e.pass != Pass::Verify {
            continue;
        }
        match e.counter("unverified") {
            Some(1.0) => {
                unverified += 1;
                if e.counter("ladder_rungs_tried").is_none() {
                    eprintln!(
                        "error: {input}: event {}: unverified verify event is missing \
                         the `ladder_rungs_tried` counter",
                        k + 1
                    );
                    return ExitCode::FAILURE;
                }
            }
            Some(0.0) => {
                let rung = e.counter("ladder_rung").unwrap_or(0.0);
                if rung < 1.0 {
                    eprintln!(
                        "error: {input}: event {}: verified verify event must carry \
                         `ladder_rung` >= 1",
                        k + 1
                    );
                    return ExitCode::FAILURE;
                }
                if rung > 1.0 {
                    degraded += 1;
                }
            }
            Some(v) => {
                eprintln!(
                    "error: {input}: event {}: `unverified` counter must be 0 or 1, got {v}",
                    k + 1
                );
                return ExitCode::FAILURE;
            }
            None => {} // legacy event: predates the degradation ladder
        }
    }
    // Route events: a `strategy` counter (when present — legacy traces
    // predate it) must be a known routing-strategy tag, and a route pass
    // that also records its budget cap must not report more SWAPs than
    // the cap allows — a trace showing a blown cap alongside a completed
    // route event is self-contradictory.
    let mut strategies: Vec<&str> = Vec::new();
    for (k, e) in events.iter().enumerate() {
        if e.pass != Pass::Route {
            continue;
        }
        if let Some(tag) = e.counter("strategy") {
            match qsyn::trace::route_strategy_name(tag) {
                Some(name) => {
                    if !strategies.contains(&name) {
                        strategies.push(name);
                    }
                }
                None => {
                    eprintln!(
                        "error: {input}: event {}: unknown routing-strategy tag {tag}",
                        k + 1
                    );
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(cap) = e.counter("swap_cap") {
            let swaps = e.counter("swaps_inserted").unwrap_or(0.0)
                + e.counter("restoration_swaps").unwrap_or(0.0);
            if swaps > cap {
                eprintln!(
                    "error: {input}: event {}: route event reports {swaps} SWAPs, \
                     exceeding the budget cap {cap} recorded in the same trace",
                    k + 1
                );
                return ExitCode::FAILURE;
            }
        }
    }
    // Streaming compiles emit one aggregate route event whose counters
    // must be internally consistent: windows processed, windowed-miter
    // outcomes accounting for every window, non-negative oracle activity,
    // and no window blowing the per-window SWAP cap recorded beside it.
    let mut stream_windows = 0.0f64;
    let mut stream_events = 0usize;
    for (k, e) in events.iter().enumerate() {
        match qsyn::trace::streaming::validate_streaming_route_event(e) {
            Ok(None) => {}
            Ok(Some(c)) => {
                stream_events += 1;
                stream_windows += c.windows;
            }
            Err(msg) => {
                eprintln!("error: {input}: event {}: {msg}", k + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    // Compile-cache replays stamp every event with `cache_hit = 1`; the
    // marker is boolean by construction, so anything else is corruption.
    let mut cache_hits = 0usize;
    for (k, e) in events.iter().enumerate() {
        match e.counter("cache_hit") {
            Some(1.0) => cache_hits += 1,
            Some(0.0) | None => {}
            Some(v) => {
                eprintln!(
                    "error: {input}: event {}: `cache_hit` counter must be 0 or 1, got {v}",
                    k + 1
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let ladder = if degraded + unverified > 0 {
        format!(" ({degraded} degraded, {unverified} unverified)")
    } else {
        String::new()
    };
    let cached = if cache_hits > 0 {
        format!(", {cache_hits} cache-hit events")
    } else {
        String::new()
    };
    let routed = if strategies.is_empty() {
        String::new()
    } else {
        format!(", strategies: {}", strategies.join(", "))
    };
    let streamed = if stream_events > 0 {
        format!(
            ", {stream_events} streaming event(s) covering {stream_windows} windows"
        )
    } else {
        String::new()
    };
    if jobs.is_empty() {
        eprintln!(
            "{}: {} well-formed pass events{ladder}{cached}{routed}{streamed}",
            input,
            events.len()
        );
    } else {
        eprintln!(
            "{}: {} well-formed pass events across {} jobs, each in Fig. 2 \
             order{ladder}{cached}{routed}{streamed}",
            input,
            events.len(),
            jobs.len()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_report(args: &[String]) -> ExitCode {
    let (pos, flags) = parse_or_exit!(args, &["prometheus"], &[]);
    let [input] = pos.as_slice() else { usage() };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let (snap, source) = match qsyn::report::load(&text) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if flag(&flags, "prometheus").is_some() {
        print!("{}", snap.render_prometheus());
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "{}: {}",
        input,
        match source {
            qsyn::report::ReportSource::Snapshot => "metrics snapshot",
            qsyn::report::ReportSource::Trace =>
                "trace stream (histograms rebuilt from pass events)",
        }
    );
    print!("{}", qsyn::report::render(&snap));
    ExitCode::SUCCESS
}

fn cmd_check_metrics(args: &[String]) -> ExitCode {
    let (pos, _) = parse_or_exit!(args, &[], &[]);
    let [input] = pos.as_slice() else { usage() };
    let text = match std::fs::read_to_string(input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return ExitCode::from(2);
        }
    };
    let (snap, source) = match qsyn::report::load(&text) {
        Ok(loaded) => loaded,
        Err(e) => {
            eprintln!("error: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if source != qsyn::report::ReportSource::Snapshot {
        eprintln!(
            "error: {input}: not a `{}` metrics snapshot (check-trace validates trace streams)",
            qsyn::report::METRICS_SCHEMA
        );
        return ExitCode::FAILURE;
    }
    match qsyn::report::check_snapshot(&snap) {
        Ok(checks) => {
            eprintln!(
                "{}: {} metrics ({} histograms), {} invariants hold",
                input,
                snap.counters.len() + snap.gauges.len() + snap.histograms.len(),
                snap.histograms.len(),
                checks.len()
            );
            ExitCode::SUCCESS
        }
        Err(violations) => {
            for v in &violations {
                eprintln!("error: {input}: violated: {v}");
            }
            ExitCode::FAILURE
        }
    }
}

fn cmd_synth(args: &[String]) -> ExitCode {
    let (pos, flags) = parse_or_exit!(args, &[], &["out"]);
    let [hex, vars] = pos.as_slice() else { usage() };
    let Ok(n) = vars.parse::<usize>() else {
        eprintln!("error: bad variable count `{vars}`");
        return ExitCode::from(2);
    };
    let tt = match TruthTable::from_hex(n, hex) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let cascade = synthesize_single_target(&tt);
    eprintln!(
        "synthesized single-target gate: {} lines, {} gates",
        cascade.n_qubits(),
        cascade.len()
    );
    let real = cascade.to_real().expect("cascades are classical");
    match flag(&flags, "out") {
        Some(path) => {
            if let Err(e) = std::fs::write(path, real) {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        None => {
            print!("{real}");
            ExitCode::SUCCESS
        }
    }
}

fn cmd_dot(args: &[String]) -> ExitCode {
    let (pos, flags) = parse_or_exit!(args, &[], &["device"]);
    if let Some(name) = flag(&flags, "device") {
        let device = match resolve_device(name) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        print!("{}", device.to_dot());
        return ExitCode::SUCCESS;
    }
    let [input] = pos.as_slice() else { usage() };
    match load_circuit(input) {
        Ok(c) => {
            let (pkg, root) = qsyn::qmdd::build_circuit_qmdd(&c);
            eprintln!(
                "QMDD: {} non-terminal nodes for {} qubits",
                pkg.node_count(root),
                c.n_qubits()
            );
            print!("{}", pkg.to_dot(root));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_draw(args: &[String]) -> ExitCode {
    let (pos, _) = parse_or_exit!(args, &[], &[]);
    let [input] = pos.as_slice() else { usage() };
    match load_circuit(input) {
        Ok(c) => {
            eprintln!(
                "{} qubits, {} gates, depth {}, T-depth {}",
                c.n_qubits(),
                c.len(),
                qsyn::circuit::depth(&c),
                qsyn::circuit::t_depth(&c)
            );
            print!("{}", c.draw());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "devices" => cmd_devices(),
            "compile" => cmd_compile(rest),
            "serve" => cmd_serve(rest),
            "check" => cmd_check(rest),
            "check-trace" => cmd_check_trace(rest),
            "report" => cmd_report(rest),
            "check-metrics" => cmd_check_metrics(rest),
            "stats" => cmd_stats(rest),
            "synth" => cmd_synth(rest),
            "dot" => cmd_dot(rest),
            "draw" => cmd_draw(rest),
            _ => usage(),
        },
        None => usage(),
    }
}
