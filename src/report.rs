//! `qsyn report` / `qsyn check-metrics` — turning metrics snapshots and
//! trace streams into human tables, and validating snapshot invariants.
//!
//! Two input shapes are accepted (sniffed, not flagged):
//!
//! * a **metrics snapshot**: the JSON written by `qsyn serve
//!   --metrics-file`, or a `status: metrics` poll row (the snapshot is
//!   pulled out of its `metrics` field);
//! * a **trace stream**: `--trace` JSONL, one pass event per line — the
//!   report rebuilds the per-pass and per-strategy latency histograms
//!   from the events, so the same table works without a daemon.
//!
//! `check_snapshot` verifies what the metrics layer promises by
//! construction, so a violation means a corrupted file or a bug:
//! histogram counts equal their bucket sums, bucket indices are valid
//! and ascending, cache `hits + misses (+ quarantines) == lookups`, and
//! a drained daemon snapshot (`requests == ok + error` rows) has an
//! empty queue.

use qsyn_trace::metrics::{bucket_bounds, HistogramSnapshot, MetricsSnapshot, BUCKETS, SCHEMA};
use qsyn_trace::{json, Pass, PassEvent};

/// How a report input file was interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportSource {
    /// A metrics snapshot document (possibly unwrapped from a poll row).
    Snapshot,
    /// A `--trace` JSONL stream of pass events.
    Trace,
}

/// Parses report input: a snapshot document, a `status: metrics` poll
/// row, or a trace JSONL stream (in that sniffing order).
///
/// Trace streams are converted to a snapshot by replaying every event
/// into fresh histograms (`pass.<name>_us`, `route.<strategy>_us`) and
/// counting events into `trace.events` / `trace.cache_hit_events`.
pub fn load(text: &str) -> Result<(MetricsSnapshot, ReportSource), String> {
    if let Ok(v) = json::parse(text.trim()) {
        if v.get("schema").is_some() {
            return MetricsSnapshot::from_json(&v).map(|s| (s, ReportSource::Snapshot));
        }
        if let Some(inner) = v.get("metrics") {
            if inner.get("schema").is_some() {
                return MetricsSnapshot::from_json(inner).map(|s| (s, ReportSource::Snapshot));
            }
        }
    }
    // Not a snapshot: require every non-blank line to be a pass event.
    let mut events = Vec::new();
    for (k, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line).ok().and_then(|v| PassEvent::from_json(&v));
        match parsed {
            Some(e) => events.push(e),
            None => {
                return Err(format!(
                    "line {}: neither a metrics snapshot nor a well-formed pass event",
                    k + 1
                ))
            }
        }
    }
    if events.is_empty() {
        return Err("input holds no metrics snapshot and no pass events".to_string());
    }
    Ok((snapshot_from_events(&events), ReportSource::Trace))
}

/// Replays trace events into a registry-shaped snapshot so the snapshot
/// renderer below serves both input kinds.
fn snapshot_from_events(events: &[PassEvent]) -> MetricsSnapshot {
    let reg = qsyn_trace::metrics::MetricsRegistry::new();
    let total = reg.counter("trace.events");
    let cache_hits = reg.counter("trace.cache_hit_events");
    for e in events {
        total.inc();
        if e.counter("cache_hit") == Some(1.0) {
            cache_hits.inc();
        }
        if Pass::FIG2_ORDER.contains(&e.pass) {
            reg.histogram(&format!("pass.{}_us", e.pass.name()))
                .record_seconds(e.seconds);
        }
        if e.pass == Pass::Route {
            if let Some(name) = e.counter("strategy").and_then(qsyn_trace::route_strategy_name) {
                reg.histogram(&format!("route.{name}_us"))
                    .record_seconds(e.seconds);
            }
        }
    }
    reg.snapshot()
}

fn fmt_quantile(h: &HistogramSnapshot, q: f64) -> String {
    h.quantile(q).map_or_else(|| "-".to_string(), |v| v.to_string())
}

/// Renders the human report: latency histograms with count / mean /
/// p50 / p95 / p99 (microseconds), cache hit rates, then the raw
/// counters and gauges.
pub fn render(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let name_w = snap
        .histograms
        .iter()
        .map(|(n, _)| n.len())
        .chain(snap.counters.iter().map(|(n, _)| n.len()))
        .chain(snap.gauges.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0)
        .max(16);
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "{:<name_w$} {:>10} {:>12} {:>9} {:>9} {:>9}",
            "histogram (us)", "count", "mean", "p50", "p95", "p99"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>10} {:>12} {:>9} {:>9} {:>9}",
                name,
                h.count,
                h.mean().map_or_else(|| "-".to_string(), |m| format!("{m:.1}")),
                fmt_quantile(h, 0.50),
                fmt_quantile(h, 0.95),
                fmt_quantile(h, 0.99),
            );
        }
        out.push('\n');
    }
    // Cache layers expose `<layer>.lookups` + `<layer>.hits`; every such
    // pair earns a hit-rate line (the disk tier counts quarantined loads
    // as neither hit nor miss, so the rate is hits over lookups).
    let mut rates = Vec::new();
    for (name, lookups) in &snap.counters {
        let Some(layer) = name.strip_suffix(".lookups") else {
            continue;
        };
        let hits = snap.counter(&format!("{layer}.hits")).unwrap_or(0);
        let pct = if *lookups > 0 {
            100.0 * hits as f64 / *lookups as f64
        } else {
            0.0
        };
        rates.push(format!(
            "{:<name_w$} {pct:>9.1}% ({hits} hits / {lookups} lookups)",
            layer
        ));
    }
    if !rates.is_empty() {
        let _ = writeln!(out, "cache hit rates");
        for r in rates {
            let _ = writeln!(out, "{r}");
        }
        out.push('\n');
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name:<name_w$} {v:>10}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push('\n');
        let _ = writeln!(out, "gauges");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "{name:<name_w$} {v:>10}");
        }
    }
    out
}

/// Validates the invariants a well-formed snapshot upholds by
/// construction. Returns the list of checks performed (for reporting)
/// or the list of violations.
///
/// The checks are safe on *live* snapshots too (a poll of a busy
/// daemon): inequalities only tighten to equalities when the daemon has
/// drained, and the queue-empty check fires only once
/// `serve.requests == serve.responses_ok + serve.responses_error`,
/// which the coordinator thread makes true only with nothing in flight.
pub fn check_snapshot(snap: &MetricsSnapshot) -> Result<Vec<String>, Vec<String>> {
    let mut passed = Vec::new();
    let mut violations = Vec::new();
    let mut check = |ok: bool, what: String| {
        if ok {
            passed.push(what);
        } else {
            violations.push(what);
        }
    };

    for (name, h) in &snap.histograms {
        let sum: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
        check(
            h.count == sum,
            format!("{name}: count {} == bucket-count sum {sum}", h.count),
        );
        let ascending = h.buckets.windows(2).all(|w| w[0].0 < w[1].0);
        let in_range = h.buckets.iter().all(|&(i, _)| (i as usize) < BUCKETS);
        let positive = h.buckets.iter().all(|&(_, c)| c > 0);
        check(
            ascending && in_range && positive,
            format!(
                "{name}: bucket indices ascending, < {BUCKETS}, counts positive"
            ),
        );
        // The recorded sum must be reachable from the bucket bounds:
        // each sample lies within its bucket, so the total lies within
        // the per-bucket [lower, upper] envelope (upper saturates at
        // u64::MAX for the overflow bucket).
        let lo: u64 = h
            .buckets
            .iter()
            .map(|&(i, c)| bucket_bounds(i as usize).0.saturating_mul(c))
            .fold(0u64, u64::saturating_add);
        let hi: u64 = h
            .buckets
            .iter()
            .map(|&(i, c)| bucket_bounds(i as usize).1.saturating_mul(c))
            .fold(0u64, u64::saturating_add);
        check(
            h.sum >= lo && h.sum <= hi,
            format!("{name}: sum {} within bucket envelope [{lo}, {hi}]", h.sum),
        );
    }

    // Cache-layer accounting: every lookup resolves as a hit, a miss,
    // or (disk tier only) a quarantine.
    for (name, lookups) in &snap.counters {
        let Some(layer) = name.strip_suffix(".lookups") else {
            continue;
        };
        let resolved = snap.counter(&format!("{layer}.hits")).unwrap_or(0)
            + snap.counter(&format!("{layer}.misses")).unwrap_or(0)
            + snap.counter(&format!("{layer}.quarantines")).unwrap_or(0);
        check(
            resolved == *lookups,
            format!("{layer}: hits + misses (+ quarantines) {resolved} == lookups {lookups}"),
        );
    }

    // Streaming-verify accounting (only when a stream ran): every
    // window miter check records one `stream.verify_us` sample, and
    // each non-rejecting check lands in exactly one of the outcome
    // counters — the histogram can only exceed their sum by rejected
    // windows, which abort the stream they occur in.
    if let Some(h) = snap.histogram("stream.verify_us") {
        let outcomes = snap.counter("stream.windows_verified").unwrap_or(0)
            + snap.counter("stream.windows_unverified").unwrap_or(0);
        check(
            outcomes <= h.count,
            format!(
                "stream: verified + unverified windows {outcomes} <= verify samples {}",
                h.count
            ),
        );
    }

    // Serve accounting (only when the daemon counters are present).
    if let Some(requests) = snap.counter("serve.requests") {
        let answered = snap.counter("serve.responses_ok").unwrap_or(0)
            + snap.counter("serve.responses_error").unwrap_or(0);
        check(
            answered <= requests,
            format!("serve: responses {answered} <= requests {requests}"),
        );
        let depth = snap.gauge("serve.queue_depth").unwrap_or(0);
        check(depth >= 0, format!("serve: queue depth {depth} >= 0"));
        if answered == requests {
            check(
                depth == 0,
                format!("serve: drained (responses == requests) with queue depth {depth}"),
            );
        }
        let overloaded = snap.counter("serve.overloaded").unwrap_or(0);
        check(
            overloaded <= snap.counter("serve.responses_error").unwrap_or(0),
            format!("serve: overloaded {overloaded} <= error rows"),
        );
    }

    if violations.is_empty() {
        Ok(passed)
    } else {
        Err(violations)
    }
}

/// The schema tag `check-metrics` insists on; re-exported so the CLI can
/// name it in error messages.
pub const METRICS_SCHEMA: &str = SCHEMA;

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_trace::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("cache.compile.lookups").add(10);
        reg.counter("cache.compile.hits").add(4);
        reg.counter("cache.compile.misses").add(6);
        reg.counter("serve.requests").add(3);
        reg.counter("serve.responses_ok").add(2);
        reg.counter("serve.responses_error").add(1);
        reg.gauge("serve.queue_depth").set(0);
        let h = reg.histogram("serve.latency_us");
        for v in [3, 100, 1000, 50_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn load_sniffs_snapshot_and_poll_row() {
        let snap = sample_registry().snapshot();
        let bare = snap.to_json().to_string();
        let (loaded, src) = load(&bare).expect("bare snapshot loads");
        assert_eq!(src, ReportSource::Snapshot);
        assert_eq!(loaded.counter("serve.requests"), Some(3));

        let row = format!(
            "{{\"id\":\"m\",\"job\":7,\"status\":\"metrics\",\"metrics\":{bare}}}"
        );
        let (loaded, src) = load(&row).expect("poll row loads");
        assert_eq!(src, ReportSource::Snapshot);
        assert_eq!(loaded.counter("serve.responses_ok"), Some(2));
    }

    #[test]
    fn check_accepts_consistent_and_rejects_corrupt() {
        let snap = sample_registry().snapshot();
        let checks = check_snapshot(&snap).expect("consistent snapshot passes");
        assert!(checks.iter().any(|c| c.contains("cache.compile")));
        assert!(checks.iter().any(|c| c.contains("drained")));

        let mut broken = snap.clone();
        for (n, v) in &mut broken.counters {
            if n == "cache.compile.hits" {
                *v += 1; // hits + misses no longer equals lookups
            }
        }
        let violations = check_snapshot(&broken).expect_err("corrupt snapshot fails");
        assert!(violations.iter().any(|v| v.contains("cache.compile")));

        let mut torn = snap.clone();
        torn.histograms[0].1.count += 5; // count != bucket sum
        assert!(check_snapshot(&torn).is_err());
    }

    #[test]
    fn stream_verify_accounting_is_checked() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("stream.verify_us");
        for v in [120, 340, 560] {
            h.record(v);
        }
        reg.counter("stream.windows_verified").add(2);
        reg.counter("stream.windows_unverified").add(1);
        let checks = check_snapshot(&reg.snapshot()).expect("balanced stream accounting passes");
        assert!(checks.iter().any(|c| c.contains("verify samples")));

        // More counted outcomes than recorded samples is impossible by
        // construction: every outcome came from a timed check.
        reg.counter("stream.windows_verified").add(5);
        let violations =
            check_snapshot(&reg.snapshot()).expect_err("overcounted outcomes fail");
        assert!(
            violations.iter().any(|v| v.contains("verify samples")),
            "{violations:?}"
        );
    }

    #[test]
    fn drained_snapshot_with_nonzero_queue_is_a_violation() {
        let reg = sample_registry();
        reg.gauge("serve.queue_depth").set(2);
        let violations = check_snapshot(&reg.snapshot()).expect_err("stuck queue flagged");
        assert!(violations.iter().any(|v| v.contains("queue depth 2")));
    }

    #[test]
    fn render_includes_percentiles_and_hit_rates() {
        let text = render(&sample_registry().snapshot());
        assert!(text.contains("serve.latency_us"), "{text}");
        assert!(text.contains("p95"), "{text}");
        assert!(text.contains("cache hit rates"), "{text}");
        assert!(text.contains("cache.compile"), "{text}");
        assert!(text.contains("40.0%"), "{text}");
    }

    #[test]
    fn trace_jsonl_is_replayed_into_histograms() {
        // Running the whole compiler here would be heavy, so events are
        // synthesized and serialized through the real JSONL shape.
        let stage = qsyn_trace::StageSnapshot::default();
        let mut lines = String::new();
        for (k, pass) in Pass::FIG2_ORDER.into_iter().enumerate() {
            let e = PassEvent {
                pass,
                job: None,
                seconds: 0.001 * (k + 1) as f64,
                input: stage,
                output: stage,
                cost_in: 1.0,
                cost_out: 1.0,
                counters: Vec::new(),
            };
            lines.push_str(&e.to_json().to_string());
            lines.push('\n');
        }
        let (snap, src) = load(&lines).expect("trace loads");
        assert_eq!(src, ReportSource::Trace);
        assert_eq!(snap.counter("trace.events"), Some(5));
        let h = snap.histogram("pass.route_us").expect("route histogram");
        assert_eq!(h.count, 1);
    }
}
