//! Target a *custom* transmon topology — the paper emphasizes that new
//! coupling maps can be dropped into the tool's device library — and show
//! how topology and cost-function choice change the compiled result.
//!
//! ```text
//! cargo run --example custom_device
//! ```

use qsyn::prelude::*;

fn line8() -> Device {
    devices::line(8)
}

fn ring8() -> Device {
    devices::ring(8)
}

fn star8() -> Device {
    devices::star(8)
}

/// A workload whose CNOTs hop across the register.
fn workload() -> Circuit {
    let mut c = Circuit::new(8).with_name("hops");
    c.push(Gate::h(0));
    c.push(Gate::cx(0, 7));
    c.push(Gate::toffoli(1, 6, 3));
    c.push(Gate::cx(7, 2));
    c.push(Gate::t(4));
    c.push(Gate::cx(4, 0));
    c
}

fn main() -> Result<(), CompileError> {
    let spec = workload();
    println!("workload:\n{spec}");
    println!("| device | complexity | gates | Eqn.2 cost | fidelity cost | verified |");
    println!("|---|---|---|---|---|---|");
    let eqn2 = TransmonCost::default();
    let fid = FidelityCost::default();
    for device in [line8(), ring8(), star8(), Device::simulator(8)] {
        let r = Compiler::new(device.clone()).compile(&spec)?;
        println!(
            "| {} | {:.3} | {} | {:.2} | {:.4} | {} |",
            device.name(),
            device.coupling_complexity(),
            r.optimized.len(),
            eqn2.circuit_cost(&r.optimized),
            fid.circuit_cost(&r.optimized),
            r.verified == Some(true),
        );
    }

    // The cost function is user-replaceable (paper Section 2.2): optimize
    // the same mapping under a custom weighting that despises CNOTs.
    let cnot_hater = TransmonCost::new(0.0, 10.0);
    let r = Compiler::new(ring8())
        .with_cost_model(Box::new(cnot_hater))
        .compile(&spec)?;
    println!(
        "\nring8 under a CNOT-heavy cost function: {} CNOTs, {} gates, verified = {:?}",
        r.optimized.stats().cnot_count,
        r.optimized.len(),
        r.verified
    );

    // Greedy placement (the paper's stated future work, implemented here)
    // can beat the identity assignment on sparse topologies.
    let ident = Compiler::new(line8()).compile(&spec)?;
    let greedy = Compiler::new(line8())
        .with_placement(PlacementStrategy::Greedy)
        .compile(&spec)?;
    println!(
        "line8 placement: identity -> {} gates, greedy -> {} gates",
        ident.optimized.len(),
        greedy.optimized.len()
    );
    Ok(())
}
