//! Quickstart: from a classical truth table to verified, device-ready
//! OpenQASM in a few lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use qsyn::prelude::*;

fn main() -> Result<(), CompileError> {
    // 1. Describe a classical function: 3-input majority vote.
    let majority = TruthTable::from_fn(3, |x| x.count_ones() >= 2);

    // 2. The ESOP front-end turns it into a technology-independent
    //    reversible cascade (NOT / CNOT / Toffoli gates) computing
    //    |x, y> -> |x, y XOR maj(x)>.
    let cascade = synthesize_single_target(&majority);
    println!("technology-independent cascade:\n{cascade}");

    // 3. The back-end maps it onto a real device: the 5-qubit IBM
    //    Tenerife machine, whose coupling map allows only certain CNOTs.
    let device = devices::ibmqx4();
    println!("target: {device}");
    let result = Compiler::new(device).compile(&cascade)?;

    // 4. Every output is formally verified against the input with QMDDs.
    println!(
        "verified: {:?}   (paper: every output confirmed by QMDD equivalence)",
        result.verified
    );

    // 5. Inspect what mapping cost and what optimization recovered.
    let cost = TransmonCost::default();
    println!(
        "unoptimized mapping : {}  (cost {:.2})",
        result.unoptimized.stats(),
        cost.circuit_cost(&result.unoptimized)
    );
    println!(
        "optimized mapping   : {}  (cost {:.2}, -{:.1}%)",
        result.optimized.stats(),
        cost.circuit_cost(&result.optimized),
        result.percent_cost_decrease(&cost)
    );

    // 6. Emit executable OpenQASM 2.0.
    println!("\n{}", result.optimized.to_qasm().expect("mapped output"));
    Ok(())
}
