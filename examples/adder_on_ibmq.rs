//! Compile a reversible 1-bit full adder to every public IBM Q machine and
//! compare the technology-dependent costs — the classic "same algorithm,
//! different architecture" scenario that motivates the paper.
//!
//! ```text
//! cargo run --example adder_on_ibmq
//! ```

use qsyn::prelude::*;

/// Builds a full adder as a multi-output function: inputs a, b, cin on
/// lines 0-2; sum XORed onto line 3, carry-out onto line 4.
fn full_adder() -> Circuit {
    // Variable 0 is the most significant input bit (a), 2 is cin.
    let sum = TruthTable::from_fn(3, |x| (x.count_ones() & 1) == 1);
    let carry = TruthTable::from_fn(3, |x| x.count_ones() >= 2);
    synthesize_multi_output(&[sum, carry]).with_name("full_adder")
}

fn main() {
    let adder = full_adder();
    println!("full adder, technology-independent:\n{adder}");

    // Sanity-check the classical semantics before compiling.
    for a in 0..2u64 {
        for b in 0..2u64 {
            for cin in 0..2u64 {
                let input = (a << 4) | (b << 3) | (cin << 2);
                let out = adder.permute_basis(input);
                let sum = out >> 1 & 1;
                let carry = out & 1;
                assert_eq!(a + b + cin, 2 * carry + sum, "adder arithmetic");
            }
        }
    }
    println!("classical semantics check: a + b + cin = 2*cout + sum  OK\n");

    let cost = TransmonCost::default();
    println!("| device | T | CNOT | gates | cost | optimized cost | verified |");
    println!("|---|---|---|---|---|---|---|");
    for device in devices::ibm_devices() {
        match Compiler::new(device.clone()).compile(&adder) {
            Ok(r) => {
                let u = r.unoptimized.stats();
                println!(
                    "| {} | {} | {} | {} | {:.2} | {:.2} | {} |",
                    device.name(),
                    u.t_count,
                    u.cnot_count,
                    u.volume,
                    cost.circuit_cost(&r.unoptimized),
                    cost.circuit_cost(&r.optimized),
                    r.verified == Some(true),
                );
            }
            Err(e) => println!("| {} | N/A ({e}) |", device.name()),
        }
    }

    println!(
        "\nLower coupling complexity generally means more SWAP rerouting and \
         a costlier mapping (paper Section 5)."
    );
}
