//! Build a complete Grover search over 3 qubits, compile it for the
//! 16-qubit ibmqx5 machine, and show by state-vector simulation that the
//! technology-dependent circuit amplifies the marked item exactly like the
//! technology-independent specification — the formal-verification claim of
//! the paper, made visible.
//!
//! ```text
//! cargo run --release --example grover_oracle
//! ```

use qsyn::prelude::*;

const MARKED: u64 = 0b101; // the item Grover should find
const N_VARS: usize = 3;

/// Phase oracle via an ancilla prepared in |->: the MCT kicks a -1 phase
/// onto exactly the marked basis state.
fn oracle(c: &mut Circuit) {
    let f = TruthTable::from_fn(N_VARS, |x| x == MARKED);
    c.append(&synthesize_single_target(&f));
}

/// The diffusion (inversion about the mean) operator on the search lines.
fn diffusion(c: &mut Circuit) {
    for q in 0..N_VARS {
        c.push(Gate::h(q));
        c.push(Gate::x(q));
    }
    // Multi-controlled Z on |11..1> = H on last line around an MCT.
    c.push(Gate::h(N_VARS - 1));
    c.push(Gate::mct((0..N_VARS - 1).collect(), N_VARS - 1));
    c.push(Gate::h(N_VARS - 1));
    for q in 0..N_VARS {
        c.push(Gate::x(q));
        c.push(Gate::h(q));
    }
}

fn grover() -> Circuit {
    let mut c = Circuit::new(N_VARS + 1).with_name("grover3");
    // Uniform superposition over the search lines; ancilla to |->.
    for q in 0..N_VARS {
        c.push(Gate::h(q));
    }
    c.push(Gate::x(N_VARS));
    c.push(Gate::h(N_VARS));
    // Two Grover iterations are optimal for 8 items.
    for _ in 0..2 {
        oracle(&mut c);
        diffusion(&mut c);
    }
    // Return the ancilla to |0>.
    c.push(Gate::h(N_VARS));
    c.push(Gate::x(N_VARS));
    c
}

/// Probability of measuring `item` on the search lines of an `n`-qubit
/// state prepared by `circuit` from |0...0>.
fn probability_of(circuit: &Circuit, item: u64) -> f64 {
    let n = circuit.n_qubits();
    let mut state = vec![C64::ZERO; 1 << n];
    state[0] = C64::ONE;
    circuit.apply_to_state(&mut state);
    // Search lines are qubits 0..N_VARS = the top bits of the index.
    let mut p = 0.0;
    for (idx, amp) in state.iter().enumerate() {
        if (idx >> (n - N_VARS)) as u64 == item {
            p += amp.norm_sqr();
        }
    }
    p
}

fn main() -> Result<(), CompileError> {
    let spec = grover();
    println!(
        "Grover search for |{MARKED:03b}> : {} gates on {} lines",
        spec.len(),
        spec.n_qubits()
    );
    let p_spec = probability_of(&spec, MARKED);
    println!("P(marked) from the specification      : {p_spec:.4}");
    assert!(p_spec > 0.9, "two iterations should get ~94.5%");

    // Compile for ibmqx5 and verify with QMDDs.
    let device = devices::ibmqx5();
    let result = Compiler::new(device.clone()).compile(&spec)?;
    println!(
        "compiled for {} : {} gates, QMDD-verified = {:?}",
        device.name(),
        result.optimized.len(),
        result.verified
    );

    // Simulate the *mapped* 16-qubit circuit: the physics must agree.
    let p_mapped = probability_of(&result.optimized, MARKED);
    println!("P(marked) from the mapped circuit     : {p_mapped:.4}");
    assert!((p_spec - p_mapped).abs() < 1e-9, "mapping changed the physics!");

    let cost = TransmonCost::default();
    println!(
        "cost {:.2} -> {:.2} after optimization (-{:.1}%)",
        cost.circuit_cost(&result.unoptimized),
        cost.circuit_cost(&result.optimized),
        result.percent_cost_decrease(&cost)
    );
    Ok(())
}
