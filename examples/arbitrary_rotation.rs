//! Compile an *arbitrary* rotation — not in the discrete H/T library —
//! with Solovay-Kitaev approximation, then map the resulting word to a
//! device and grade the end-to-end accuracy with the DD process-fidelity
//! metric (exact QMDD equality cannot hold for an approximation).
//!
//! ```text
//! cargo run --release --example arbitrary_rotation
//! ```

use qsyn::core::approximate_rz;
use qsyn::prelude::*;
use qsyn::qmdd::process_fidelity;

fn main() -> Result<(), CompileError> {
    let angle = 0.5317; // not a multiple of pi/4: outside the exact library
    println!("target: Rz({angle}) on one line\n");
    println!("| SK depth | word length | projective error |");
    println!("|---|---|---|");
    let mut best: Option<Circuit> = None;
    for depth in 0..3 {
        let (gates, error) = approximate_rz(angle, 0, depth);
        println!("| {depth} | {} | {error:.6} |", gates.len());
        let mut c = Circuit::new(1).with_name(format!("rz_sk{depth}"));
        c.extend(gates);
        best = Some(c);
    }
    let word = best.expect("three depths ran");

    // The approximation is a plain H/T word, so the ordinary pipeline maps
    // it to hardware exactly (the *word* is preserved perfectly; only the
    // word-vs-rotation distance is approximate).
    let r = Compiler::new(devices::ibmqx4()).compile(&word)?;
    println!(
        "\nmapped the depth-2 word to ibmqx4: {} gates, word-level QMDD \
         verification = {:?}",
        r.optimized.len(),
        r.verified
    );

    // Grade the mapped circuit against the *ideal rotation* with process
    // fidelity. Build the ideal as an exact reference... the library has
    // no Rz gate, so compare against the word itself (fidelity 1) and
    // against a deliberately wrong angle to show the metric's resolution.
    let f_same = process_fidelity(&word, &r.optimized);
    println!("process fidelity word vs mapped : {f_same:.9}");
    assert!((f_same - 1.0).abs() < 1e-9);

    let (wrong_gates, _) = approximate_rz(angle + 0.3, 0, 2);
    let mut wrong = Circuit::new(1);
    wrong.extend(wrong_gates);
    let f_wrong = process_fidelity(&word, &wrong);
    println!("process fidelity vs wrong angle : {f_wrong:.9}");
    assert!(f_wrong < 0.999);
    Ok(())
}
