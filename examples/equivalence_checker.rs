//! Use the QMDD engine as a standalone formal equivalence checker — the
//! same machinery the compiler runs internally on every output (paper
//! Section 4, final stage).
//!
//! ```text
//! cargo run --example equivalence_checker            # built-in demo
//! cargo run --example equivalence_checker a.qasm b.qasm
//! ```

use qsyn::prelude::*;

fn load(path: &str) -> Circuit {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    if path.ends_with(".qc") {
        Circuit::from_qc(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
    } else if path.ends_with(".real") {
        Circuit::from_real(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
    } else {
        Circuit::from_qasm(&src).unwrap_or_else(|e| panic!("{path}: {e}"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() == 2 {
        let a = load(&args[0]);
        let b = load(&args[1]);
        let report = equivalent(&a, &b);
        println!(
            "{} vs {}: {}",
            args[0],
            args[1],
            if report.equivalent { "EQUIVALENT" } else { "DIFFERENT" }
        );
        std::process::exit(if report.equivalent { 0 } else { 1 });
    }

    // Demo mode: three pairs exercising the identities of the paper.
    println!("demo: QMDD equivalence checks\n");

    // (1) Fig. 6 — CNOT orientation reversal.
    let mut fwd = Circuit::new(2);
    fwd.push(Gate::cx(1, 0));
    let rev = Circuit::from_qasm(
        "qreg q[2]; h q[0]; h q[1]; cx q[0],q[1]; h q[0]; h q[1];",
    )
    .unwrap();
    println!(
        "Fig. 6 reversal identity        : {}",
        equivalent(&fwd, &rev).equivalent
    );

    // (2) Fig. 3 — SWAP from three CNOTs.
    let mut swap = Circuit::new(2);
    swap.push(Gate::swap(0, 1));
    let three = Circuit::from_qasm("qreg q[2]; cx q[0],q[1]; cx q[1],q[0]; cx q[0],q[1];")
        .unwrap();
    println!(
        "Fig. 3 SWAP identity            : {}",
        equivalent(&swap, &three).equivalent
    );

    // (3) A near-miss: the 15-gate Toffoli network with one T dagger
    //     flipped is NOT the Toffoli — the checker must catch it.
    let mut tof = Circuit::new(3);
    tof.push(Gate::toffoli(0, 1, 2));
    let mut broken = Circuit::new(3);
    broken.extend(qsyn::core::decompose::toffoli_clifford_t(0, 1, 2));
    // Sabotage: turn the last T† into T.
    let last = broken.len() - 2;
    broken.gates_mut()[last] = Gate::t(1);
    println!(
        "sabotaged Toffoli caught        : {}",
        !equivalent(&tof, &broken).equivalent
    );
}
