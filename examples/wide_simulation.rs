//! Decision-diagram simulation far beyond dense state vectors: build a
//! 64-qubit GHZ state, then compile a Toffoli workload onto the 96-qubit
//! Fig. 7 machine and simulate the *mapped* circuit directly on all 96
//! qubits — something a `2^96` array could never do.
//!
//! ```text
//! cargo run --release --example wide_simulation
//! ```

use qsyn::prelude::*;
use qsyn::qmdd::Simulator;

fn main() -> Result<(), CompileError> {
    // Part 1: a 64-qubit GHZ state in a handful of diagram nodes.
    let n = 64;
    let mut sim = Simulator::new(n);
    sim.apply(&Gate::h(0));
    for q in 1..n {
        sim.apply(&Gate::cx(q - 1, q));
    }
    let h = std::f64::consts::FRAC_1_SQRT_2;
    println!("GHZ-{n}: diagram nodes = {}", sim.state_nodes());
    println!("  <0...0|psi> = {}", sim.amplitude(0));
    println!("  <1...1|psi> = {}", sim.amplitude((1u128 << n) - 1));
    assert!((sim.amplitude(0).abs() - h).abs() < 1e-9);

    // Part 2: compile a generalized Toffoli onto the 96-qubit machine and
    // simulate the mapped result on the full register.
    let device = devices::qc96();
    let mut spec = Circuit::new(96);
    spec.push(Gate::mct(vec![1, 2, 3, 4], 25));
    let result = Compiler::new(device).compile(&spec)?;
    println!(
        "\nT5 on qc96: mapped to {} gates, QMDD-verified = {:?}",
        result.optimized.len(),
        result.verified
    );

    let bit = |q: usize| 1u128 << (95 - q);
    let fire = bit(1) | bit(2) | bit(3) | bit(4);
    let mut sim96 = Simulator::with_basis_state(96, fire);
    sim96.run(&result.optimized);
    println!(
        "  |controls=1111> -> amplitude at target-flipped state: {}",
        sim96.amplitude(fire | bit(25))
    );
    assert!(sim96.amplitude(fire | bit(25)).is_one());

    let idle = bit(1) | bit(3); // controls not all one: nothing happens
    let mut sim_idle = Simulator::with_basis_state(96, idle);
    sim_idle.run(&result.optimized);
    assert!(sim_idle.amplitude(idle).is_one());
    println!("  |controls=1010> -> state unchanged  OK");
    Ok(())
}
