//! Target a CZ-native technology library — the paper's modularity claim
//! ("new technology libraries for non-IBM platforms can be added") made
//! concrete: the same pipeline, the same QMDD verification, but the
//! emitted two-qubit primitive is a symmetric CZ instead of a directed
//! CNOT.
//!
//! ```text
//! cargo run --example cz_backend
//! ```

use qsyn::prelude::*;

fn main() -> Result<(), CompileError> {
    // A CZ-native 8-qubit ring (think Google/Rigetti-style couplers).
    let device = devices::ring(8).with_native(TwoQubitNative::Cz);
    println!("target: {device} (native two-qubit gate: CZ)\n");

    let mut spec = Circuit::new(8).with_name("mixed");
    spec.push(Gate::h(0));
    spec.push(Gate::toffoli(0, 3, 6));
    spec.push(Gate::cz(2, 5)); // native on this library, foreign on IBM
    spec.push(Gate::cx(7, 1));

    let r = Compiler::new(device.clone()).compile(&spec)?;
    println!(
        "compiled: {} gates, QMDD-verified = {:?}",
        r.optimized.len(),
        r.verified
    );

    let stats = r.optimized.stats();
    let cz_count = r
        .optimized
        .gates()
        .iter()
        .filter(|g| matches!(g, Gate::Cz { .. }))
        .count();
    println!("two-qubit primitives: {} CZ, {} CNOT", cz_count, stats.cnot_count);
    assert_eq!(stats.cnot_count, 0, "a CZ library emits no CNOTs");
    assert!(device.can_execute(&r.optimized));

    // Same specification on the CNOT-native IBM library for contrast.
    let ibm = Compiler::new(devices::ibmqx5()).compile(&spec)?;
    println!(
        "\nsame circuit on ibmqx5 (CNOT library): {} gates, {} CNOT, verified = {:?}",
        ibm.optimized.len(),
        ibm.optimized.stats().cnot_count,
        ibm.verified
    );

    // Both mappings realize the identical unitary.
    assert!(circuits_equal(
        &r.optimized,
        &ibm.optimized.relabeled(16, |q| q)
    ));
    println!("cross-library equivalence (CZ machine vs IBM machine): OK");
    Ok(())
}
