//! Noise-aware compilation: annotate a device with measured CNOT error
//! rates and let the router trade SWAP count for end-to-end fidelity —
//! the direction the paper sketches when it mentions replacing
//! decoherence proxies with "qubit and operator fidelity" metrics.
//!
//! ```text
//! cargo run --example noise_aware
//! ```

use qsyn::prelude::*;

/// A 6-qubit ladder where the direct rail is noisy and the detour rail is
/// clean: 0-1-2 (errors ~8%) vs 0-3-4-5-2 (errors ~0.3%).
fn characterized_device() -> Device {
    Device::from_coupling_map(
        "ladder6",
        6,
        &[(0, &[1, 3]), (1, &[2]), (3, &[4]), (4, &[5]), (5, &[2])],
    )
    .with_cnot_errors([
        ((0, 1), 0.08),
        ((1, 2), 0.08),
        ((0, 3), 0.003),
        ((3, 4), 0.003),
        ((4, 5), 0.003),
        ((5, 2), 0.003),
    ])
}

/// Crude success-probability estimate for a mapped circuit: the product of
/// per-gate fidelities, using the device annotations for CNOTs.
fn success_probability(c: &Circuit, device: &Device) -> f64 {
    let mut p = 1.0;
    for g in c.gates() {
        match g {
            Gate::Cx { control, target } => {
                let e = device
                    .cnot_error(*control, *target)
                    .unwrap_or(qsyn::core::DEFAULT_CNOT_ERROR);
                p *= 1.0 - e;
            }
            _ => p *= 1.0 - 1e-3,
        }
    }
    p
}

fn main() -> Result<(), CompileError> {
    let device = characterized_device();
    // Workload: repeated CNOTs between the far corners 0 and 2.
    let mut spec = Circuit::new(6).with_name("corner_talk");
    for _ in 0..3 {
        spec.push(Gate::cx(0, 2));
        spec.push(Gate::t(2));
    }

    println!("| routing objective | gates | CNOTs | est. success probability |");
    println!("|---|---|---|---|");
    let mut success = Vec::new();
    for (name, objective) in [
        ("fewest-swaps (paper)", RoutingObjective::FewestSwaps),
        ("highest-fidelity", RoutingObjective::HighestFidelity),
    ] {
        let r = Compiler::new(device.clone())
            .with_routing(objective)
            .compile(&spec)?;
        assert_eq!(r.verified, Some(true));
        let p = success_probability(&r.optimized, &device);
        success.push(p);
        println!(
            "| {name} | {} | {} | {:.3} |",
            r.optimized.len(),
            r.optimized.stats().cnot_count,
            p
        );
    }
    println!(
        "\nfidelity-aware routing pays extra gates for a {:.1}x better \
         success estimate",
        success[1] / success[0]
    );
    assert!(success[1] > success[0]);

    // Cross-check the analytic product with a Monte-Carlo estimate on a
    // natively-legal classical workload (Pauli-twirled error injection
    // requires an NCT circuit, so no Hadamard reversals here).
    let mut classical = Circuit::new(6);
    for _ in 0..3 {
        classical.push(Gate::cx(0, 1));
        classical.push(Gate::cx(1, 2));
    }
    assert!(device.can_execute(&classical));
    let mc = qsyn::bench::noise::classical_success_rate(&classical, &device, 0b100000, 2000, 1234);
    let analytic = success_probability(&classical, &device);
    println!(
        "\nMonte-Carlo success on the native CNOT chain: {mc:.3} \
         (analytic product estimate {analytic:.3})"
    );
    assert!((mc - analytic).abs() < 0.1, "estimates should agree roughly");
    Ok(())
}
