//! Synthesize an arbitrary *reversible* specification — here an in-place
//! modular incrementer — with the transformation-based (MMD) front-end,
//! then compile it for a real device. Complements the ESOP front-end,
//! which targets irreversible functions.
//!
//! ```text
//! cargo run --example permutation_synthesis
//! ```

use qsyn::esop::{synthesize_permutation, Permutation};
use qsyn::prelude::*;

fn main() -> Result<(), CompileError> {
    // |x> -> |x + 1 mod 16> on 4 lines, no ancilla.
    let inc = Permutation::from_fn(4, |x| (x + 1) % 16);
    let cascade = synthesize_permutation(&inc).with_name("inc4");
    println!("4-bit incrementer via MMD synthesis:\n{cascade}");

    // Verify the classical behaviour, then compile to hardware.
    for x in 0..16u64 {
        assert_eq!(cascade.permute_basis(x), (x + 1) % 16);
    }
    let result = Compiler::new(devices::ibmqx5()).compile(&cascade)?;
    println!(
        "compiled for ibmqx5: {} gates, QMDD-verified = {:?}",
        result.optimized.len(),
        result.verified
    );

    // Round-trip: extract the permutation back from the cascade and
    // resynthesize; the functions agree.
    let back = Permutation::of_circuit(&cascade);
    assert_eq!(back, inc);
    println!("permutation round-trip through the circuit: OK");

    // MMD also handles arbitrary "scrambled" truth tables.
    let scrambled = Permutation::from_fn(3, |x| (x.wrapping_mul(5) + 3) % 8);
    let c2 = synthesize_permutation(&scrambled);
    println!(
        "\nscrambled 3-line permutation: {} MCT gates, T-count after \
         Clifford+T expansion: {}",
        c2.len(),
        {
            let r = Compiler::new(Device::simulator(6)).compile(&c2)?;
            r.optimized.stats().t_count
        }
    );
    Ok(())
}
