//! Compile reversible arithmetic — a ripple-carry adder — and a
//! Bernstein-Vazirani instance to hardware, then show with decision-diagram
//! simulation that the *mapped* circuits still compute sums and still leak
//! the hidden string.
//!
//! ```text
//! cargo run --release --example arithmetic
//! ```

use qsyn::bench::algorithms::bernstein_vazirani;
use qsyn::bench::arith::{adder_input, adder_output, cuccaro_adder};
use qsyn::prelude::*;

fn main() -> Result<(), CompileError> {
    // --- A 3-bit Cuccaro adder on the 16-qubit machine. ---------------
    let adder = cuccaro_adder(3); // 8 lines
    println!(
        "3-bit Cuccaro adder: {} gates ({} Toffoli-class) on {} lines",
        adder.len(),
        adder.stats().unmapped_multi_count,
        adder.n_qubits()
    );
    let r = Compiler::new(devices::ibmqx5()).compile(&adder)?;
    println!(
        "mapped to ibmqx5: {} gates, QMDD-verified = {:?}",
        r.optimized.len(),
        r.verified
    );

    // Exercise the mapped circuit as an actual adder via basis-state
    // simulation on all 16 device qubits.
    let pad = 16 - adder.n_qubits();
    for (a, b) in [(3u64, 5u64), (7, 7), (0, 6)] {
        let input = (adder_input(3, a, b, false) as u128) << pad;
        let mut sim = Simulator::with_basis_state(16, input);
        sim.run(&r.optimized);
        // Find the (unique) output basis state.
        let out_state = (0..1u128 << adder.n_qubits())
            .map(|s| s << pad)
            .find(|&s| sim.amplitude(s).abs() > 0.999)
            .expect("classical circuit, one output");
        let (sum, carry, _) = adder_output(3, (out_state >> pad) as u64);
        println!("  {a} + {b} = {} (carry {carry})", sum);
        assert_eq!(sum, (a + b) % 8);
        assert_eq!(carry, a + b >= 8);
    }

    // --- Bernstein-Vazirani on hardware. --------------------------------
    let secret = 0b1011u64;
    let bv = bernstein_vazirani(4, secret);
    let r = Compiler::new(devices::ibmq_16()).compile(&bv)?;
    println!(
        "\nBernstein-Vazirani (secret {secret:04b}) mapped to ibmq_16: \
         {} gates, verified = {:?}",
        r.optimized.len(),
        r.verified
    );
    let mut sim = Simulator::new(14);
    sim.run(&r.optimized);
    // The query register (top 4 lines) reads the secret with certainty.
    let read = (secret as u128) << (14 - 4);
    println!(
        "  amplitude at |{secret:04b}...0> after the mapped circuit: {}",
        sim.amplitude(read)
    );
    assert!(sim.amplitude(read).abs() > 0.999);
    println!("  the compiled circuit still recovers the secret in one query");
    Ok(())
}
