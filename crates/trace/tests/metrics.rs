//! Property tests of the metrics histogram: bucket boundary determinism,
//! merge equivalence, and the bounded-relative-error percentile guarantee
//! the log-linear layout promises (see `qsyn_trace::metrics`).

use proptest::prelude::*;
use qsyn_trace::metrics::{bucket_bounds, bucket_index, Histogram, BUCKETS};

/// The exact rank `HistogramSnapshot::quantile` targets.
fn rank(q: f64, n: usize) -> usize {
    ((q * n as f64).ceil() as u64).clamp(1, n as u64) as usize
}

/// Log-uniform u64 samples: a uniform draw right-shifted by a uniform
/// amount, so every octave of the histogram sees traffic (plain uniform
/// u64 samples would almost always land in the top few buckets).
fn log_u64() -> impl Strategy<Value = u64> {
    (0u32..64, 0u64..u64::MAX).prop_map(|(shift, v)| v >> shift)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands in exactly one bucket, and that bucket's bounds
    /// contain it: the layout partitions the whole u64 range.
    #[test]
    fn bucket_bounds_contain_their_values(v in log_u64()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= v && v <= hi, "{v} outside bucket {i} = [{lo}, {hi}]");
    }

    /// Bucket boundaries are deterministic and exact: a bucket's lower
    /// bound maps into that bucket, and the value one below it maps into
    /// the previous bucket.
    #[test]
    fn bucket_boundaries_are_exact(i in 0usize..BUCKETS) {
        let (lo, hi) = bucket_bounds(i);
        prop_assert_eq!(bucket_index(lo), i);
        if i + 1 < BUCKETS {
            prop_assert_eq!(hi + 1, bucket_bounds(i + 1).0, "buckets must tile");
            prop_assert_eq!(bucket_index(hi + 1), i + 1);
        }
        if i > 0 {
            prop_assert_eq!(bucket_index(lo - 1), i - 1);
        }
    }

    /// Recording two sample sets into two histograms and merging their
    /// snapshots equals recording everything into one histogram —
    /// the property that makes per-thread or per-shard collection exact.
    #[test]
    fn merge_equals_record_into_one(
        a in proptest::collection::vec(log_u64(), 0..40),
        b in proptest::collection::vec(log_u64(), 0..40),
    ) {
        let (ha, hb, hall) = (Histogram::default(), Histogram::default(), Histogram::default());
        for &v in &a {
            ha.record(v);
            hall.record(v);
        }
        for &v in &b {
            hb.record(v);
            hall.record(v);
        }
        let mut merged = ha.snapshot();
        merged.merge(&hb.snapshot());
        let direct = hall.snapshot();
        prop_assert_eq!(merged.count, direct.count);
        prop_assert_eq!(merged.sum, direct.sum);
        prop_assert_eq!(merged.buckets, direct.buckets);
    }

    /// A reported percentile is exactly the upper bound of the bucket
    /// holding the true rank-order statistic — so it never undershoots
    /// the true value and overshoots by at most one bucket width
    /// (25% relative above 4, exact below).
    #[test]
    fn percentile_is_bounded_by_bucket_width(
        samples in proptest::collection::vec(log_u64(), 1..80),
        q_mille in 10u32..1000,
    ) {
        let q = f64::from(q_mille) / 1000.0;
        let h = Histogram::default();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let reported = snap.quantile(q).expect("non-empty histogram");

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let truth = sorted[rank(q, sorted.len()) - 1];
        let (lo, hi) = bucket_bounds(bucket_index(truth));
        prop_assert_eq!(reported, hi, "quantile must report the bucket upper bound");
        prop_assert!(reported >= truth);
        // Bounded relative error: the bucket holding `truth` spans
        // [lo, hi] with hi < 1.25 * max(lo, 4) in the sub-bucketed
        // octaves, so the overshoot is bounded by the bucket width.
        prop_assert!(u128::from(hi) - u128::from(lo) <= u128::from(truth.max(4)) / 4 + 1);
    }
}

#[test]
fn quantile_extremes_hit_min_and_max_buckets() {
    let h = Histogram::default();
    for v in [1u64, 10, 100, 1000] {
        h.record(v);
    }
    let snap = h.snapshot();
    assert_eq!(snap.quantile(0.0), Some(bucket_bounds(bucket_index(1)).1));
    assert_eq!(snap.quantile(1.0), Some(bucket_bounds(bucket_index(1000)).1));
}
