//! A minimal JSON value model, emitter and parser.
//!
//! The trace layer emits machine-readable JSON lines and must also read
//! them back (round-trip tests, CI validation of `--trace` output). This
//! workspace builds in offline environments where `serde_json` may not be
//! available, so the subset of JSON the trace layer needs is implemented
//! here: objects, arrays, strings, numbers, booleans and null.
//!
//! Numbers are emitted through `f64`'s `Display`, which prints the
//! shortest representation that parses back to the identical bit pattern,
//! so `emit -> parse -> emit` is a fixed point.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key of an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number behind this value, truncated to usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64().map(|n| n as usize)
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array behind this value, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean behind this value, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json does.
                    write!(f, "null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Obj(pairs) => {
                write!(f, "{{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

/// Parses one JSON document.
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the first
/// syntax error, or describing trailing garbage after the document.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multibyte sequences pass
                    // through unescaped).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-1.5", "3.141592653589793", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.to_string()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let src = r#"{"pass":"route","counters":{"swaps":4},"xs":[1,2.5,null,true],"s":"a\"b\\c\nd"}"#;
        let v = parse(src).unwrap();
        let emitted = v.to_string();
        assert_eq!(parse(&emitted).unwrap(), v);
        assert_eq!(v.get("pass").and_then(Value::as_str), Some("route"));
        assert_eq!(
            v.get("counters").and_then(|c| c.get("swaps")).and_then(Value::as_f64),
            Some(4.0)
        );
        assert_eq!(v.get("xs").and_then(Value::as_arr).map(<[Value]>::len), Some(4));
    }

    #[test]
    fn f64_display_is_exact() {
        for n in [0.25, 1e-9, 123456.789, f64::MAX, 5.0] {
            let v = Value::Num(n);
            assert_eq!(parse(&v.to_string()).unwrap().as_f64(), Some(n));
        }
    }

    #[test]
    fn integral_numbers_emit_without_fraction() {
        assert_eq!(Value::Num(5.0).to_string(), "5");
        assert_eq!(Value::Num(0.0).to_string(), "0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nulls").is_err());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_arr).map(<[Value]>::len), Some(2));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        let ctl = Value::Str("\u{1}".into()).to_string();
        assert_eq!(ctl, "\"\\u0001\"");
        assert_eq!(parse(&ctl).unwrap().as_str(), Some("\u{1}"));
    }
}
