//! The structured event model: passes, per-pass snapshots and events, the
//! [`Span`] timing helper, and the aggregate [`CompileMetrics`].

use crate::json::{self, Value};
use qsyn_circuit::{depth, t_depth, Circuit, CircuitStats};
use std::fmt::Write as _;
use std::time::Instant;

/// One stage of the compiler's Fig. 2 back-end pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Logical-to-physical placement.
    Place,
    /// Generalized-Toffoli and Clifford+T lowering (Barenco, Nielsen &
    /// Chuang).
    Decompose,
    /// CNOT legalization against the coupling map (Fig. 6 reversal, CTR
    /// reroute or persistent-layout routing).
    Route,
    /// Local cost-function optimization.
    Optimize,
    /// QMDD formal verification of the output against the specification.
    Verify,
}

impl Pass {
    /// Every pass, in the paper's Fig. 2 pipeline order.
    pub const FIG2_ORDER: [Pass; 5] = [
        Pass::Place,
        Pass::Decompose,
        Pass::Route,
        Pass::Optimize,
        Pass::Verify,
    ];

    /// Stable lowercase identifier used in JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Place => "place",
            Pass::Decompose => "decompose",
            Pass::Route => "route",
            Pass::Optimize => "optimize",
            Pass::Verify => "verify",
        }
    }

    /// Inverse of [`Pass::name`].
    pub fn from_name(name: &str) -> Option<Pass> {
        Pass::FIG2_ORDER.into_iter().find(|p| p.name() == name)
    }
}

impl std::fmt::Display for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Routing-strategy names in numeric-tag order: the route pass stamps its
/// event with a `strategy` counter holding the index into this table, and
/// `qsyn check-trace` resolves it back via [`route_strategy_name`].
///
/// Counters are numeric by design (see [`PassEvent::counters`]), so the
/// strategy travels as a small integer; this table is the single shared
/// registry both the emitting and the validating side use.
pub const ROUTE_STRATEGY_NAMES: [&str; 3] = ["ctr", "lookahead", "lazy-synth"];

/// The routing-strategy name behind a route event's `strategy` counter
/// value, or `None` when the value is not an exact known tag.
pub fn route_strategy_name(tag: f64) -> Option<&'static str> {
    ROUTE_STRATEGY_NAMES
        .iter()
        .enumerate()
        .find(|&(i, _)| tag == i as f64)
        .map(|(_, name)| *name)
}

/// Inverse of [`route_strategy_name`]: the numeric tag a strategy name is
/// recorded under.
pub fn route_strategy_tag(name: &str) -> Option<f64> {
    ROUTE_STRATEGY_NAMES
        .iter()
        .position(|&n| n == name)
        .map(|i| i as f64)
}

/// Circuit shape at a pass boundary: gate statistics plus the two depth
/// metrics every report table of the paper uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageSnapshot {
    /// Register width.
    pub qubits: usize,
    /// Aggregate gate counts (T, CNOT, volume, ...).
    pub stats: CircuitStats,
    /// Critical-path depth.
    pub depth: usize,
    /// T-depth (fault-tolerance latency).
    pub t_depth: usize,
}

impl StageSnapshot {
    /// Captures a circuit's statistics and depths.
    pub fn of(circuit: &Circuit) -> Self {
        StageSnapshot {
            qubits: circuit.n_qubits(),
            stats: circuit.stats(),
            depth: depth(circuit),
            t_depth: t_depth(circuit),
        }
    }

    fn to_json(self) -> Value {
        let n = |v: usize| Value::Num(v as f64);
        Value::Obj(vec![
            ("qubits".into(), n(self.qubits)),
            ("gates".into(), n(self.stats.volume)),
            ("t".into(), n(self.stats.t_count)),
            ("cnot".into(), n(self.stats.cnot_count)),
            ("other_single".into(), n(self.stats.other_single_count)),
            ("unmapped_multi".into(), n(self.stats.unmapped_multi_count)),
            ("max_mct_controls".into(), n(self.stats.max_mct_controls)),
            ("depth".into(), n(self.depth)),
            ("t_depth".into(), n(self.t_depth)),
        ])
    }

    fn from_json(v: &Value) -> Option<Self> {
        let n = |key: &str| v.get(key).and_then(Value::as_usize);
        Some(StageSnapshot {
            qubits: n("qubits")?,
            stats: CircuitStats {
                volume: n("gates")?,
                t_count: n("t")?,
                cnot_count: n("cnot")?,
                other_single_count: n("other_single")?,
                unmapped_multi_count: n("unmapped_multi")?,
                max_mct_controls: n("max_mct_controls")?,
            },
            depth: n("depth")?,
            t_depth: n("t_depth")?,
        })
    }
}

/// One completed pipeline pass: what went in, what came out, how long it
/// took, what it cost (paper Eqn. 2 under the compiler's active cost
/// model), and backend-specific counters (SWAPs inserted, optimizer
/// rounds, QMDD node/cache figures, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct PassEvent {
    /// Which pass ran.
    pub pass: Pass,
    /// Identifier of the compilation job this event belongs to. `None` for
    /// single-compile traces; parallel sweeps stamp every event with its
    /// (circuit x device) job index so interleaved JSONL streams can be
    /// grouped back into per-job pass sequences.
    pub job: Option<u64>,
    /// Wall-clock time of the pass in seconds.
    pub seconds: f64,
    /// Circuit shape entering the pass.
    pub input: StageSnapshot,
    /// Circuit shape leaving the pass.
    pub output: StageSnapshot,
    /// Cost of the input under the compiler's cost model.
    pub cost_in: f64,
    /// Cost of the output under the compiler's cost model.
    pub cost_out: f64,
    /// Backend-specific counters, e.g. `("swaps_inserted", 4.0)`.
    pub counters: Vec<(String, f64)>,
}

impl PassEvent {
    /// Cost improvement of the pass (positive when the pass cheapened the
    /// circuit; decomposition and routing are normally negative).
    pub fn cost_delta(&self) -> f64 {
        self.cost_in - self.cost_out
    }

    /// Looks up a backend counter by name.
    pub fn counter(&self, name: &str) -> Option<f64> {
        self.counters.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Serializes the event as one JSON object (the JSONL line format).
    /// The `job` key is present only for stamped (sweep) events, so
    /// single-compile traces keep their original shape.
    pub fn to_json(&self) -> Value {
        let mut pairs = vec![("pass".to_string(), Value::Str(self.pass.name().into()))];
        if let Some(job) = self.job {
            pairs.push(("job".into(), Value::Num(job as f64)));
        }
        pairs.extend([
            ("seconds".to_string(), Value::Num(self.seconds)),
            ("input".into(), self.input.to_json()),
            ("output".into(), self.output.to_json()),
            ("cost_in".into(), Value::Num(self.cost_in)),
            ("cost_out".into(), Value::Num(self.cost_out)),
            ("cost_delta".into(), Value::Num(self.cost_delta())),
            (
                "counters".into(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
        ]);
        Value::Obj(pairs)
    }

    /// Deserializes an event produced by [`PassEvent::to_json`].
    pub fn from_json(v: &Value) -> Option<Self> {
        let counters = match v.get("counters")? {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, val)| Some((k.clone(), val.as_f64()?)))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(PassEvent {
            pass: Pass::from_name(v.get("pass")?.as_str()?)?,
            // Optional for backward compatibility with pre-sweep traces.
            job: v.get("job").and_then(Value::as_f64).map(|n| n as u64),
            seconds: v.get("seconds")?.as_f64()?,
            input: StageSnapshot::from_json(v.get("input")?)?,
            output: StageSnapshot::from_json(v.get("output")?)?,
            cost_in: v.get("cost_in")?.as_f64()?,
            cost_out: v.get("cost_out")?.as_f64()?,
            counters,
        })
    }
}

/// An in-flight pass measurement: start it before the pass runs, attach
/// counters as they become known, finish it into a [`PassEvent`].
#[derive(Debug)]
pub struct Span {
    pass: Pass,
    started: Instant,
    counters: Vec<(String, f64)>,
}

impl Span {
    /// Starts timing a pass.
    pub fn begin(pass: Pass) -> Self {
        Span {
            pass,
            started: Instant::now(),
            counters: Vec::new(),
        }
    }

    /// Attaches a backend-specific counter.
    pub fn counter(&mut self, name: impl Into<String>, value: f64) -> &mut Self {
        self.counters.push((name.into(), value));
        self
    }

    /// Stops the clock and produces the event.
    pub fn finish(
        self,
        input: StageSnapshot,
        output: StageSnapshot,
        cost_in: f64,
        cost_out: f64,
    ) -> PassEvent {
        PassEvent {
            pass: self.pass,
            job: None,
            seconds: self.started.elapsed().as_secs_f64(),
            input,
            output,
            cost_in,
            cost_out,
            counters: self.counters,
        }
    }
}

/// Final verification outcome of a compile, including the graceful-
/// degradation ladder's explicit "gave up" state.
///
/// `Unverified` is a first-class outcome, never a silent pass: it records
/// that every rung of the verification ladder exhausted its resource budget
/// before reaching a verdict, so the output is *unknown*, not known-good.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Verdict {
    /// Equivalence established by the named strategy (`"canonical"`,
    /// `"canonical+gc"`, `"miter"`, ...).
    Verified {
        /// The strategy that produced the verdict.
        method: String,
    },
    /// The check ran to completion and the output does **not** implement
    /// the specification.
    Failed {
        /// The strategy that produced the verdict.
        method: String,
    },
    /// Verification was disabled.
    #[default]
    Skipped,
    /// Every ladder rung ran out of budget; no verdict was reached.
    Unverified {
        /// Why the ladder gave up (e.g. the budget that was exhausted).
        reason: String,
    },
}

impl Verdict {
    /// The legacy boolean view: `Some(true)` for verified, `Some(false)`
    /// for failed, `None` for skipped *and* unverified (no verdict).
    pub fn as_verified(&self) -> Option<bool> {
        match self {
            Verdict::Verified { .. } => Some(true),
            Verdict::Failed { .. } => Some(false),
            Verdict::Skipped | Verdict::Unverified { .. } => None,
        }
    }

    /// Whether the ladder gave up without a verdict.
    pub fn is_unverified(&self) -> bool {
        matches!(self, Verdict::Unverified { .. })
    }

    /// Reconstructs a verdict from the legacy `verified` field of
    /// pre-ladder traces (the strategy was not recorded back then).
    pub fn from_legacy(verified: Option<bool>) -> Verdict {
        match verified {
            Some(true) => Verdict::Verified {
                method: "unknown".into(),
            },
            Some(false) => Verdict::Failed {
                method: "unknown".into(),
            },
            None => Verdict::Skipped,
        }
    }

    /// Stable lowercase status identifier used in JSON output.
    pub fn status(&self) -> &'static str {
        match self {
            Verdict::Verified { .. } => "verified",
            Verdict::Failed { .. } => "failed",
            Verdict::Skipped => "skipped",
            Verdict::Unverified { .. } => "unverified",
        }
    }

    fn to_json(&self) -> Value {
        let mut pairs = vec![("status".to_string(), Value::Str(self.status().into()))];
        match self {
            Verdict::Verified { method } | Verdict::Failed { method } => {
                pairs.push(("method".into(), Value::Str(method.clone())));
            }
            Verdict::Unverified { reason } => {
                pairs.push(("reason".into(), Value::Str(reason.clone())));
            }
            Verdict::Skipped => {}
        }
        Value::Obj(pairs)
    }

    fn from_json(v: &Value) -> Option<Self> {
        let method = || {
            v.get("method")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string()
        };
        Some(match v.get("status")?.as_str()? {
            "verified" => Verdict::Verified { method: method() },
            "failed" => Verdict::Failed { method: method() },
            "skipped" => Verdict::Skipped,
            "unverified" => Verdict::Unverified {
                reason: v
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
            },
            _ => return None,
        })
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Verified { method } => write!(f, "passed ({method})"),
            Verdict::Failed { method } => write!(f, "FAILED ({method})"),
            Verdict::Skipped => f.write_str("skipped"),
            Verdict::Unverified { reason } => write!(f, "UNVERIFIED — {reason}"),
        }
    }
}

/// Structured record of one full compilation: every pass event plus the
/// identifying context, replacing the old hand-formatted report string.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompileMetrics {
    /// Input circuit name.
    pub circuit: String,
    /// Target device name.
    pub device: String,
    /// Name of the cost model the events were priced under.
    pub cost_model: String,
    /// Per-pass events in execution (Fig. 2) order.
    pub events: Vec<PassEvent>,
    /// Verification verdict (`None` when verification was disabled).
    /// Legacy boolean view of [`CompileMetrics::verdict`]; the two are kept
    /// coherent by the compiler.
    pub verified: Option<bool>,
    /// Structured verification outcome, including the degradation ladder's
    /// explicit [`Verdict::Unverified`] state.
    pub verdict: Verdict,
    /// Total wall-clock seconds across all passes.
    pub total_seconds: f64,
    /// Whether this record was replayed from the compile cache rather
    /// than produced by running the pipeline.
    pub cache_hit: bool,
}

impl CompileMetrics {
    /// The event of a given pass, if that pass ran.
    pub fn pass(&self, pass: Pass) -> Option<&PassEvent> {
        self.events.iter().find(|e| e.pass == pass)
    }

    /// Percent cost decrease achieved by the optimization pass — the
    /// quantity reported in the paper's Tables 4, 6 and 8, computed under
    /// the compiler's cost model.
    pub fn percent_cost_decrease(&self) -> f64 {
        match self.pass(Pass::Optimize) {
            Some(e) if e.cost_in != 0.0 => (e.cost_in - e.cost_out) / e.cost_in * 100.0,
            _ => 0.0,
        }
    }

    /// Net cost change over the whole pipeline (sum of per-pass deltas).
    pub fn total_cost_delta(&self) -> f64 {
        self.events.iter().map(PassEvent::cost_delta).sum()
    }

    /// Renders the stage table: one row per pass with sizes, depths, cost
    /// and timing — a superset of the old `report()` markdown table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compile trace for {:?} on {} (cost model {})",
            self.circuit, self.device, self.cost_model
        );
        let _ = writeln!(
            out,
            "| pass | T | CNOT | gates | depth | T-depth | cost | Δcost | ms | detail |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
        // Lead with the specification (the input of the first pass) so the
        // table shows the same specification/mapped/optimized progression
        // as the paper's tables.
        if let Some(first) = self.events.first() {
            let s = first.input;
            let _ = writeln!(
                out,
                "| specification | {} | {} | {} | {} | {} | {:.2} | | | |",
                s.stats.t_count, s.stats.cnot_count, s.stats.volume, s.depth, s.t_depth,
                first.cost_in
            );
        }
        for e in &self.events {
            let s = e.output;
            let detail: Vec<String> = e
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {:.2} | {:+.2} | {:.2} | {} |",
                e.pass,
                s.stats.t_count,
                s.stats.cnot_count,
                s.stats.volume,
                s.depth,
                s.t_depth,
                e.cost_out,
                e.cost_delta(),
                e.seconds * 1e3,
                detail.join(", ")
            );
        }
        let _ = writeln!(
            out,
            "optimization recovered {:.1}% of the mapping cost",
            self.percent_cost_decrease()
        );
        let _ = writeln!(out, "QMDD verification: {}", self.verdict);
        out
    }

    /// Serializes the whole record as one JSON object.
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("circuit".into(), Value::Str(self.circuit.clone())),
            ("device".into(), Value::Str(self.device.clone())),
            ("cost_model".into(), Value::Str(self.cost_model.clone())),
            (
                "verified".into(),
                match self.verified {
                    Some(b) => Value::Bool(b),
                    None => Value::Null,
                },
            ),
            ("verdict".into(), self.verdict.to_json()),
            ("total_seconds".into(), Value::Num(self.total_seconds)),
            ("cache_hit".into(), Value::Bool(self.cache_hit)),
            (
                "events".into(),
                Value::Arr(self.events.iter().map(PassEvent::to_json).collect()),
            ),
        ])
    }

    /// Deserializes a record produced by [`CompileMetrics::to_json`].
    pub fn from_json(v: &Value) -> Option<Self> {
        let verified = match v.get("verified")? {
            Value::Null => None,
            other => Some(other.as_bool()?),
        };
        Some(CompileMetrics {
            circuit: v.get("circuit")?.as_str()?.to_string(),
            device: v.get("device")?.as_str()?.to_string(),
            cost_model: v.get("cost_model")?.as_str()?.to_string(),
            verified,
            // Absent in pre-ladder traces: reconstruct from the boolean.
            verdict: match v.get("verdict") {
                Some(obj) => Verdict::from_json(obj)?,
                None => Verdict::from_legacy(verified),
            },
            total_seconds: v.get("total_seconds")?.as_f64()?,
            // Absent in pre-cache traces: those were always fresh runs.
            cache_hit: v
                .get("cache_hit")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            events: v
                .get("events")?
                .as_arr()?
                .iter()
                .map(PassEvent::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }

    /// Parses a record from its JSON text form.
    ///
    /// # Errors
    ///
    /// Returns the JSON syntax error, or a schema message when the text is
    /// valid JSON but not a serialized `CompileMetrics`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        Self::from_json(&v).ok_or_else(|| "not a CompileMetrics object".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::Gate;

    fn sample_event() -> PassEvent {
        let mut c = Circuit::new(3);
        c.push(Gate::t(0));
        c.push(Gate::cx(0, 1));
        let snap = StageSnapshot::of(&c);
        let mut span = Span::begin(Pass::Route);
        span.counter("swaps_inserted", 4.0);
        span.finish(snap, snap, 2.75, 3.5)
    }

    #[test]
    fn fig2_order_matches_names() {
        let names: Vec<&str> = Pass::FIG2_ORDER.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["place", "decompose", "route", "optimize", "verify"]);
        for p in Pass::FIG2_ORDER {
            assert_eq!(Pass::from_name(p.name()), Some(p));
        }
        assert_eq!(Pass::from_name("bogus"), None);
    }

    #[test]
    fn snapshot_captures_stats_and_depths() {
        let mut c = Circuit::new(2);
        c.push(Gate::t(0));
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        let s = StageSnapshot::of(&c);
        assert_eq!(s.qubits, 2);
        assert_eq!(s.stats.t_count, 1);
        assert_eq!(s.stats.cnot_count, 1);
        assert_eq!(s.depth, 3);
        assert_eq!(s.t_depth, 1);
    }

    #[test]
    fn event_round_trips_through_json() {
        let e = sample_event();
        let line = e.to_json().to_string();
        let parsed = PassEvent::from_json(&crate::json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn job_id_round_trips_and_is_omitted_when_absent() {
        let mut e = sample_event();
        assert!(!e.to_json().to_string().contains("\"job\""));
        e.job = Some(17);
        let line = e.to_json().to_string();
        assert!(line.contains("\"job\":17"));
        let parsed = PassEvent::from_json(&crate::json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed.job, Some(17));
        assert_eq!(parsed, e);
    }

    #[test]
    fn event_exposes_counters_and_delta() {
        let e = sample_event();
        assert_eq!(e.counter("swaps_inserted"), Some(4.0));
        assert_eq!(e.counter("missing"), None);
        assert!((e.cost_delta() - (2.75 - 3.5)).abs() < 1e-12);
    }

    #[test]
    fn metrics_round_trip_and_pct() {
        let mut m = CompileMetrics {
            circuit: "tof".into(),
            device: "ibmqx4".into(),
            cost_model: "transmon-eqn2".into(),
            events: vec![sample_event()],
            verified: Some(true),
            verdict: Verdict::Verified {
                method: "canonical".into(),
            },
            total_seconds: 0.25,
            cache_hit: false,
        };
        m.events[0].pass = Pass::Optimize;
        let parsed = CompileMetrics::parse(&m.to_json().to_string()).unwrap();
        assert_eq!(parsed, m);
        // optimize went 2.75 -> 3.5: a cost increase, negative decrease.
        assert!((m.percent_cost_decrease() - (2.75 - 3.5) / 2.75 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn table_names_all_stages() {
        let m = CompileMetrics {
            circuit: "tof".into(),
            device: "ibmqx4".into(),
            cost_model: "transmon-eqn2".into(),
            events: vec![sample_event()],
            verified: Some(true),
            verdict: Verdict::Verified {
                method: "canonical".into(),
            },
            total_seconds: 0.0,
            cache_hit: false,
        };
        let t = m.render_table();
        assert!(t.contains("specification"));
        assert!(t.contains("route"));
        assert!(t.contains("swaps_inserted=4"));
        assert!(t.contains("QMDD verification: passed"));
    }

    #[test]
    fn verdict_round_trips_through_json() {
        for verdict in [
            Verdict::Verified {
                method: "canonical".into(),
            },
            Verdict::Failed {
                method: "miter".into(),
            },
            Verdict::Skipped,
            Verdict::Unverified {
                reason: "node budget exhausted on every rung".into(),
            },
        ] {
            let m = CompileMetrics {
                circuit: "c".into(),
                device: "d".into(),
                cost_model: "volume".into(),
                events: vec![],
                verified: verdict.as_verified(),
                verdict: verdict.clone(),
                total_seconds: 0.0,
            cache_hit: false,
            };
            let parsed = CompileMetrics::parse(&m.to_json().to_string()).unwrap();
            assert_eq!(parsed.verdict, verdict);
            assert_eq!(parsed.verified, verdict.as_verified());
        }
    }

    #[test]
    fn legacy_metrics_without_verdict_key_reconstruct() {
        let mut m = CompileMetrics {
            circuit: "c".into(),
            device: "d".into(),
            cost_model: "volume".into(),
            events: vec![],
            verified: Some(true),
            verdict: Verdict::Verified {
                method: "canonical".into(),
            },
            total_seconds: 0.0,
            cache_hit: false,
        };
        // Simulate a pre-ladder trace by dropping the verdict key.
        let text = m.to_json().to_string();
        let legacy = text.replacen(
            ",\"verdict\":{\"status\":\"verified\",\"method\":\"canonical\"}",
            "",
            1,
        );
        assert_ne!(text, legacy, "verdict key must have been removed");
        let parsed = CompileMetrics::parse(&legacy).unwrap();
        assert_eq!(parsed.verified, Some(true));
        assert_eq!(
            parsed.verdict,
            Verdict::Verified {
                method: "unknown".into()
            }
        );
        // And the boolean drives the reconstruction for the other states.
        m.verified = None;
        m.verdict = Verdict::Skipped;
        let legacy = m
            .to_json()
            .to_string()
            .replacen(",\"verdict\":{\"status\":\"skipped\"}", "", 1);
        assert_eq!(CompileMetrics::parse(&legacy).unwrap().verdict, Verdict::Skipped);
    }

    #[test]
    fn unverified_renders_loudly() {
        let m = CompileMetrics {
            circuit: "big".into(),
            device: "qc96".into(),
            cost_model: "volume".into(),
            events: vec![],
            verified: None,
            verdict: Verdict::Unverified {
                reason: "node budget exhausted".into(),
            },
            total_seconds: 0.0,
            cache_hit: false,
        };
        let t = m.render_table();
        assert!(t.contains("UNVERIFIED"), "{t}");
        assert!(t.contains("node budget exhausted"), "{t}");
    }

    #[test]
    fn missing_optimize_pass_means_zero_pct() {
        let m = CompileMetrics::default();
        assert_eq!(m.percent_cost_decrease(), 0.0);
        assert_eq!(m.pass(Pass::Optimize), None);
    }
}
