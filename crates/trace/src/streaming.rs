//! Canonical counter names — and an internal-consistency validator — for
//! the aggregate route event a streaming compile emits.
//!
//! A streaming compile (gate-window by gate-window, bounded resident
//! circuit) produces ONE [`Pass::Route`] event summarizing every window
//! instead of a per-window event stream. The emitter (`qsyn-core`) and the
//! consumers (`qsyn check-trace`, the bench harness) share this module so
//! the counter names cannot drift apart.

use crate::{Pass, PassEvent};

/// Marker counter: `1.0` on the aggregate route event of a streaming
/// compile, absent (or `0.0`) on ordinary whole-circuit route events.
pub const STREAMING: &str = "streaming";
/// Number of gate windows the stream was split into (>= 1).
pub const WINDOWS: &str = "windows";
/// The window size cap: at most this many input gates per window.
pub const WINDOW_GATES_CAP: &str = "window_gates_cap";
/// Total SWAPs inserted across all windows.
pub const SWAPS_INSERTED: &str = "swaps_inserted";
/// The largest per-window SWAP count observed.
pub const MAX_WINDOW_SWAPS: &str = "max_window_swaps";
/// The per-window SWAP budget, when one was configured. A trace whose
/// [`MAX_WINDOW_SWAPS`] exceeds this cap is self-contradictory.
pub const WINDOW_SWAP_CAP: &str = "window_swap_cap";
/// Distance-oracle memo hits accumulated over the stream (sparse lookup
/// path only).
pub const ORACLE_HITS: &str = "oracle_hits";
/// Distance-oracle memo misses (Dijkstra/search runs) over the stream.
pub const ORACLE_MISSES: &str = "oracle_misses";
/// Windows whose windowed-miter equivalence check succeeded.
pub const VERIFIED_WINDOWS: &str = "verified_windows";
/// Windows whose check exhausted its QMDD node budget (degraded mode).
pub const UNVERIFIED_WINDOWS: &str = "unverified_windows";
/// High-water mark of gates resident in memory at once.
pub const PEAK_RESIDENT_GATES: &str = "peak_resident_gates";
/// The widest per-window miter support: how many device lines any single
/// window's spec and routed output actually touched. Support-restricted
/// verification builds each window's miter on that many qubits.
pub const MAX_WINDOW_SUPPORT: &str = "max_window_support";
/// CPU seconds spent in window miter checks, summed across verify
/// workers (may exceed the event's wall-clock when workers > 1).
pub const VERIFY_SECONDS_TOTAL: &str = "verify_seconds_total";
/// Verify workers used: the pool size for parallel verification, 1 for
/// inline verification, 0 when verification was disabled.
pub const VERIFY_JOBS: &str = "verify_jobs";

/// The streaming counters recovered from a validated route event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingCounters {
    /// Gate windows processed.
    pub windows: f64,
    /// Windows that passed the windowed-miter check.
    pub verified_windows: f64,
    /// Windows left unverified by budget exhaustion.
    pub unverified_windows: f64,
    /// Largest per-window SWAP count.
    pub max_window_swaps: f64,
    /// Oracle memo hits (0 when the dense table served the stream).
    pub oracle_hits: f64,
    /// Oracle memo misses (0 when the dense table served the stream).
    pub oracle_misses: f64,
    /// Widest per-window miter support (0 on traces predating support
    /// restriction or with verification off).
    pub max_window_support: f64,
    /// Total verify CPU seconds across workers.
    pub verify_seconds_total: f64,
    /// Verify workers used (0 = verification off).
    pub verify_jobs: f64,
}

/// Validates the streaming counters of a route event.
///
/// Returns `Ok(None)` when the event is not a streaming route event (not
/// [`Pass::Route`], or no [`STREAMING`] marker), and `Ok(Some(_))` with
/// the recovered counters when the event is internally consistent:
///
/// * the [`STREAMING`] marker is boolean;
/// * [`WINDOWS`] is present and >= 1;
/// * [`VERIFIED_WINDOWS`] + [`UNVERIFIED_WINDOWS`] accounts for every
///   window;
/// * oracle hit/miss counters, when present, are non-negative;
/// * [`MAX_WINDOW_SWAPS`] does not exceed [`WINDOW_SWAP_CAP`] when a cap
///   was recorded — a completed stream reporting a blown per-window cap
///   is corrupt;
/// * [`MAX_WINDOW_SUPPORT`], [`VERIFY_SECONDS_TOTAL`], and
///   [`VERIFY_JOBS`], when present, are non-negative, and a stream that
///   verified at least one window reports `verify_jobs >= 1`.
///
/// # Errors
///
/// A human-readable description of the first violated invariant.
pub fn validate_streaming_route_event(
    e: &PassEvent,
) -> Result<Option<StreamingCounters>, String> {
    if e.pass != Pass::Route {
        return Ok(None);
    }
    match e.counter(STREAMING) {
        None | Some(0.0) => return Ok(None),
        Some(1.0) => {}
        Some(v) => return Err(format!("`{STREAMING}` marker must be 0 or 1, got {v}")),
    }
    let windows = e
        .counter(WINDOWS)
        .ok_or_else(|| format!("streaming route event is missing `{WINDOWS}`"))?;
    if windows.is_nan() || windows < 1.0 {
        return Err(format!("`{WINDOWS}` must be >= 1, got {windows}"));
    }
    let verified = e.counter(VERIFIED_WINDOWS).unwrap_or(0.0);
    let unverified = e.counter(UNVERIFIED_WINDOWS).unwrap_or(0.0);
    if verified + unverified > windows {
        return Err(format!(
            "`{VERIFIED_WINDOWS}` ({verified}) + `{UNVERIFIED_WINDOWS}` ({unverified}) \
             exceeds `{WINDOWS}` ({windows})"
        ));
    }
    for name in [ORACLE_HITS, ORACLE_MISSES] {
        if let Some(v) = e.counter(name) {
            if v.is_nan() || v < 0.0 {
                return Err(format!("`{name}` must be non-negative, got {v}"));
            }
        }
    }
    let max_window_swaps = e.counter(MAX_WINDOW_SWAPS).unwrap_or(0.0);
    if let Some(cap) = e.counter(WINDOW_SWAP_CAP) {
        if max_window_swaps > cap {
            return Err(format!(
                "`{MAX_WINDOW_SWAPS}` ({max_window_swaps}) exceeds the per-window \
                 SWAP cap {cap} recorded in the same event"
            ));
        }
    }
    for name in [MAX_WINDOW_SUPPORT, VERIFY_SECONDS_TOTAL, VERIFY_JOBS] {
        if let Some(v) = e.counter(name) {
            if v.is_nan() || v < 0.0 {
                return Err(format!("`{name}` must be non-negative, got {v}"));
            }
        }
    }
    let verify_jobs = e.counter(VERIFY_JOBS).unwrap_or(0.0);
    if verified + unverified > 0.0 && e.counter(VERIFY_JOBS).is_some() && verify_jobs < 1.0 {
        return Err(format!(
            "stream verified {verified} window(s) but reports `{VERIFY_JOBS}` = {verify_jobs}"
        ));
    }
    Ok(Some(StreamingCounters {
        windows,
        verified_windows: verified,
        unverified_windows: unverified,
        max_window_swaps,
        oracle_hits: e.counter(ORACLE_HITS).unwrap_or(0.0),
        oracle_misses: e.counter(ORACLE_MISSES).unwrap_or(0.0),
        max_window_support: e.counter(MAX_WINDOW_SUPPORT).unwrap_or(0.0),
        verify_seconds_total: e.counter(VERIFY_SECONDS_TOTAL).unwrap_or(0.0),
        verify_jobs,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Span, StageSnapshot};

    fn event(counters: &[(&str, f64)]) -> PassEvent {
        let mut span = Span::begin(Pass::Route);
        for &(k, v) in counters {
            span.counter(k, v);
        }
        span.finish(StageSnapshot::default(), StageSnapshot::default(), 0.0, 0.0)
    }

    #[test]
    fn non_streaming_events_pass_through() {
        assert_eq!(validate_streaming_route_event(&event(&[])), Ok(None));
        assert_eq!(
            validate_streaming_route_event(&event(&[(STREAMING, 0.0)])),
            Ok(None)
        );
        let mut verify = Span::begin(Pass::Verify);
        verify.counter(STREAMING, 1.0);
        let verify =
            verify.finish(StageSnapshot::default(), StageSnapshot::default(), 0.0, 0.0);
        assert_eq!(validate_streaming_route_event(&verify), Ok(None));
    }

    #[test]
    fn consistent_streaming_event_is_recovered() {
        let e = event(&[
            (STREAMING, 1.0),
            (WINDOWS, 4.0),
            (VERIFIED_WINDOWS, 3.0),
            (UNVERIFIED_WINDOWS, 1.0),
            (MAX_WINDOW_SWAPS, 7.0),
            (WINDOW_SWAP_CAP, 16.0),
            (ORACLE_HITS, 100.0),
            (ORACLE_MISSES, 12.0),
            (MAX_WINDOW_SUPPORT, 9.0),
            (VERIFY_SECONDS_TOTAL, 0.25),
            (VERIFY_JOBS, 4.0),
        ]);
        let c = validate_streaming_route_event(&e).unwrap().unwrap();
        assert_eq!(c.windows, 4.0);
        assert_eq!(c.verified_windows, 3.0);
        assert_eq!(c.oracle_misses, 12.0);
        assert_eq!(c.max_window_support, 9.0);
        assert_eq!(c.verify_seconds_total, 0.25);
        assert_eq!(c.verify_jobs, 4.0);
    }

    #[test]
    fn verify_counters_are_validated() {
        // Negative verify time is corrupt.
        assert!(validate_streaming_route_event(&event(&[
            (STREAMING, 1.0),
            (WINDOWS, 2.0),
            (VERIFY_SECONDS_TOTAL, -0.5),
        ]))
        .is_err());
        // Verified windows with zero recorded workers is contradictory...
        assert!(validate_streaming_route_event(&event(&[
            (STREAMING, 1.0),
            (WINDOWS, 2.0),
            (VERIFIED_WINDOWS, 2.0),
            (VERIFY_JOBS, 0.0),
        ]))
        .is_err());
        // ...but an event omitting the counter entirely (pre-support-
        // restriction traces) still validates.
        assert!(validate_streaming_route_event(&event(&[
            (STREAMING, 1.0),
            (WINDOWS, 2.0),
            (VERIFIED_WINDOWS, 2.0),
        ]))
        .unwrap()
        .is_some());
    }

    #[test]
    fn violations_are_rejected() {
        assert!(validate_streaming_route_event(&event(&[(STREAMING, 1.0)])).is_err());
        assert!(validate_streaming_route_event(&event(&[
            (STREAMING, 1.0),
            (WINDOWS, 0.0),
        ]))
        .is_err());
        assert!(validate_streaming_route_event(&event(&[
            (STREAMING, 1.0),
            (WINDOWS, 2.0),
            (VERIFIED_WINDOWS, 2.0),
            (UNVERIFIED_WINDOWS, 1.0),
        ]))
        .is_err());
        assert!(validate_streaming_route_event(&event(&[
            (STREAMING, 1.0),
            (WINDOWS, 2.0),
            (ORACLE_HITS, -1.0),
        ]))
        .is_err());
        assert!(validate_streaming_route_event(&event(&[
            (STREAMING, 1.0),
            (WINDOWS, 2.0),
            (MAX_WINDOW_SWAPS, 9.0),
            (WINDOW_SWAP_CAP, 8.0),
        ]))
        .is_err());
    }
}
