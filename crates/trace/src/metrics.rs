//! Process-wide live metrics: named atomic counters, gauges, and
//! log-bucketed histograms behind a [`MetricsRegistry`].
//!
//! Trace events ([`crate::PassEvent`]) describe single compiles after the
//! fact; this module answers aggregate questions about a *running*
//! process — p99 request latency, queue depth, cache hit fractions —
//! without replaying a JSONL stream.
//!
//! Design constraints, in order:
//!
//! * **Zero-allocation hot path.** Recording into a [`Counter`],
//!   [`Gauge`], or [`Histogram`] is a handful of relaxed atomic adds on
//!   pre-registered handles. Registration (the only allocating step)
//!   happens once per metric name and is amortized behind `OnceLock`s at
//!   the call sites.
//! * **Deterministic, mergeable snapshots.** Histogram bucket bounds are
//!   a fixed log-linear base-2 grid ([`bucket_index`] / [`bucket_bounds`]),
//!   so two snapshots taken on different machines — or the same machine at
//!   different times — share bucket boundaries and can be merged or
//!   differenced bucket-wise ([`HistogramSnapshot::merge`],
//!   [`HistogramSnapshot::since`]).
//! * **Two exposition formats.** A stable JSON document
//!   ([`MetricsSnapshot::to_json`], schema [`SCHEMA`]) for files and the
//!   serve protocol, and a Prometheus-style text page
//!   ([`MetricsSnapshot::render_prometheus`]) for scrape-shaped consumers.
//!
//! The registry is available process-wide via [`global`]; library code
//! records into it unconditionally (the cost of an unobserved metric is
//! a few atomic adds), and surfaces — `qsyn serve --metrics-file`, the
//! `{"cmd":"metrics"}` protocol row, `qsyn report` — snapshot it on
//! demand.

use crate::json::Value;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Schema tag stamped into every JSON snapshot.
pub const SCHEMA: &str = "qsyn-metrics/1";

/// Number of histogram buckets: indexes `0..=3` hold the exact values
/// 0–3; above that each power-of-two octave is split into 4 sub-buckets
/// (`SUB_BITS` = 2), up to the top octave of `u64`.
pub const BUCKETS: usize = 252;

/// Maps a recorded value to its bucket index.
///
/// Values below 4 get exact buckets; a value with most-significant bit
/// `m` lands in octave `m`, sub-bucket = the next two bits below the
/// MSB. Bucket bounds are therefore fixed for all time: the relative
/// width of any bucket is at most 25% of its lower bound, which bounds
/// the error of any percentile estimate read back from the histogram.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    (msb - 1) * 4 + ((v >> (msb - 2)) & 3) as usize
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
///
/// Inverse of [`bucket_index`]: every `v` satisfies
/// `bounds.0 <= v <= bounds.1` for `i = bucket_index(v)`, and
/// consecutive buckets tile `0..=u64::MAX` without gaps or overlap.
#[inline]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    if i < 4 {
        return (i as u64, i as u64);
    }
    let msb = i / 4 + 1;
    let sub = (i % 4) as u64;
    let width = 1u64 << (msb - 2);
    let lower = (1u64 << msb) + sub * width;
    (lower, lower + (width - 1))
}

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a level that can move both ways (queue depth,
/// in-flight jobs, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts 1.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, n: i64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-bucketed histogram of `u64` samples (latencies in
/// microseconds, sizes in bytes, …).
///
/// Recording is two relaxed `fetch_add`s; there is no per-sample
/// allocation and no lock. The bucket grid is fixed (see
/// [`bucket_index`]), so snapshots are deterministic and mergeable.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records a duration given in (fractional) seconds, as microseconds.
    #[inline]
    pub fn record_seconds(&self, seconds: f64) {
        self.record((seconds * 1e6).max(0.0) as u64);
    }

    /// A point-in-time copy. The reported `count` is derived from the
    /// bucket reads themselves, so `count == Σ bucket counts` holds by
    /// construction even when sampled concurrently with writers.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                count += c;
                buckets.push((i as u32, c));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A frozen histogram: total count, value sum, and the sparse non-empty
/// buckets as `(bucket index, count)` pairs sorted by index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total recorded samples (equals the sum of bucket counts).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean recorded value, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Upper bound (inclusive) of the bucket holding the `q`-quantile
    /// sample, or `None` when empty.
    ///
    /// The true quantile lies inside that bucket, so the estimate is off
    /// by at most the bucket width — ≤ 25% of the value (see
    /// [`bucket_index`]).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(i, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Some(bucket_bounds(i as usize).1);
            }
        }
        // Unreachable when count == Σ bucket counts; fall back to the
        // last bucket's bound for defensively tolerated inconsistency.
        self.buckets.last().map(|&(i, _)| bucket_bounds(i as usize).1)
    }

    /// Sums `other` into `self` bucket-wise. Because bucket bounds are
    /// fixed, merging snapshots is exact: the result equals a histogram
    /// that recorded both sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// The bucket-wise delta `self - earlier` (counts saturate at zero),
    /// for differencing two snapshots of the same cumulative histogram.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for &(i, c) in &self.buckets {
            let before = earlier
                .buckets
                .binary_search_by_key(&i, |&(bi, _)| bi)
                .map(|k| earlier.buckets[k].1)
                .unwrap_or(0);
            let d = c.saturating_sub(before);
            if d > 0 {
                count += d;
                buckets.push((i, d));
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }

    fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("count".to_string(), Value::Num(self.count as f64)),
            ("sum".to_string(), Value::Num(self.sum as f64)),
            (
                "buckets".to_string(),
                Value::Arr(
                    self.buckets
                        .iter()
                        .map(|&(i, c)| {
                            Value::Arr(vec![Value::Num(i as f64), Value::Num(c as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Value) -> Result<Self, String> {
        let count = num_field(v, "count")? as u64;
        let sum = num_field(v, "sum")? as u64;
        let Some(Value::Arr(items)) = v.get("buckets") else {
            return Err("histogram is missing its buckets array".to_string());
        };
        let mut buckets = Vec::with_capacity(items.len());
        for item in items {
            let Value::Arr(pair) = item else {
                return Err("histogram bucket is not an [index, count] pair".to_string());
            };
            match pair.as_slice() {
                [Value::Num(i), Value::Num(c)] => buckets.push((*i as u32, *c as u64)),
                _ => return Err("histogram bucket is not an [index, count] pair".to_string()),
            }
        }
        Ok(HistogramSnapshot { count, sum, buckets })
    }
}

fn num_field(v: &Value, name: &str) -> Result<f64, String> {
    match v.get(name) {
        Some(Value::Num(n)) => Ok(*n),
        _ => Err(format!("missing or non-numeric field `{name}`")),
    }
}

/// A named collection of counters, gauges, and histograms.
///
/// Handles are `Arc`-shared: the first `counter("x")` call registers the
/// metric, later calls return the same instance, so independent modules
/// can safely record into the same name.
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub const fn new() -> Self {
        MetricsRegistry {
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
        }
    }

    fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
        let mut list = list.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
            return Arc::clone(v);
        }
        let v = Arc::new(T::default());
        list.push((name.to_string(), Arc::clone(&v)));
        v
    }

    /// The counter registered under `name` (registering it on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Self::get_or_insert(&self.counters, name)
    }

    /// The gauge registered under `name` (registering it on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Self::get_or_insert(&self.gauges, name)
    }

    /// The histogram registered under `name` (registering it on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Self::get_or_insert(&self.histograms, name)
    }

    /// A deterministic point-in-time snapshot: every registered metric,
    /// sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = {
            let list = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            list.iter().map(|(n, c)| (n.clone(), c.get())).collect()
        };
        let mut gauges: Vec<(String, i64)> = {
            let list = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
            list.iter().map(|(n, g)| (n.clone(), g.get())).collect()
        };
        let mut histograms: Vec<(String, HistogramSnapshot)> = {
            let list = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
            list.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect()
        };
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-wide registry every `qsyn` layer records into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: MetricsRegistry = MetricsRegistry::new();
    &GLOBAL
}

/// A frozen view of a registry: all metrics, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` for every gauge, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// The delta `self - earlier`: counters and histogram buckets are
    /// differenced (saturating), gauges keep their current level.
    /// Metrics absent from `earlier` pass through unchanged; zero deltas
    /// are dropped.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(n, v)| {
                let d = v.saturating_sub(earlier.counter(n).unwrap_or(0));
                (d > 0).then(|| (n.clone(), d))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|(n, h)| {
                let d = match earlier.histogram(n) {
                    Some(e) => h.since(e),
                    None => h.clone(),
                };
                (d.count > 0).then(|| (n.clone(), d))
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Sums `other` into `self` (counters and gauges add, histograms
    /// merge bucket-wise), for aggregating snapshots from several
    /// processes or runs.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (n, v) in &other.counters {
            match self.counters.binary_search_by(|(sn, _)| sn.as_str().cmp(n)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (n.clone(), *v)),
            }
        }
        for (n, v) in &other.gauges {
            match self.gauges.binary_search_by(|(sn, _)| sn.as_str().cmp(n)) {
                Ok(i) => self.gauges[i].1 += v,
                Err(i) => self.gauges.insert(i, (n.clone(), *v)),
            }
        }
        for (n, h) in &other.histograms {
            match self
                .histograms
                .binary_search_by(|(sn, _)| sn.as_str().cmp(n))
            {
                Ok(i) => self.histograms[i].1.merge(h),
                Err(i) => self.histograms.insert(i, (n.clone(), h.clone())),
            }
        }
    }

    /// The stable JSON document (schema [`SCHEMA`]).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            (
                "counters".to_string(),
                Value::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                Value::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Value::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "histograms".to_string(),
                Value::Obj(
                    self.histograms
                        .iter()
                        .map(|(n, h)| (n.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a snapshot back from its JSON document, rejecting schema
    /// mismatches and malformed sections.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        match v.get("schema") {
            Some(Value::Str(s)) if s == SCHEMA => {}
            Some(Value::Str(s)) => {
                return Err(format!("snapshot schema is `{s}`, expected `{SCHEMA}`"))
            }
            _ => return Err("snapshot has no `schema` string".to_string()),
        }
        let section = |name: &str| -> Result<Vec<(String, Value)>, String> {
            match v.get(name) {
                Some(Value::Obj(entries)) => Ok(entries.clone()),
                None => Err(format!("snapshot has no `{name}` object")),
                Some(_) => Err(format!("snapshot `{name}` is not an object")),
            }
        };
        let mut counters = Vec::new();
        for (n, val) in section("counters")? {
            match val {
                Value::Num(x) if x >= 0.0 && x.fract() == 0.0 => counters.push((n, x as u64)),
                _ => return Err(format!("counter `{n}` is not a non-negative integer")),
            }
        }
        let mut gauges = Vec::new();
        for (n, val) in section("gauges")? {
            match val {
                Value::Num(x) if x.fract() == 0.0 => gauges.push((n, x as i64)),
                _ => return Err(format!("gauge `{n}` is not an integer")),
            }
        }
        let mut histograms = Vec::new();
        for (n, val) in section("histograms")? {
            let h = HistogramSnapshot::from_json(&val)
                .map_err(|e| format!("histogram `{n}`: {e}"))?;
            histograms.push((n, h));
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }

    /// Renders the snapshot as a Prometheus-style text exposition page:
    /// `qsyn_`-prefixed underscored names, cumulative `le` buckets, and
    /// `_sum`/`_count` series per histogram.
    pub fn render_prometheus(&self) -> String {
        fn mangle(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 5);
            out.push_str("qsyn_");
            for ch in name.chars() {
                out.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
            }
            out
        }
        let mut page = String::new();
        for (n, v) in &self.counters {
            let m = mangle(n);
            page.push_str(&format!("# TYPE {m} counter\n{m} {v}\n"));
        }
        for (n, v) in &self.gauges {
            let m = mangle(n);
            page.push_str(&format!("# TYPE {m} gauge\n{m} {v}\n"));
        }
        for (n, h) in &self.histograms {
            let m = mangle(n);
            page.push_str(&format!("# TYPE {m} histogram\n"));
            let mut cumulative = 0u64;
            for &(i, c) in &h.buckets {
                cumulative += c;
                let le = bucket_bounds(i as usize).1;
                page.push_str(&format!("{m}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            page.push_str(&format!(
                "{m}_bucket{{le=\"+Inf\"}} {count}\n{m}_sum {sum}\n{m}_count {count}\n",
                count = h.count,
                sum = h.sum,
            ));
        }
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..4u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_tile_the_value_range_without_gaps() {
        // Every bucket's upper bound + 1 is the next bucket's lower bound.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi + 1, next_lo, "gap or overlap after bucket {i}");
        }
        assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bounds_invert_index() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of {i}");
        }
    }

    #[test]
    fn relative_bucket_width_is_bounded() {
        for i in 4..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            // width / lower ≤ 1/4 ⇒ percentile error ≤ 25%.
            assert!((hi - lo) as f64 / lo as f64 <= 0.25, "bucket {i} too wide");
        }
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 10, 100, 1000, 1000, 10_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.count, s.buckets.iter().map(|&(_, c)| c).sum::<u64>());
        assert_eq!(s.sum, 12_111);
        // p50 is the 3rd sample (100); the estimate is the bucket's upper
        // bound, within 25% above the true value.
        let p50 = s.quantile(0.5).unwrap();
        assert!((100..=125).contains(&p50), "p50 = {p50}");
        let p100 = s.quantile(1.0).unwrap();
        assert!((10_000..=12_500).contains(&p100), "p100 = {p100}");
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let (a, b, both) = (Histogram::default(), Histogram::default(), Histogram::default());
        for v in [3u64, 7, 1_000_000] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 8, 9] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn since_recovers_the_delta() {
        let h = Histogram::default();
        h.record(5);
        h.record(500);
        let before = h.snapshot();
        h.record(500);
        h.record(50_000);
        let delta = h.snapshot().since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 50_500);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_shared() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").add(2);
        reg.counter("a.first").inc();
        reg.counter("z.last").inc(); // same handle by name
        reg.gauge("depth").set(4);
        reg.histogram("lat").record(10);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a.first".to_string(), 1), ("z.last".to_string(), 3)]
        );
        assert_eq!(snap.gauge("depth"), Some(4));
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(12);
        reg.gauge("serve.queue_depth").set(-1);
        let h = reg.histogram("serve.latency_us");
        for v in [1u64, 2, 4, 1024, 1_048_576] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = snap.to_json().to_string();
        let parsed = crate::json::parse(&text).expect("snapshot renders valid JSON");
        let back = MetricsSnapshot::from_json(&parsed).expect("snapshot parses back");
        assert_eq!(back, snap);
    }

    #[test]
    fn from_json_rejects_wrong_schema_and_bad_counters() {
        let bad_schema = crate::json::parse(r#"{"schema":"other/9"}"#).unwrap();
        assert!(MetricsSnapshot::from_json(&bad_schema)
            .unwrap_err()
            .contains("schema"));
        let bad_counter = crate::json::parse(
            r#"{"schema":"qsyn-metrics/1","counters":{"x":-1},"gauges":{},"histograms":{}}"#,
        )
        .unwrap();
        assert!(MetricsSnapshot::from_json(&bad_counter)
            .unwrap_err()
            .contains("non-negative"));
    }

    #[test]
    fn prometheus_page_has_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(3);
        let h = reg.histogram("pass.route_us");
        h.record(10);
        h.record(20);
        let page = reg.snapshot().render_prometheus();
        assert!(page.contains("# TYPE qsyn_serve_requests counter"), "{page}");
        assert!(page.contains("qsyn_serve_requests 3"), "{page}");
        assert!(page.contains("qsyn_pass_route_us_bucket{le=\"+Inf\"} 2"), "{page}");
        assert!(page.contains("qsyn_pass_route_us_count 2"), "{page}");
        assert!(page.contains("qsyn_pass_route_us_sum 30"), "{page}");
    }

    #[test]
    fn snapshot_since_drops_zero_deltas() {
        let reg = MetricsRegistry::new();
        reg.counter("stable").add(5);
        reg.counter("moving").add(1);
        let before = reg.snapshot();
        reg.counter("moving").add(2);
        let delta = reg.snapshot().since(&before);
        assert_eq!(delta.counter("moving"), Some(2));
        assert_eq!(delta.counter("stable"), None);
    }
}
