//! Pass-level observability for the `qsyn` compiler.
//!
//! The compiler's back end (paper Fig. 2) runs a fixed pipeline —
//! placement, Barenco/Clifford+T decomposition, coupling-map routing,
//! local optimization, QMDD verification. This crate gives each pass a
//! structured footprint instead of an opaque report string:
//!
//! * [`Span`] times a pass and collects backend counters (SWAPs inserted,
//!   optimizer rounds, QMDD unique-table size, compute-cache hit rate);
//! * [`PassEvent`] is the finished record: input/output [`StageSnapshot`]s
//!   plus the cost movement under the compiler's Eqn. 2 cost model;
//! * [`CompileMetrics`] aggregates one compilation's events and renders
//!   the stage table that the CLI's `--report` flag shows;
//! * [`TraceSink`] is the streaming destination — [`NullSink`] discards
//!   (the zero-cost default), [`TableSink`] accumulates for the table
//!   view, [`JsonlSink`] writes machine-readable JSON lines for the
//!   bench harness and CI.
//!
//! The crate is dependency-light by design (only the circuit IR): the
//! [`json`] module carries its own small emitter/parser so traces work in
//! offline build environments.
//!
//! # Examples
//!
//! ```
//! use qsyn_trace::{Pass, Span, StageSnapshot, TableSink, TraceSink};
//!
//! let sink = TableSink::new();
//! let span = Span::begin(Pass::Route);
//! // ... run the pass ...
//! let event = span.finish(StageSnapshot::default(), StageSnapshot::default(), 4.0, 5.5);
//! sink.record(&event);
//! assert!(sink.render().contains("| route |"));
//! ```

#![warn(missing_docs)]

mod event;
pub mod json;
pub mod metrics;
mod sink;
pub mod streaming;

pub use event::{
    route_strategy_name, route_strategy_tag, CompileMetrics, Pass, PassEvent, Span, StageSnapshot,
    Verdict, ROUTE_STRATEGY_NAMES,
};
pub use sink::{JsonlSink, NullSink, TableSink, TraceSink};
