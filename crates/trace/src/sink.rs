//! Pluggable destinations for [`PassEvent`]s.
//!
//! The compiler streams every pass event to a [`TraceSink`] as it
//! finishes. Three sinks are provided:
//!
//! * [`NullSink`] — discards everything; the zero-cost default;
//! * [`TableSink`] — accumulates events and renders the human-readable
//!   stage table (the `--report` view);
//! * [`JsonlSink`] — writes one compact JSON object per line, for the
//!   bench harness and CI trend tracking.

use crate::event::PassEvent;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A destination for pass events.
///
/// Sinks receive `&self` so one sink can be shared (`Arc<dyn TraceSink>`)
/// across threads of a bench sweep; implementations handle their own
/// interior mutability.
pub trait TraceSink: Send + Sync {
    /// Accepts one completed pass event.
    fn record(&self, event: &PassEvent);

    /// Flushes any buffered output; called once per compilation.
    fn flush(&self) {}
}

/// Discards every event. The default when tracing is disabled.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &PassEvent) {}
}

/// Accumulates events in memory for later rendering or inspection.
#[derive(Debug, Default)]
pub struct TableSink {
    events: Mutex<Vec<PassEvent>>,
}

impl TableSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in arrival order.
    pub fn events(&self) -> Vec<PassEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Renders the recorded events as rows of a markdown stage table:
    /// per-pass gate/T/CNOT counts, depths, cost movement and timing.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let events = self.events.lock().unwrap();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| pass | T | CNOT | gates | depth | T-depth | cost | Δcost | ms |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
        for e in events.iter() {
            let s = e.output;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {:.2} | {:+.2} | {:.2} |",
                e.pass,
                s.stats.t_count,
                s.stats.cnot_count,
                s.stats.volume,
                s.depth,
                s.t_depth,
                e.cost_out,
                e.cost_delta(),
                e.seconds * 1e3
            );
        }
        out
    }
}

impl TraceSink for TableSink {
    fn record(&self, event: &PassEvent) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Writes one JSON object per event, newline-terminated (JSON lines).
pub struct JsonlSink {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps any writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(writer),
        }
    }

    /// Creates (truncating) a file and writes events to it buffered.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be created.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(Self::new(Box::new(BufWriter::new(File::create(path)?))))
    }

    /// Writes events to standard error (line-buffered by the lock).
    pub fn stderr() -> Self {
        Self::new(Box::new(io::stderr()))
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &PassEvent) {
        let mut out = self.out.lock().unwrap();
        // A failed trace write must not abort compilation; drop the line.
        let _ = writeln!(out, "{}", event.to_json());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Pass, Span, StageSnapshot};
    use crate::json;
    use std::sync::Arc;

    fn event(pass: Pass) -> PassEvent {
        Span::begin(pass).finish(
            StageSnapshot::default(),
            StageSnapshot::default(),
            2.0,
            1.0,
        )
    }

    /// A `Write` handle into shared memory, for asserting on sink output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn null_sink_accepts_events() {
        let sink = NullSink;
        sink.record(&event(Pass::Place));
        sink.flush();
    }

    #[test]
    fn table_sink_accumulates_and_renders() {
        let sink = TableSink::new();
        sink.record(&event(Pass::Place));
        sink.record(&event(Pass::Route));
        assert_eq!(sink.events().len(), 2);
        let table = sink.render();
        assert!(table.contains("| place |"));
        assert!(table.contains("| route |"));
        assert!(table.contains("Δcost"));
    }

    #[test]
    fn jsonl_sink_emits_one_parseable_line_per_event() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.record(&event(Pass::Decompose));
        sink.record(&event(Pass::Verify));
        sink.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, pass) in lines.iter().zip(["decompose", "verify"]) {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("pass").and_then(json::Value::as_str), Some(pass));
            let e = PassEvent::from_json(&v).unwrap();
            assert_eq!(e.cost_delta(), 1.0);
        }
    }

    #[test]
    fn sinks_are_object_safe_and_shareable() {
        let shared: Arc<dyn TraceSink> = Arc::new(TableSink::new());
        shared.record(&event(Pass::Optimize));
        shared.flush();
    }
}
