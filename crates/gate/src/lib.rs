//! Quantum gate primitives: complex arithmetic, dense unitaries, and the
//! technology gate library of Table 1 of Smith & Thornton (ISCA 2019).
//!
//! This crate is the numeric foundation of the `qsyn` workspace. It defines
//! the [`C64`] complex scalar, dense [`Matrix`] reference semantics, and the
//! [`Gate`] instruction vocabulary shared by the circuit IR, the QMDD
//! verifier, and the compiler back-end.
//!
//! # Examples
//!
//! ```
//! use qsyn_gate::{Gate, Matrix};
//!
//! // A SWAP is three CNOTs (paper Fig. 3).
//! let swap = Gate::swap(0, 1).to_matrix(2);
//! let cx01 = Gate::cx(0, 1).to_matrix(2);
//! let cx10 = Gate::cx(1, 0).to_matrix(2);
//! assert!(swap.approx_eq(&cx01.mul(&cx10.mul(&cx01))));
//! ```

#![warn(missing_docs)]

mod complex;
mod gate;
mod matrix;

pub use complex::{C64, EPSILON};
pub use gate::{fuse, Fusion, Gate, SingleOp, SINGLE_OPS};
pub use matrix::{equal_up_to_phase, Matrix};
