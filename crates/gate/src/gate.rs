//! The quantum gate set of the compiler.
//!
//! The technology-independent input language uses NOT, CNOT, Toffoli and
//! generalized Toffoli (`MCT`) operators plus the one-qubit library of the
//! target (Table 1 of the paper); the technology-dependent output language is
//! restricted to the IBM transmon library: `X, Y, Z, H, S, S†, T, T†, CNOT`.
//!
//! Qubit index convention: qubit `0` is the **top** line of the circuit and
//! the most-significant bit of a computational basis index, matching the
//! QMDD variable order `x0 -> x1 -> ...` of the paper's Fig. 1.

use crate::complex::C64;
use crate::matrix::Matrix;
use std::fmt;
use std::sync::OnceLock;

/// One-qubit operators of the transmon library (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SingleOp {
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Adjoint phase gate `S† = diag(1, -i)`.
    Sdg,
    /// `pi/8` gate `T = diag(1, e^{i pi/4})`.
    T,
    /// Adjoint `pi/8` gate.
    Tdg,
}

/// All eight library operators, in a fixed order used by lookup tables.
pub const SINGLE_OPS: [SingleOp; 8] = [
    SingleOp::X,
    SingleOp::Y,
    SingleOp::Z,
    SingleOp::H,
    SingleOp::S,
    SingleOp::Sdg,
    SingleOp::T,
    SingleOp::Tdg,
];

impl SingleOp {
    /// The 2x2 unitary of this operator (Table 1 of the paper).
    pub fn matrix(self) -> Matrix {
        let h = C64::FRAC_1_SQRT_2;
        let t = C64::cis(std::f64::consts::FRAC_PI_4);
        match self {
            SingleOp::X => Matrix::from_rows(&[[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]),
            SingleOp::Y => Matrix::from_rows(&[[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]),
            SingleOp::Z => Matrix::from_rows(&[[C64::ONE, C64::ZERO], [C64::ZERO, -C64::ONE]]),
            SingleOp::H => Matrix::from_rows(&[[h, h], [h, -h]]),
            SingleOp::S => Matrix::from_rows(&[[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]]),
            SingleOp::Sdg => Matrix::from_rows(&[[C64::ONE, C64::ZERO], [C64::ZERO, -C64::I]]),
            SingleOp::T => Matrix::from_rows(&[[C64::ONE, C64::ZERO], [C64::ZERO, t]]),
            SingleOp::Tdg => Matrix::from_rows(&[[C64::ONE, C64::ZERO], [C64::ZERO, t.conj()]]),
        }
    }

    /// The library operator realizing the inverse.
    pub fn inverse(self) -> SingleOp {
        match self {
            SingleOp::S => SingleOp::Sdg,
            SingleOp::Sdg => SingleOp::S,
            SingleOp::T => SingleOp::Tdg,
            SingleOp::Tdg => SingleOp::T,
            other => other, // X, Y, Z, H are involutions
        }
    }

    /// Whether the operator is diagonal in the computational basis.
    ///
    /// Diagonal operators commute with each other and with the control side
    /// of any controlled gate, which the local optimizer exploits.
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            SingleOp::Z | SingleOp::S | SingleOp::Sdg | SingleOp::T | SingleOp::Tdg
        )
    }

    /// For diagonal operators, the `pi/4` phase step count `k` such that the
    /// operator is `diag(1, e^{i k pi/4})`; `None` for non-diagonal ones.
    pub fn phase_steps(self) -> Option<u8> {
        match self {
            SingleOp::T => Some(1),
            SingleOp::S => Some(2),
            SingleOp::Z => Some(4),
            SingleOp::Sdg => Some(6),
            SingleOp::Tdg => Some(7),
            _ => None,
        }
    }

    /// Library operators realizing `diag(1, e^{i k pi/4})` for `k mod 8`,
    /// using the fewest gates. Returns an empty vector for `k = 0`.
    pub fn from_phase_steps(k: u8) -> Vec<SingleOp> {
        match k % 8 {
            0 => vec![],
            1 => vec![SingleOp::T],
            2 => vec![SingleOp::S],
            3 => vec![SingleOp::S, SingleOp::T],
            4 => vec![SingleOp::Z],
            5 => vec![SingleOp::Z, SingleOp::T],
            6 => vec![SingleOp::Sdg],
            7 => vec![SingleOp::Tdg],
            _ => unreachable!(),
        }
    }

    /// Lowercase OpenQASM 2.0 mnemonic.
    pub fn qasm_name(self) -> &'static str {
        match self {
            SingleOp::X => "x",
            SingleOp::Y => "y",
            SingleOp::Z => "z",
            SingleOp::H => "h",
            SingleOp::S => "s",
            SingleOp::Sdg => "sdg",
            SingleOp::T => "t",
            SingleOp::Tdg => "tdg",
        }
    }

    fn table_index(self) -> usize {
        match self {
            SingleOp::X => 0,
            SingleOp::Y => 1,
            SingleOp::Z => 2,
            SingleOp::H => 3,
            SingleOp::S => 4,
            SingleOp::Sdg => 5,
            SingleOp::T => 6,
            SingleOp::Tdg => 7,
        }
    }
}

impl fmt::Display for SingleOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SingleOp::X => "X",
            SingleOp::Y => "Y",
            SingleOp::Z => "Z",
            SingleOp::H => "H",
            SingleOp::S => "S",
            SingleOp::Sdg => "S†",
            SingleOp::T => "T",
            SingleOp::Tdg => "T†",
        };
        f.write_str(s)
    }
}

/// Result of fusing two adjacent one-qubit library operators exactly
/// (no global phase allowed, since the compiler verifies exact equality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fusion {
    /// The pair multiplies to the identity and can be deleted.
    Identity,
    /// The pair multiplies exactly to a single library operator.
    Single(SingleOp),
    /// No exact single-operator replacement exists in the library.
    None,
}

/// Exact product `second * first` (i.e. `first` applied first) of two library
/// operators, as a [`Fusion`].
///
/// The table is derived numerically from the operator matrices once and
/// cached, so it cannot drift from the matrix definitions.
///
/// # Examples
///
/// ```
/// use qsyn_gate::{fuse, Fusion, SingleOp};
/// assert_eq!(fuse(SingleOp::T, SingleOp::T), Fusion::Single(SingleOp::S));
/// assert_eq!(fuse(SingleOp::H, SingleOp::H), Fusion::Identity);
/// assert_eq!(fuse(SingleOp::H, SingleOp::T), Fusion::None);
/// ```
pub fn fuse(first: SingleOp, second: SingleOp) -> Fusion {
    static TABLE: OnceLock<[[Fusion; 8]; 8]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [[Fusion::None; 8]; 8];
        let id = Matrix::identity(2);
        for a in SINGLE_OPS {
            for b in SINGLE_OPS {
                let prod = b.matrix().mul(&a.matrix());
                let mut fusion = Fusion::None;
                if prod.approx_eq(&id) {
                    fusion = Fusion::Identity;
                } else {
                    for c in SINGLE_OPS {
                        if prod.approx_eq(&c.matrix()) {
                            fusion = Fusion::Single(c);
                            break;
                        }
                    }
                }
                t[a.table_index()][b.table_index()] = fusion;
            }
        }
        t
    });
    table[first.table_index()][second.table_index()]
}

/// A quantum gate instance applied to specific qubit lines.
///
/// Gates come in two tiers:
/// * technology-ready: [`Gate::Single`] and [`Gate::Cx`];
/// * technology-independent (must be decomposed by the back-end before a
///   real device can run them): [`Gate::Cz`], [`Gate::Swap`], [`Gate::Mct`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate {
    /// A one-qubit library operator on `qubit`.
    Single {
        /// Which operator.
        op: SingleOp,
        /// Target line.
        qubit: usize,
    },
    /// Controlled-NOT with the given control and target lines.
    Cx {
        /// Control line.
        control: usize,
        /// Target line.
        target: usize,
    },
    /// Controlled-Z (symmetric in its two lines).
    Cz {
        /// Control line.
        control: usize,
        /// Target line.
        target: usize,
    },
    /// SWAP of two lines.
    Swap {
        /// First line.
        a: usize,
        /// Second line.
        b: usize,
    },
    /// Generalized Toffoli `T_n`: X on `target` controlled on every line in
    /// `controls` being |1>. Two controls give the ordinary Toffoli.
    Mct {
        /// Control lines (at least two; sorted, duplicate-free).
        controls: Vec<usize>,
        /// Target line.
        target: usize,
    },
}

impl Gate {
    /// One-qubit gate constructor.
    pub fn single(op: SingleOp, qubit: usize) -> Gate {
        Gate::Single { op, qubit }
    }

    /// Pauli-X (NOT) on `qubit`.
    pub fn x(qubit: usize) -> Gate {
        Gate::single(SingleOp::X, qubit)
    }

    /// Hadamard on `qubit`.
    pub fn h(qubit: usize) -> Gate {
        Gate::single(SingleOp::H, qubit)
    }

    /// T gate on `qubit`.
    pub fn t(qubit: usize) -> Gate {
        Gate::single(SingleOp::T, qubit)
    }

    /// T† gate on `qubit`.
    pub fn tdg(qubit: usize) -> Gate {
        Gate::single(SingleOp::Tdg, qubit)
    }

    /// CNOT constructor.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn cx(control: usize, target: usize) -> Gate {
        assert_ne!(control, target, "CNOT control equals target");
        Gate::Cx { control, target }
    }

    /// Controlled-Z constructor.
    ///
    /// # Panics
    ///
    /// Panics if `control == target`.
    pub fn cz(control: usize, target: usize) -> Gate {
        assert_ne!(control, target, "CZ control equals target");
        Gate::Cz { control, target }
    }

    /// SWAP constructor.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(a: usize, b: usize) -> Gate {
        assert_ne!(a, b, "SWAP of a line with itself");
        Gate::Swap { a, b }
    }

    /// Toffoli (two controls) constructor.
    pub fn toffoli(c0: usize, c1: usize, target: usize) -> Gate {
        Gate::mct(vec![c0, c1], target)
    }

    /// Generalized Toffoli constructor. Normalizes degenerate control counts:
    /// zero controls produce an X gate and one control a CNOT.
    ///
    /// # Panics
    ///
    /// Panics if the target appears among the controls or a control repeats.
    pub fn mct(mut controls: Vec<usize>, target: usize) -> Gate {
        controls.sort_unstable();
        assert!(
            controls.windows(2).all(|w| w[0] != w[1]),
            "duplicate MCT control"
        );
        assert!(
            !controls.contains(&target),
            "MCT target used as its own control"
        );
        match controls.len() {
            0 => Gate::x(target),
            1 => Gate::cx(controls[0], target),
            _ => Gate::Mct { controls, target },
        }
    }

    /// The distinct qubit lines this gate touches.
    pub fn qubits(&self) -> Vec<usize> {
        match self {
            Gate::Single { qubit, .. } => vec![*qubit],
            Gate::Cx { control, target } | Gate::Cz { control, target } => {
                vec![*control, *target]
            }
            Gate::Swap { a, b } => vec![*a, *b],
            Gate::Mct { controls, target } => {
                let mut v = controls.clone();
                v.push(*target);
                v
            }
        }
    }

    /// Largest qubit index referenced, or `None` for (impossible) empty support.
    pub fn max_qubit(&self) -> usize {
        self.qubits().into_iter().max().expect("gate has qubits")
    }

    /// Whether this gate touches `qubit`.
    pub fn touches(&self, qubit: usize) -> bool {
        match self {
            Gate::Single { qubit: q, .. } => *q == qubit,
            Gate::Cx { control, target } | Gate::Cz { control, target } => {
                *control == qubit || *target == qubit
            }
            Gate::Swap { a, b } => *a == qubit || *b == qubit,
            Gate::Mct { controls, target } => *target == qubit || controls.contains(&qubit),
        }
    }

    /// Whether this gate shares at least one line with `other`.
    pub fn overlaps(&self, other: &Gate) -> bool {
        self.qubits().iter().any(|q| other.touches(*q))
    }

    /// The exact inverse gate.
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::Single { op, qubit } => Gate::single(op.inverse(), *qubit),
            other => other.clone(), // CX, CZ, SWAP, MCT are involutions
        }
    }

    /// Whether `self` followed by `other` is the identity.
    pub fn is_inverse_of(&self, other: &Gate) -> bool {
        *self == other.inverse()
    }

    /// Whether this is a T or T† gate (the fault-tolerance-expensive
    /// operators weighted in the paper's cost function, Eqn. 2).
    pub fn is_t_like(&self) -> bool {
        matches!(
            self,
            Gate::Single {
                op: SingleOp::T | SingleOp::Tdg,
                ..
            }
        )
    }

    /// Whether this gate is available natively in the transmon library
    /// (one-qubit operator or CNOT).
    pub fn is_technology_ready(&self) -> bool {
        matches!(self, Gate::Single { .. } | Gate::Cx { .. })
    }

    /// Number of qubit lines this gate touches.
    pub fn arity(&self) -> usize {
        match self {
            Gate::Single { .. } => 1,
            Gate::Cx { .. } | Gate::Cz { .. } | Gate::Swap { .. } => 2,
            Gate::Mct { controls, .. } => controls.len() + 1,
        }
    }

    /// Applies the gate in place to a `2^n`-dimensional state vector.
    ///
    /// Qubit `q` corresponds to bit `n-1-q` of the basis index (qubit 0 is
    /// the most significant bit).
    ///
    /// # Panics
    ///
    /// Panics if the state length is not a power of two covering every line
    /// the gate touches.
    pub fn apply_to_state(&self, state: &mut [C64], n: usize) {
        assert_eq!(state.len(), 1usize << n, "state dimension mismatch");
        assert!(self.max_qubit() < n, "gate line outside register");
        let bit = |q: usize| 1usize << (n - 1 - q);
        match self {
            Gate::Single { op, qubit } => {
                let m = op.matrix();
                let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
                let tb = bit(*qubit);
                for i in 0..state.len() {
                    if i & tb == 0 {
                        let j = i | tb;
                        let (a, b) = (state[i], state[j]);
                        state[i] = m00 * a + m01 * b;
                        state[j] = m10 * a + m11 * b;
                    }
                }
            }
            Gate::Cx { control, target } => {
                let cb = bit(*control);
                let tb = bit(*target);
                for i in 0..state.len() {
                    if i & cb != 0 && i & tb == 0 {
                        state.swap(i, i | tb);
                    }
                }
            }
            Gate::Cz { control, target } => {
                let cb = bit(*control);
                let tb = bit(*target);
                for (v, amp) in state.iter_mut().enumerate() {
                    if v & cb != 0 && v & tb != 0 {
                        *amp = -*amp;
                    }
                }
            }
            Gate::Swap { a, b } => {
                let ab = bit(*a);
                let bb = bit(*b);
                for i in 0..state.len() {
                    if i & ab != 0 && i & bb == 0 {
                        state.swap(i, (i & !ab) | bb);
                    }
                }
            }
            Gate::Mct { controls, target } => {
                let cmask: usize = controls.iter().map(|&c| bit(c)).sum();
                let tb = bit(*target);
                for i in 0..state.len() {
                    if i & cmask == cmask && i & tb == 0 {
                        state.swap(i, i | tb);
                    }
                }
            }
        }
    }

    /// Dense `2^n x 2^n` unitary of the gate embedded in an `n`-line register.
    ///
    /// Only intended for small `n` (reference semantics in tests).
    pub fn to_matrix(&self, n: usize) -> Matrix {
        let dim = 1usize << n;
        let mut out = Matrix::zeros(dim);
        for col in 0..dim {
            let mut state = vec![C64::ZERO; dim];
            state[col] = C64::ONE;
            self.apply_to_state(&mut state, n);
            for (row, v) in state.iter().enumerate() {
                out[(row, col)] = *v;
            }
        }
        out
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Single { op, qubit } => write!(f, "{op} q{qubit}"),
            Gate::Cx { control, target } => write!(f, "CNOT q{control} -> q{target}"),
            Gate::Cz { control, target } => write!(f, "CZ q{control}, q{target}"),
            Gate::Swap { a, b } => write!(f, "SWAP q{a}, q{b}"),
            Gate::Mct { controls, target } => {
                write!(f, "T{}(", controls.len() + 1)?;
                for (i, c) in controls.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "q{c}")?;
                }
                write!(f, " -> q{target})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::equal_up_to_phase;

    #[test]
    fn table1_single_qubit_matrices_are_unitary() {
        for op in SINGLE_OPS {
            assert!(op.matrix().is_unitary(), "{op} not unitary");
        }
    }

    #[test]
    fn table1_pauli_relations() {
        // Y = i X Z exactly captures the Table 1 Pauli-Y definition.
        let ixz = {
            let mut m = SingleOp::X.matrix().mul(&SingleOp::Z.matrix());
            for i in 0..2 {
                for j in 0..2 {
                    m[(i, j)] *= C64::I;
                }
            }
            m
        };
        assert!(ixz.approx_eq(&SingleOp::Y.matrix()));
    }

    #[test]
    fn table1_phase_tower() {
        // T^2 = S, S^2 = Z.
        let t = SingleOp::T.matrix();
        let s = SingleOp::S.matrix();
        assert!(t.mul(&t).approx_eq(&s));
        assert!(s.mul(&s).approx_eq(&SingleOp::Z.matrix()));
    }

    #[test]
    fn inverses_multiply_to_identity() {
        let id = Matrix::identity(2);
        for op in SINGLE_OPS {
            assert!(op.inverse().matrix().mul(&op.matrix()).approx_eq(&id));
        }
    }

    #[test]
    fn fusion_matches_matrix_products() {
        let id = Matrix::identity(2);
        for a in SINGLE_OPS {
            for b in SINGLE_OPS {
                let prod = b.matrix().mul(&a.matrix());
                match fuse(a, b) {
                    Fusion::Identity => assert!(prod.approx_eq(&id), "{a},{b}"),
                    Fusion::Single(c) => assert!(prod.approx_eq(&c.matrix()), "{a},{b}->{c}"),
                    Fusion::None => {
                        assert!(!prod.approx_eq(&id), "{a},{b} missed identity");
                        for c in SINGLE_OPS {
                            assert!(!prod.approx_eq(&c.matrix()), "{a},{b} missed {c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn known_fusions() {
        assert_eq!(fuse(SingleOp::T, SingleOp::T), Fusion::Single(SingleOp::S));
        assert_eq!(fuse(SingleOp::S, SingleOp::S), Fusion::Single(SingleOp::Z));
        assert_eq!(fuse(SingleOp::T, SingleOp::Tdg), Fusion::Identity);
        assert_eq!(fuse(SingleOp::S, SingleOp::Z), Fusion::Single(SingleOp::Sdg));
        // X then Z is -iY: global phase, must NOT fuse.
        assert_eq!(fuse(SingleOp::X, SingleOp::Z), Fusion::None);
    }

    #[test]
    fn phase_step_round_trip() {
        for k in 0..8u8 {
            let ops = SingleOp::from_phase_steps(k);
            let total: u32 = ops.iter().map(|o| o.phase_steps().unwrap() as u32).sum();
            assert_eq!(total % 8, k as u32);
            assert!(ops.len() <= 2);
        }
    }

    #[test]
    fn cnot_matrix_matches_table1() {
        // Control q0 (msb), target q1: |10> -> |11>, |11> -> |10>.
        let m = Gate::cx(0, 1).to_matrix(2);
        let expected = {
            let mut e = Matrix::zeros(4);
            e[(0, 0)] = C64::ONE;
            e[(1, 1)] = C64::ONE;
            e[(2, 3)] = C64::ONE;
            e[(3, 2)] = C64::ONE;
            e
        };
        assert!(m.approx_eq(&expected));
    }

    #[test]
    fn cz_is_symmetric() {
        let a = Gate::cz(0, 1).to_matrix(2);
        let b = Gate::cz(1, 0).to_matrix(2);
        assert!(a.approx_eq(&b));
    }

    #[test]
    fn swap_matrix_matches_table1() {
        let m = Gate::swap(0, 1).to_matrix(2);
        let mut e = Matrix::zeros(4);
        e[(0, 0)] = C64::ONE;
        e[(1, 2)] = C64::ONE;
        e[(2, 1)] = C64::ONE;
        e[(3, 3)] = C64::ONE;
        assert!(m.approx_eq(&e));
    }

    #[test]
    fn toffoli_matrix_matches_table1() {
        let m = Gate::toffoli(0, 1, 2).to_matrix(3);
        assert!(m.is_permutation());
        // |110> -> |111> and vice versa; everything else fixed.
        for b in 0..8usize {
            let expect = if b >> 1 == 0b11 { b ^ 1 } else { b };
            assert!(m[(expect, b)].is_one(), "column {b}");
        }
    }

    #[test]
    fn mct_normalizes_small_control_counts() {
        assert_eq!(Gate::mct(vec![], 3), Gate::x(3));
        assert_eq!(Gate::mct(vec![1], 3), Gate::cx(1, 3));
        assert!(matches!(Gate::mct(vec![1, 2], 3), Gate::Mct { .. }));
    }

    #[test]
    fn mct_acts_as_multi_controlled_not() {
        let g = Gate::mct(vec![0, 1, 2], 3);
        let m = g.to_matrix(4);
        assert!(m.is_permutation());
        for b in 0..16usize {
            let expect = if b >> 1 == 0b111 { b ^ 1 } else { b };
            assert!(m[(expect, b)].is_one());
        }
    }

    #[test]
    fn swap_equals_three_cnots() {
        let s = Gate::swap(0, 1).to_matrix(2);
        let c01 = Gate::cx(0, 1).to_matrix(2);
        let c10 = Gate::cx(1, 0).to_matrix(2);
        let three = c01.mul(&c10.mul(&c01));
        assert!(s.approx_eq(&three));
    }

    #[test]
    fn gate_inverse_round_trip() {
        let gates = [
            Gate::t(0),
            Gate::h(1),
            Gate::cx(0, 2),
            Gate::swap(1, 2),
            Gate::mct(vec![0, 1], 2),
        ];
        for g in gates {
            let m = g.to_matrix(3);
            let mi = g.inverse().to_matrix(3);
            assert!(m.mul(&mi).approx_eq(&Matrix::identity(8)), "{g}");
        }
    }

    #[test]
    fn overlaps_and_touches() {
        let a = Gate::cx(0, 1);
        let b = Gate::t(1);
        let c = Gate::h(2);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(a.touches(0) && a.touches(1) && !a.touches(2));
    }

    #[test]
    fn hxh_equals_z() {
        let h = Gate::h(0).to_matrix(1);
        let x = Gate::x(0).to_matrix(1);
        let z = Gate::single(SingleOp::Z, 0).to_matrix(1);
        assert!(h.mul(&x.mul(&h)).approx_eq(&z));
        assert!(equal_up_to_phase(&h.mul(&x.mul(&h)), &z));
    }

    #[test]
    #[should_panic(expected = "CNOT control equals target")]
    fn cx_rejects_equal_lines() {
        let _ = Gate::cx(1, 1);
    }

    #[test]
    #[should_panic(expected = "MCT target used as its own control")]
    fn mct_rejects_target_in_controls() {
        let _ = Gate::mct(vec![0, 1], 1);
    }

    #[test]
    fn apply_to_state_matches_matrix_on_random_states() {
        // Deterministic pseudo-random amplitudes; compare the in-place
        // state update against the dense embedding for every gate kind.
        let gates = [
            Gate::h(1),
            Gate::t(0),
            Gate::single(SingleOp::Y, 2),
            Gate::cx(2, 0),
            Gate::cz(0, 2),
            Gate::swap(1, 2),
            Gate::toffoli(2, 0, 1),
        ];
        let mut seed = 0x5a5a_5a5au64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 1000.0 - 0.5
        };
        for g in gates {
            let state: Vec<C64> = (0..8).map(|_| C64::new(next(), next())).collect();
            let mut fast = state.clone();
            g.apply_to_state(&mut fast, 3);
            let slow = g.to_matrix(3).apply(&state);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(a.approx_eq(*b), "{g}");
            }
        }
    }

    #[test]
    fn arity_matches_qubit_count() {
        assert_eq!(Gate::h(0).arity(), 1);
        assert_eq!(Gate::cx(0, 1).arity(), 2);
        assert_eq!(Gate::swap(0, 1).arity(), 2);
        assert_eq!(Gate::mct(vec![0, 1, 2, 3], 4).arity(), 5);
        for g in [Gate::h(0), Gate::cx(0, 1), Gate::mct(vec![0, 1], 2)] {
            assert_eq!(g.arity(), g.qubits().len());
        }
    }

    #[test]
    fn mct_controls_are_sorted_and_canonical() {
        let a = Gate::mct(vec![3, 1, 2], 0);
        let b = Gate::mct(vec![1, 2, 3], 0);
        assert_eq!(a, b, "control order is canonicalized");
    }

    #[test]
    #[should_panic(expected = "duplicate MCT control")]
    fn mct_rejects_duplicate_controls() {
        let _ = Gate::mct(vec![1, 1, 2], 0);
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Gate::t(3).to_string(), "T q3");
        assert_eq!(Gate::cx(1, 2).to_string(), "CNOT q1 -> q2");
        assert_eq!(Gate::mct(vec![0, 1, 2], 5).to_string(), "T4(q0, q1, q2 -> q5)");
    }
}
