//! Dense unitary matrices.
//!
//! Dense matrices serve as the *reference semantics* for small circuits: the
//! QMDD package and every circuit transformation in the compiler are
//! cross-checked against them in tests. They are practical up to roughly ten
//! qubits; the decision-diagram representation takes over beyond that.

use crate::complex::{C64, EPSILON};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense square complex matrix in row-major order.
///
/// # Examples
///
/// ```
/// use qsyn_gate::{Matrix, C64};
/// let x = Matrix::from_rows(&[[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]);
/// assert!(x.mul(&x).approx_eq(&Matrix::identity(2)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    dim: usize,
    data: Vec<C64>,
}

impl Matrix {
    /// Creates a `dim x dim` zero matrix.
    pub fn zeros(dim: usize) -> Self {
        Matrix {
            dim,
            data: vec![C64::ZERO; dim * dim],
        }
    }

    /// Creates the `dim x dim` identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = Matrix::zeros(dim);
        for i in 0..dim {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Builds a matrix from an array of rows (fixed 2x2 and similar uses).
    pub fn from_rows<const N: usize>(rows: &[[C64; N]; N]) -> Self {
        let mut m = Matrix::zeros(N);
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Matrix dimension (number of rows).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.dim, rhs.dim, "matrix dimension mismatch");
        let n = self.dim;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let a = self[(i, k)];
                if a.is_zero() {
                    continue;
                }
                for j in 0..n {
                    let b = rhs[(k, j)];
                    if !b.is_zero() {
                        out[(i, j)] += a * b;
                    }
                }
            }
        }
        out
    }

    /// Kronecker (tensor) product `self (x) rhs`.
    pub fn kron(&self, rhs: &Matrix) -> Matrix {
        let n = self.dim;
        let m = rhs.dim;
        let mut out = Matrix::zeros(n * m);
        for i in 0..n {
            for j in 0..n {
                let a = self[(i, j)];
                if a.is_zero() {
                    continue;
                }
                for k in 0..m {
                    for l in 0..m {
                        out[(i * m + k, j * m + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Conjugate transpose.
    pub fn adjoint(&self) -> Matrix {
        let n = self.dim;
        let mut out = Matrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Entry-wise approximate equality with tolerance [`EPSILON`].
    pub fn approx_eq(&self, other: &Matrix) -> bool {
        self.dim == other.dim
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| a.approx_eq(*b))
    }

    /// Whether `self * self^dagger` is the identity.
    pub fn is_unitary(&self) -> bool {
        self.mul(&self.adjoint()).approx_eq(&Matrix::identity(self.dim))
    }

    /// Whether the matrix is a 0/1 permutation matrix (the signature of a
    /// purely classical reversible circuit).
    pub fn is_permutation(&self) -> bool {
        for i in 0..self.dim {
            let mut ones = 0usize;
            for j in 0..self.dim {
                let v = self[(i, j)];
                if v.is_one() {
                    ones += 1;
                } else if !v.is_zero() {
                    return false;
                }
            }
            if ones != 1 {
                return false;
            }
        }
        true
    }

    /// Applies the matrix to a state vector, returning the new state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the matrix dimension.
    pub fn apply(&self, state: &[C64]) -> Vec<C64> {
        assert_eq!(state.len(), self.dim, "state dimension mismatch");
        let mut out = vec![C64::ZERO; self.dim];
        for i in 0..self.dim {
            let mut acc = C64::ZERO;
            for j in 0..self.dim {
                let a = self[(i, j)];
                if !a.is_zero() {
                    acc += a * state[j];
                }
            }
            out[i] = acc;
        }
        out
    }

    /// Maximum absolute entry-wise difference from another matrix.
    pub fn max_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.dim, other.dim);
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.dim + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.dim + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.dim {
            for j in 0..self.dim {
                if j > 0 {
                    write!(f, "  ")?;
                }
                let v = self[(i, j)];
                if v.is_zero() {
                    write!(f, "0")?;
                } else {
                    write!(f, "{v}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Returns true when two matrices are equal up to a global phase factor.
///
/// Used by tests that compare decompositions which are only phase-equivalent;
/// the compiler itself insists on exact equality.
pub fn equal_up_to_phase(a: &Matrix, b: &Matrix) -> bool {
    if a.dim() != b.dim() {
        return false;
    }
    // Find the first entry of b with significant magnitude and derive the
    // candidate phase from it.
    for i in 0..a.dim() {
        for j in 0..a.dim() {
            let bv = b[(i, j)];
            if bv.abs() > EPSILON {
                let av = a[(i, j)];
                if av.abs() < EPSILON {
                    return false;
                }
                let phase = av / bv;
                if (phase.abs() - 1.0).abs() > 1e-8 {
                    return false;
                }
                // Check the rest with this phase.
                for k in 0..a.dim() {
                    for l in 0..a.dim() {
                        if !a[(k, l)].approx_eq(b[(k, l)] * phase) {
                            return false;
                        }
                    }
                }
                return true;
            }
        }
    }
    // b is the zero matrix; equality demands a is too.
    a.data.iter().all(|v| v.is_zero())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]])
    }

    fn hadamard() -> Matrix {
        let h = C64::FRAC_1_SQRT_2;
        Matrix::from_rows(&[[h, h], [h, -h]])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let id = Matrix::identity(2);
        assert!(x.mul(&id).approx_eq(&x));
        assert!(id.mul(&x).approx_eq(&x));
    }

    #[test]
    fn x_squared_is_identity() {
        let x = pauli_x();
        assert!(x.mul(&x).approx_eq(&Matrix::identity(2)));
    }

    #[test]
    fn hadamard_is_unitary_not_permutation() {
        assert!(hadamard().is_unitary());
        assert!(!hadamard().is_permutation());
        assert!(pauli_x().is_permutation());
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let id = Matrix::identity(2);
        let xi = x.kron(&id);
        assert_eq!(xi.dim(), 4);
        // X (x) I swaps the upper and lower halves of the basis.
        assert!(xi[(0, 2)].is_one());
        assert!(xi[(1, 3)].is_one());
        assert!(xi[(2, 0)].is_one());
        assert!(xi[(3, 1)].is_one());
        assert!(xi.is_permutation());
    }

    #[test]
    fn adjoint_of_unitary_is_inverse() {
        let h = hadamard();
        assert!(h.mul(&h.adjoint()).approx_eq(&Matrix::identity(2)));
    }

    #[test]
    fn apply_maps_basis_states() {
        let x = pauli_x();
        let out = x.apply(&[C64::ONE, C64::ZERO]);
        assert!(out[0].is_zero());
        assert!(out[1].is_one());
    }

    #[test]
    fn phase_equality() {
        let h = hadamard();
        let mut ih = h.clone();
        for i in 0..2 {
            for j in 0..2 {
                ih[(i, j)] *= C64::I;
            }
        }
        assert!(equal_up_to_phase(&h, &ih));
        assert!(!h.approx_eq(&ih));
        assert!(!equal_up_to_phase(&h, &pauli_x()));
    }

    #[test]
    fn max_diff_is_zero_for_equal() {
        let h = hadamard();
        assert!(h.max_diff(&h) < EPSILON);
        assert!(h.max_diff(&Matrix::identity(2)) > 0.1);
    }
}
