//! Synthesis runtime benchmarks mirroring the paper's Section 5 timing
//! claims: most technology-dependent specifications in ~10^-2 s, none over
//! 5 s (Tables 3/5), and the largest 96-qubit benchmark about 6.5 s
//! (Table 8) — on a 2016 laptop running Python. The Criterion groups below
//! time the same three workload classes in this implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_arch::devices;
use qsyn_bench::big::BIG_BENCHMARKS;
use qsyn_bench::revlib::REVLIB_BENCHMARKS;
use qsyn_bench::stg::stg_by_id;
use qsyn_core::{Compiler, Verification};
use std::hint::black_box;

/// Table 3 class: single-target gates on IBM devices.
fn bench_stg(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_stg");
    for id in ["1", "0356", "033f"] {
        let cascade = stg_by_id(id).unwrap().cascade();
        let device = devices::ibmqx5();
        group.bench_with_input(BenchmarkId::from_parameter(format!("#{id}")), &cascade, |b, cas| {
            let compiler = Compiler::new(device.clone()).with_verification(Verification::None);
            b.iter(|| black_box(compiler.compile(cas).unwrap()));
        });
    }
    group.finish();
}

/// Table 5 class: RevLib Toffoli cascades on IBM devices.
fn bench_revlib(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_revlib");
    for b_ in REVLIB_BENCHMARKS {
        let circuit = b_.circuit();
        let device = devices::ibmqx3();
        group.bench_with_input(BenchmarkId::from_parameter(b_.name), &circuit, |b, circ| {
            let compiler = Compiler::new(device.clone()).with_verification(Verification::None);
            b.iter(|| black_box(compiler.compile(circ).unwrap()));
        });
    }
    group.finish();
}

/// Table 8 class: generalized-Toffoli cascades on the 96-qubit machine.
fn bench_qc96(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_qc96");
    group.sample_size(10);
    for b_ in [BIG_BENCHMARKS[0], BIG_BENCHMARKS[4]] {
        let circuit = b_.circuit();
        let device = devices::qc96();
        group.bench_with_input(BenchmarkId::from_parameter(b_.name), &circuit, |b, circ| {
            let compiler = Compiler::new(device.clone()).with_verification(Verification::None);
            b.iter(|| black_box(compiler.compile(circ).unwrap()));
        });
    }
    group.finish();
}

/// The built-in formal verification step by itself (the paper reports it
/// inside its synthesis times).
fn bench_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmdd_verify");
    group.sample_size(10);
    let cascade = stg_by_id("0356").unwrap().cascade();
    let device = devices::ibmqx5();
    let mapped = Compiler::new(device)
        .with_verification(Verification::None)
        .compile(&cascade)
        .unwrap();
    group.bench_function("canonical_stg_0356_ibmqx5", |b| {
        b.iter(|| black_box(qsyn_qmdd::equivalent(&mapped.placed, &mapped.optimized)))
    });
    group.bench_function("miter_stg_0356_ibmqx5", |b| {
        b.iter(|| black_box(qsyn_qmdd::equivalent_miter(&mapped.placed, &mapped.optimized)))
    });
    group.finish();
}

criterion_group!(benches, bench_stg, bench_revlib, bench_qc96, bench_verification);
criterion_main!(benches);
