//! Routing microbenchmarks: the legacy per-CNOT BFS/Dijkstra search vs.
//! the precomputed all-pairs routing table (`qsyn_core::cache`). The
//! workload is a CNOT for every ordered qubit pair, so every table entry
//! (and every per-gate search) is exercised; both paths produce
//! byte-identical circuits, which `bench perf` asserts — here we only
//! time them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_arch::{devices, Device};
use qsyn_circuit::Circuit;
use qsyn_core::{
    routing_table, CtrStrategy, LookaheadStrategy, RouteRequest, RoutingObjective,
    RoutingStrategy,
};
use qsyn_gate::Gate;
use std::hint::black_box;

fn all_pairs_cnots(d: &Device) -> Circuit {
    let n = d.n_qubits();
    let mut c = Circuit::new(n);
    for control in 0..n {
        for target in 0..n {
            if control != target {
                c.push(Gate::cx(control, target));
            }
        }
    }
    c
}

/// Per-gate search, as shipped before the routing tables existed.
fn bench_route_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_legacy");
    group.sample_size(20);
    for d in devices::ibm_devices() {
        let workload = all_pairs_cnots(&d);
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &workload, |b, w| {
            b.iter(|| {
                black_box(
                    CtrStrategy
                        .route(&RouteRequest::new(w, &d))
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

/// Table-driven routing (steady state: the table is built outside the
/// timed region, matching one build amortized over a sweep).
fn bench_route_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_table");
    group.sample_size(20);
    for d in devices::ibm_devices() {
        let workload = all_pairs_cnots(&d);
        let (table, _) = routing_table(&d, RoutingObjective::FewestSwaps);
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &workload, |b, w| {
            b.iter(|| {
                black_box(
                    CtrStrategy
                        .route(&RouteRequest::new(w, &d).with_table(table.clone()))
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

/// The SABRE-style lookahead router on the same workload (table-backed),
/// so the per-gate cost of the candidate scoring is visible next to CTR.
fn bench_route_lookahead(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_lookahead");
    group.sample_size(20);
    for d in devices::ibm_devices() {
        let workload = all_pairs_cnots(&d);
        let (table, _) = routing_table(&d, RoutingObjective::FewestSwaps);
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &workload, |b, w| {
            b.iter(|| {
                black_box(
                    LookaheadStrategy::default()
                        .route(&RouteRequest::new(w, &d).with_table(table.clone()))
                        .unwrap(),
                )
            });
        });
    }
    group.finish();
}

/// The one-time table construction cost itself (all-pairs CTR search plus
/// both distance matrices), so the break-even point is visible.
fn bench_table_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_table_build");
    group.sample_size(20);
    for d in devices::ibm_devices() {
        group.bench_with_input(BenchmarkId::from_parameter(d.name()), &d, |b, dev| {
            b.iter(|| {
                black_box(qsyn_core::RoutingTable::build(
                    dev,
                    RoutingObjective::FewestSwaps,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_route_legacy,
    bench_route_table,
    bench_route_lookahead,
    bench_table_build
);
criterion_main!(benches);
