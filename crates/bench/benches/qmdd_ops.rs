//! Micro-benchmarks of the QMDD package: gate-diagram construction,
//! diagram multiplication over growing register widths, and the canonical
//! equivalence check on structured circuits (paper Section 2.4 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;
use qsyn_qmdd::Qmdd;
use std::hint::black_box;

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    for q in 1..n {
        c.push(Gate::cx(q - 1, q));
    }
    c
}

/// A deterministic pseudo-random Clifford+T circuit.
fn random_circuit(n: usize, len: usize, mut seed: u64) -> Circuit {
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match next() % 4 {
            0 => c.push(Gate::h((next() as usize) % n)),
            1 => c.push(Gate::t((next() as usize) % n)),
            2 => c.push(Gate::tdg((next() as usize) % n)),
            _ => {
                let a = (next() as usize) % n;
                let b = (next() as usize) % n;
                if a != b {
                    c.push(Gate::cx(a, b));
                }
            }
        }
    }
    c
}

fn bench_gate_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmdd_gate_build");
    group.sample_size(30);
    for n in [8usize, 32, 96] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut pkg = Qmdd::new(n);
                black_box(pkg.gate(&Gate::mct(vec![0, n / 2, n - 2], n - 1)))
            })
        });
    }
    group.finish();
}

fn bench_circuit_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmdd_circuit_product");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let circ = random_circuit(n, 120, 0xabcdef1234567890);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circ, |b, circ| {
            b.iter(|| {
                let mut pkg = Qmdd::new(circ.n_qubits());
                black_box(pkg.circuit(circ))
            })
        });
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmdd_equivalence");
    group.sample_size(30);
    for n in [8usize, 16, 32] {
        let a = ghz(n);
        let mut b_ = ghz(n);
        // Append an identity-summing tail so the circuits differ textually.
        b_.push(Gate::t(n - 1));
        b_.push(Gate::tdg(n - 1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b_), |bch, (a, b_)| {
            bch.iter(|| black_box(qsyn_qmdd::equivalent(a, b_).equivalent))
        });
    }
    group.finish();
}

fn bench_gc_sweep(c: &mut Criterion) {
    // Equivalence under garbage collection: `off` runs with an effectively
    // infinite watermark (peak arena = every node ever built); `forced`
    // uses a low watermark so mark-and-sweep fires repeatedly mid-check.
    // The verdict is identical either way — this group tracks what the
    // sweeps themselves cost.
    let mut group = c.benchmark_group("qmdd_gc_sweep");
    group.sample_size(20);
    let n = 6;
    let a = random_circuit(n, 160, 0x5eed_cafe_f00d_d00d);
    for (label, watermark) in [("off", usize::MAX), ("forced", 1 << 10)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &a, |b, a| {
            b.iter(|| {
                let r = qsyn_qmdd::equivalent_with_gc_threshold(a, a, Some(watermark));
                black_box((r.equivalent, r.gc_runs, r.nodes_reclaimed))
            })
        });
    }
    group.finish();
}

fn bench_sweep_throughput(c: &mut Criterion) {
    // Parallel sweep engine: the same batch of independent compilations
    // through `par_map` at 1 worker vs. all CPUs.
    use qsyn_arch::devices;
    use qsyn_bench::par::{default_jobs, par_map};
    use qsyn_core::{Compiler, Verification};

    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    let circuits: Vec<Circuit> = (0..8)
        .map(|i| random_circuit(4, 40, 0x1234_5678 + i))
        .collect();
    for jobs in [1usize, default_jobs()] {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |b, &jobs| {
            b.iter(|| {
                let results = par_map(&circuits, jobs, |_, circ| {
                    Compiler::new(devices::ibmqx5())
                        .with_verification(Verification::None)
                        .compile(circ)
                        .map(|r| r.optimized.len())
                });
                black_box(results)
            })
        });
    }
    group.finish();
}

/// One streaming window of the `bench scale` grid workload: `gates`
/// consecutive gates of the nearest-neighbor stream on an `n`-qubit,
/// `w`-column grid (same generator as `grid_stream` in the bench binary).
fn grid_window(n: usize, w: usize, gates: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for i in 0..gates {
        c.push(match i % 4 {
            0 => Gate::h((i * 37 + 11) % n),
            1 => {
                let q = (i * 73 + 5) % n;
                if q % w < w - 1 {
                    Gate::cx(q, q + 1)
                } else {
                    Gate::cx(q, q - 1)
                }
            }
            2 => Gate::t((i * 29 + 3) % n),
            _ => {
                let q = (i * 41 + 17) % n;
                if q + w < n {
                    Gate::cx(q, q + w)
                } else {
                    Gate::cx(q, q - w)
                }
            }
        });
    }
    c
}

fn bench_verify_windowed(c: &mut Criterion) {
    // The streaming-verification levers in isolation: the same window
    // checked with the full-register miter (every gate product drags all
    // 1024 lines), the support-restricted miter (compacted register of
    // just the window's touched qubits), and the restricted miter with
    // fused gate blocks. Window sizes match the streaming sweep.
    use qsyn_qmdd::{
        miter_support, try_equivalent_miter, try_equivalent_miter_on_batched, EquivBudget,
        DEFAULT_MITER_BATCH,
    };
    let mut group = c.benchmark_group("verify_windowed");
    group.sample_size(10);
    let (n, w) = (1024, 32);
    for window in [64usize, 256, 1024] {
        let spec = grid_window(n, w, window);
        let out = spec.clone();
        let support = miter_support(&spec, &out);
        let b = EquivBudget::default();
        group.bench_with_input(BenchmarkId::new("full", window), &window, |bch, _| {
            bch.iter(|| black_box(try_equivalent_miter(&spec, &out, b).unwrap().equivalent))
        });
        group.bench_with_input(BenchmarkId::new("restricted", window), &window, |bch, _| {
            bch.iter(|| {
                black_box(
                    try_equivalent_miter_on_batched(&support, &spec, &out, b, 1)
                        .unwrap()
                        .equivalent,
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("restricted_batched", window),
            &window,
            |bch, _| {
                bch.iter(|| {
                    black_box(
                        try_equivalent_miter_on_batched(&support, &spec, &out, b, DEFAULT_MITER_BATCH)
                            .unwrap()
                            .equivalent,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gate_construction,
    bench_circuit_product,
    bench_equivalence,
    bench_gc_sweep,
    bench_sweep_throughput,
    bench_verify_windowed
);
criterion_main!(benches);
