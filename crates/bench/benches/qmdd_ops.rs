//! Micro-benchmarks of the QMDD package: gate-diagram construction,
//! diagram multiplication over growing register widths, and the canonical
//! equivalence check on structured circuits (paper Section 2.4 machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;
use qsyn_qmdd::Qmdd;
use std::hint::black_box;

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    for q in 1..n {
        c.push(Gate::cx(q - 1, q));
    }
    c
}

/// A deterministic pseudo-random Clifford+T circuit.
fn random_circuit(n: usize, len: usize, mut seed: u64) -> Circuit {
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match next() % 4 {
            0 => c.push(Gate::h((next() as usize) % n)),
            1 => c.push(Gate::t((next() as usize) % n)),
            2 => c.push(Gate::tdg((next() as usize) % n)),
            _ => {
                let a = (next() as usize) % n;
                let b = (next() as usize) % n;
                if a != b {
                    c.push(Gate::cx(a, b));
                }
            }
        }
    }
    c
}

fn bench_gate_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmdd_gate_build");
    group.sample_size(30);
    for n in [8usize, 32, 96] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut pkg = Qmdd::new(n);
                black_box(pkg.gate(&Gate::mct(vec![0, n / 2, n - 2], n - 1)))
            })
        });
    }
    group.finish();
}

fn bench_circuit_product(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmdd_circuit_product");
    group.sample_size(10);
    for n in [4usize, 6, 8] {
        let circ = random_circuit(n, 120, 0xabcdef1234567890);
        group.bench_with_input(BenchmarkId::from_parameter(n), &circ, |b, circ| {
            b.iter(|| {
                let mut pkg = Qmdd::new(circ.n_qubits());
                black_box(pkg.circuit(circ))
            })
        });
    }
    group.finish();
}

fn bench_equivalence(c: &mut Criterion) {
    let mut group = c.benchmark_group("qmdd_equivalence");
    group.sample_size(30);
    for n in [8usize, 16, 32] {
        let a = ghz(n);
        let mut b_ = ghz(n);
        // Append an identity-summing tail so the circuits differ textually.
        b_.push(Gate::t(n - 1));
        b_.push(Gate::tdg(n - 1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b_), |bch, (a, b_)| {
            bch.iter(|| black_box(qsyn_qmdd::equivalent(a, b_).equivalent))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gate_construction, bench_circuit_product, bench_equivalence);
criterion_main!(benches);
