//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * optimization families (identity removal vs. rewrite identities) — the
//!   two recursive optimizers of paper Section 4 steps 5-6;
//! * initial placement (identity, as in the paper, vs. the greedy
//!   future-work extension);
//! * proximity-aware dirty-ancilla selection in the Barenco decomposition
//!   (index order vs. coupling-distance order).
//!
//! Each group reports runtime; the companion `ablation` *binary* reports
//! the quality (cost) deltas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsyn_arch::{devices, TransmonCost};
use qsyn_bench::big::big_by_name;
use qsyn_bench::revlib::revlib_by_name;
use qsyn_core::{
    decompose_circuit, decompose_circuit_for, optimize_with, Compiler, DecomposeStrategy,
    OptimizeConfig, PlacementStrategy, SwapStrategy, Verification,
};
use std::hint::black_box;

fn bench_opt_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_opt_families");
    let device = devices::ibmqx3();
    let mapped = Compiler::new(device.clone())
        .with_verification(Verification::None)
        .with_optimization(false)
        .compile(&revlib_by_name("4gt12-v0_88").unwrap().circuit())
        .unwrap()
        .unoptimized;
    let cost = TransmonCost::default();
    let configs = [
        ("cancel_only", OptimizeConfig { cancel_identities: true, rewrite_identities: false }),
        ("rewrite_only", OptimizeConfig { cancel_identities: false, rewrite_identities: true }),
        ("both", OptimizeConfig::default()),
    ];
    for (name, cfg) in configs {
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| black_box(optimize_with(&mapped, Some(&device), &cost, *cfg)))
        });
    }
    group.finish();
}

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_placement");
    let circuit = revlib_by_name("4_49_17").unwrap().circuit();
    for (name, strategy) in [
        ("identity", PlacementStrategy::Identity),
        ("greedy", PlacementStrategy::Greedy),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            let compiler = Compiler::new(devices::ibmqx5())
                .with_placement(*s)
                .with_verification(Verification::None);
            b.iter(|| black_box(compiler.compile(&circuit).unwrap()))
        });
    }
    group.finish();
}

fn bench_ancilla_proximity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_ancilla_proximity");
    group.sample_size(10);
    let circuit = big_by_name("T8_b").unwrap().circuit();
    let device = devices::qc96();
    group.bench_function("index_order", |b| {
        b.iter(|| black_box(decompose_circuit(&circuit).unwrap()))
    });
    group.bench_function("distance_order", |b| {
        b.iter(|| black_box(decompose_circuit_for(&circuit, Some(&device)).unwrap()))
    });
    group.finish();
}

fn bench_route_style(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_route_style");
    let circuit = revlib_by_name("4gt13-v1_93").unwrap().circuit();
    for (name, swaps) in [
        ("ctr_swap_back", SwapStrategy::ReturnControl),
        ("persistent_layout", SwapStrategy::PersistentLayout),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &swaps, |b, s| {
            let compiler = Compiler::new(devices::ibmqx3())
                .with_swap_strategy(*s)
                .with_verification(Verification::None);
            b.iter(|| black_box(compiler.compile(&circuit).unwrap()))
        });
    }
    group.finish();
}

fn bench_decompose_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_decompose_strategy");
    let circuit = revlib_by_name("4gt12-v0_88").unwrap().circuit();
    for (name, strategy) in [
        ("exact", DecomposeStrategy::Exact),
        ("relative_phase", DecomposeStrategy::RelativePhase),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            let compiler = Compiler::new(devices::ibmqx5())
                .with_decompose_strategy(*s)
                .with_verification(Verification::None);
            b.iter(|| black_box(compiler.compile(&circuit).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_opt_families,
    bench_placement,
    bench_ancilla_proximity,
    bench_route_style,
    bench_decompose_strategy
);
criterion_main!(benches);
