//! Property-style round-trip tests: a circuit serialized to a text format
//! and parsed back must be gate-for-gate equivalent to the original, and
//! the QMDD check that proves it must respect a small node budget (see
//! docs/ROBUSTNESS.md) — random circuits are exactly where an unbounded
//! equivalence check can blow up.
//!
//! Classical circuits (which carry generalized Toffolis) round-trip
//! through `.qc` and `.real`; Clifford+T circuits through OpenQASM 2.0.

use qsyn_bench::random::{random_classical, random_clifford_t};
use qsyn_circuit::Circuit;
use qsyn_qmdd::{try_equivalent, EquivBudget};

/// Node budget for the equivalence checks: generous for 4-7 line random
/// circuits, tiny compared to an unbounded arena.
const BUDGET: EquivBudget = EquivBudget {
    gc_threshold: None,
    node_budget: Some(4096),
};

fn assert_equiv(a: &Circuit, b: &Circuit, label: &str) {
    assert_eq!(
        a.n_qubits(),
        b.n_qubits(),
        "{label}: register width changed in flight"
    );
    let report = try_equivalent(a, b, BUDGET)
        .unwrap_or_else(|e| panic!("{label}: equivalence check over budget: {e}"));
    assert!(report.equivalent, "{label}: round-trip changed the function");
}

#[test]
fn random_classical_circuits_roundtrip_through_qc() {
    for seed in 0..24 {
        let c = random_classical(5, 30, seed);
        let label = format!("classical seed {seed}");
        let text = c.to_qc();
        let back = Circuit::from_qc(&text)
            .unwrap_or_else(|e| panic!("{label}: reparse: {e}\n{text}"));
        assert_equiv(&c, &back, &label);
    }
}

#[test]
fn random_classical_circuits_roundtrip_through_real() {
    for seed in 0..24 {
        let c = random_classical(6, 40, seed);
        let label = format!("classical seed {seed}");
        let text = c.to_real().unwrap_or_else(|e| panic!("{label}: to_real: {e}"));
        let back = Circuit::from_real(&text)
            .unwrap_or_else(|e| panic!("{label}: reparse: {e}\n{text}"));
        assert_equiv(&c, &back, &label);
    }
}

#[test]
fn random_clifford_t_circuits_roundtrip_through_qasm() {
    for seed in 0..24 {
        let c = random_clifford_t(4, 24, seed);
        let label = format!("clifford+t seed {seed}");
        let qasm = c.to_qasm().unwrap_or_else(|e| panic!("{label}: to_qasm: {e}"));
        let back = Circuit::from_qasm(&qasm)
            .unwrap_or_else(|e| panic!("{label}: reparse: {e}\n{qasm}"));
        assert_equiv(&c, &back, &label);
    }
}

#[test]
fn roundtrip_survives_wider_classical_circuits_under_budget() {
    // Wider random reversible circuits stress the QMDD harder; the budget
    // must still suffice (a failure here means the budget latch fired).
    for seed in [1, 7, 13] {
        let c = random_classical(7, 60, seed);
        let label = format!("wide classical seed {seed}");
        let text = c.to_qc();
        let back = Circuit::from_qc(&text)
            .unwrap_or_else(|e| panic!("{label}: reparse: {e}\n{text}"));
        assert_equiv(&c, &back, &label);
    }
}
