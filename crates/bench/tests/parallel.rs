//! Determinism of the parallel sweep engine: fanning the same workload
//! across worker threads must be invisible in the results. Each (circuit x
//! device) job owns its own compiler and QMDD package, so gate sequences,
//! Eqn. 2 costs, and verification verdicts are bit-identical for any
//! `--jobs` value — only wall time changes.

use qsyn_arch::{devices, CostModel, TransmonCost};
use qsyn_bench::par::par_map;
use qsyn_bench::random::random_classical;
use qsyn_core::{CompileError, Compiler};

/// The observable outcome of one sweep job, with every field the tables
/// report derived from it.
#[derive(Debug, PartialEq)]
enum Outcome {
    Compiled {
        gates: Vec<qsyn_gate::Gate>,
        unopt_cost: f64,
        opt_cost: f64,
        pct_decrease: f64,
        verified: Option<bool>,
    },
    NotApplicable,
}

fn sweep(jobs: usize) -> Vec<Outcome> {
    let cost = TransmonCost::default();
    let cases: Vec<(qsyn_arch::Device, u64)> = devices::ibm_devices()
        .into_iter()
        .flat_map(|d| (0..6u64).map(move |seed| (d.clone(), seed)))
        .collect();
    par_map(&cases, jobs, |_, (device, seed)| {
        let lines = device.n_qubits().min(5);
        let circuit = random_classical(lines, 10, seed * 97 + 13);
        match Compiler::new(device.clone()).compile(&circuit) {
            Ok(r) => Outcome::Compiled {
                gates: r.optimized.gates().to_vec(),
                unopt_cost: cost.circuit_cost(&r.unoptimized),
                opt_cost: cost.circuit_cost(&r.optimized),
                pct_decrease: r.percent_cost_decrease(&cost),
                verified: r.verified,
            },
            Err(CompileError::NoAncilla { .. } | CompileError::TooWide { .. }) => {
                Outcome::NotApplicable
            }
            Err(e) => panic!("unexpected error on {}: {e}", device.name()),
        }
    })
}

#[test]
fn jobs_1_and_8_produce_identical_outcomes() {
    let serial = sweep(1);
    let parallel = sweep(8);
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s, p, "job {i} diverged between --jobs 1 and --jobs 8");
    }
    // The sweep exercised real work: at least one compiled + verified job.
    assert!(serial
        .iter()
        .any(|o| matches!(o, Outcome::Compiled { verified: Some(true), .. })));
}

#[test]
fn forced_gc_sweeps_leave_verdicts_unchanged() {
    // GC stress: the same equivalence questions with collection disabled
    // vs. a watermark low enough to force repeated sweeps mid-check.
    for seed in 0..4u64 {
        let a = random_classical(5, 12, seed * 71 + 3);
        let mut b = a.clone();
        // A textually different but unitarily identical tail.
        b.push(qsyn_gate::Gate::t(0));
        b.push(qsyn_gate::Gate::tdg(0));
        let lax = qsyn_qmdd::equivalent_with_gc_threshold(&a, &b, Some(usize::MAX));
        let forced = qsyn_qmdd::equivalent_with_gc_threshold(&a, &b, Some(64));
        assert!(lax.equivalent, "seed {seed}");
        assert_eq!(lax.equivalent, forced.equivalent, "seed {seed}");
        assert!(
            forced.gc_runs > 0,
            "seed {seed}: watermark 64 must force at least one sweep"
        );
    }
}
