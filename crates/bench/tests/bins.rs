//! Integration tests driving the experiment binaries end to end.

use std::process::Command;

fn run(bin: &str, args: &[&str]) -> (bool, String, String) {
    let out = Command::new(bin).args(args).output().expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn table2_binary_matches_paper() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_table2"), &[]);
    assert!(ok);
    assert!(stdout.contains("| ibmqx2 | 5 | 0.300000 | 0.300000 |"));
    assert!(stdout.contains("qc96"));
}

#[test]
fn table7_binary_lists_benchmarks() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_table7"), &[]);
    assert!(ok);
    for name in ["T6_b", "T7_b", "T8_b", "T9_b", "T10_b"] {
        assert!(stdout.contains(name), "{name}");
    }
    assert!(stdout.contains("q85"));
}

#[test]
fn fig5_binary_reproduces_the_paper_path() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_fig5"), &[]);
    assert!(ok);
    assert!(stdout.contains("[5, 12, 11]"));
    assert!(stdout.contains("QMDD equivalence with the original CNOT: true"));
}

#[test]
fn table5_binary_without_verification() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_table5"), &["--no-verify"]);
    assert!(ok);
    assert!(stdout.contains("4gt12-v0_88"));
    assert!(stdout.contains("N/A"), "T5 rows are N/A on 5-qubit devices");
    assert!(stdout.contains("Table 6"));
}

#[test]
fn stress_binary_small_run() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_stress"), &["3"]);
    assert!(ok);
    assert!(stdout.contains("all outputs QMDD-verified"));
}

#[test]
fn suite_binary_runs_a_directory() {
    let dir = std::env::temp_dir().join(format!("qsyn-suite-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("tof.real"),
        ".numvars 3\n.variables a b c\nt3 a b c\n",
    )
    .unwrap();
    std::fs::write(dir.join("xor.pla"), ".i 2\n.o 1\n10 1\n01 1\n.e\n").unwrap();
    let (ok, stdout, stderr) = run(
        env!("CARGO_BIN_EXE_suite"),
        &[dir.to_str().unwrap(), "ibmqx4"],
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("| tof |"), "{stdout}");
    assert!(stdout.contains("| xor |"));
}

#[test]
fn suite_binary_rejects_missing_dir() {
    let out = Command::new(env!("CARGO_BIN_EXE_suite"))
        .output()
        .expect("runs");
    assert!(!out.status.success());
}

#[test]
fn scaling_binary_smallest_width() {
    let (ok, stdout, _) = run(env!("CARGO_BIN_EXE_scaling"), &["8"]);
    assert!(ok);
    assert!(stdout.contains("Width scaling"));
    assert!(stdout.contains("| 8 |"));
}
