//! Benchmark workloads and the experiment harness reproducing every table
//! of the paper's evaluation (Section 5).
//!
//! * [`stg`] — the "Optimal Single-target Gates" suite (Table 3/4);
//! * [`revlib`] — the RevLib Toffoli cascades (Table 5/6);
//! * [`big`] — the 96-qubit generalized-Toffoli cascades (Table 7/8);
//! * [`report`] — runs each experiment and renders the paper's tables with
//!   the paper's own numbers side by side.
//!
//! Binaries: `table2` .. `table8` regenerate individual tables; `fig5`
//! walks the paper's CTR example; `experiments` regenerates the full
//! EXPERIMENTS.md body.
//!
//! # Examples
//!
//! ```
//! use qsyn_bench::report::{render_table2, run_table2};
//! let table = render_table2(&run_table2());
//! assert!(table.contains("ibmqx5"));
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod arith;
pub mod big;
pub mod noise;
pub mod par;
pub mod random;
pub mod report;
pub mod revlib;
pub mod serve_bench;
pub mod stg;
