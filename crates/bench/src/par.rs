//! A small work-stealing-free parallel map for benchmark sweeps.
//!
//! The sweep binaries fan (circuit, device) compilation jobs across a pool
//! of OS threads. Each job owns its own [`qsyn_core::Compiler`] (and hence
//! its own QMDD package), so workers share nothing but the input slice and
//! the output slots; results are collected in **input order** regardless of
//! which worker finished first, keeping sweep output deterministic.
//!
//! This is a hand-rolled `std::thread` pool rather than a rayon dependency
//! so the workspace builds in offline environments. The scheduling is a
//! single shared atomic cursor: workers repeatedly claim the next unclaimed
//! index, which balances load well when per-job cost varies by orders of
//! magnitude (small STG functions vs. 96-qubit cascades).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

// The long-lived pool moved into the core crate so `compile_stream` can
// verify windows on it; re-exported here for the daemon front-end and
// the serve bench, which adopted it under this path.
pub use qsyn_core::pool::{default_jobs, WorkerPool};

/// Parses a `--jobs N` (or `--jobs=N`) flag from pre-collected CLI args.
///
/// Returns [`default_jobs`] when the flag is absent and `None` when its
/// value is missing or not a positive integer (callers report the usage
/// error themselves).
pub fn jobs_from_args(args: &[String]) -> Option<usize> {
    match flag_value(args, "--jobs") {
        Some(v) => v.parse().ok().filter(|&n| n > 0),
        None => Some(default_jobs()),
    }
}

/// Extracts a `--flag VALUE` / `--flag=VALUE` argument, or `None` when the
/// flag is absent. A flag present with no value yields `Some("")` so
/// callers can report the usage error.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return Some(args.get(i + 1).map_or("", |v| v.as_str()));
        }
        if let Some(v) = a.strip_prefix(flag) {
            if let Some(v) = v.strip_prefix('=') {
                return Some(v);
            }
        }
    }
    None
}

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results in input order.
///
/// `f` receives the item's index (sweeps use it as the job id stamped on
/// trace events) and the item itself. With `jobs <= 1` the map runs inline
/// on the calling thread with no pool at all, so serial runs behave exactly
/// as before the executor existed.
///
/// # Panics
///
/// Propagates a panic from any worker once all threads have been joined.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Compilation jobs are CPU-bound, so threads beyond the available
    // cores only add stacks and context switches: an oversized `--jobs`
    // is clamped to the machine rather than honored literally.
    let workers = jobs.min(items.len()).min(default_jobs());
    let cursor = AtomicUsize::new(0);
    // One mutex per slot: a worker only ever locks the slot it claimed, so
    // there is no contention — the mutex is just the portable way to write
    // into shared storage from scoped threads.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// [`par_map`] with per-job fault isolation: a panicking job yields an
/// `Err` row carrying the panic message instead of tearing down the whole
/// sweep, so N inputs always produce N rows.
///
/// The sweep binaries run every compilation through this wrapper — one
/// poisoned benchmark (a compiler defect, a blown `unwrap`) must not cost
/// the other N-1 results of a long parallel run.
pub fn try_par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, jobs, |i, t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

/// Best-effort extraction of the human-readable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let square = |_: usize, &x: &u64| x * x;
        assert_eq!(par_map(&items, 1, square), par_map(&items, 8, square));
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 64, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        assert!(par_map(&items, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn oversized_jobs_still_complete_every_item() {
        // An absurd --jobs value must not spawn an absurd thread count;
        // the pool clamps to the machine and still fills every slot.
        let items: Vec<usize> = (0..50).collect();
        let out = par_map(&items, 100_000, |_, &x| x + 1);
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn flag_value_parses_both_forms() {
        let args: Vec<String> = ["--deadline", "2.5", "--node-budget=4096", "--bare"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--deadline"), Some("2.5"));
        assert_eq!(flag_value(&args, "--node-budget"), Some("4096"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert_eq!(flag_value(&args, "--bare"), Some(""));
    }

    #[test]
    fn try_par_map_isolates_panics() {
        let items: Vec<usize> = (0..16).collect();
        let out = try_par_map(&items, 4, |_, &x| {
            if x % 5 == 3 {
                panic!("job {x} exploded");
            }
            x * 10
        });
        assert_eq!(out.len(), items.len());
        for (x, row) in items.iter().zip(&out) {
            if x % 5 == 3 {
                let msg = row.as_ref().unwrap_err();
                assert!(msg.contains("exploded"), "{msg}");
            } else {
                assert_eq!(*row.as_ref().unwrap(), x * 10);
            }
        }
    }

    #[test]
    fn try_par_map_serial_also_isolates() {
        let out = try_par_map(&[1u8], 1, |_, _| -> u8 { panic!("lone job") });
        assert_eq!(out.len(), 1);
        assert!(out[0].as_ref().unwrap_err().contains("lone job"));
    }

    #[test]
    fn reexported_worker_pool_runs_every_job() {
        // The pool itself is tested where it lives (`qsyn_core::pool`);
        // this locks the `qsyn_bench::par::WorkerPool` re-export path its
        // original callers still use.
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(4);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let count = std::sync::Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(pool.pending(), 0);
        pool.shutdown();
    }

    #[test]
    fn jobs_flag_parses_both_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_from_args(&args(&["--jobs", "4"])), Some(4));
        assert_eq!(jobs_from_args(&args(&["--jobs=8"])), Some(8));
        assert_eq!(jobs_from_args(&args(&[])), Some(default_jobs()));
        assert_eq!(jobs_from_args(&args(&["--jobs"])), None);
        assert_eq!(jobs_from_args(&args(&["--jobs", "zero"])), None);
        assert_eq!(jobs_from_args(&args(&["--jobs", "0"])), None);
    }
}
