//! A small work-stealing-free parallel map for benchmark sweeps.
//!
//! The sweep binaries fan (circuit, device) compilation jobs across a pool
//! of OS threads. Each job owns its own [`qsyn_core::Compiler`] (and hence
//! its own QMDD package), so workers share nothing but the input slice and
//! the output slots; results are collected in **input order** regardless of
//! which worker finished first, keeping sweep output deterministic.
//!
//! This is a hand-rolled `std::thread` pool rather than a rayon dependency
//! so the workspace builds in offline environments. The scheduling is a
//! single shared atomic cursor: workers repeatedly claim the next unclaimed
//! index, which balances load well when per-job cost varies by orders of
//! magnitude (small STG functions vs. 96-qubit cascades).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count for `--jobs`: the number of available CPUs.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `--jobs N` (or `--jobs=N`) flag from pre-collected CLI args.
///
/// Returns [`default_jobs`] when the flag is absent and `None` when its
/// value is missing or not a positive integer (callers report the usage
/// error themselves).
pub fn jobs_from_args(args: &[String]) -> Option<usize> {
    match flag_value(args, "--jobs") {
        Some(v) => v.parse().ok().filter(|&n| n > 0),
        None => Some(default_jobs()),
    }
}

/// Extracts a `--flag VALUE` / `--flag=VALUE` argument, or `None` when the
/// flag is absent. A flag present with no value yields `Some("")` so
/// callers can report the usage error.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            return Some(args.get(i + 1).map_or("", |v| v.as_str()));
        }
        if let Some(v) = a.strip_prefix(flag) {
            if let Some(v) = v.strip_prefix('=') {
                return Some(v);
            }
        }
    }
    None
}

/// Applies `f` to every item, using up to `jobs` worker threads, and
/// returns the results in input order.
///
/// `f` receives the item's index (sweeps use it as the job id stamped on
/// trace events) and the item itself. With `jobs <= 1` the map runs inline
/// on the calling thread with no pool at all, so serial runs behave exactly
/// as before the executor existed.
///
/// # Panics
///
/// Propagates a panic from any worker once all threads have been joined.
pub fn par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Compilation jobs are CPU-bound, so threads beyond the available
    // cores only add stacks and context switches: an oversized `--jobs`
    // is clamped to the machine rather than honored literally.
    let workers = jobs.min(items.len()).min(default_jobs());
    let cursor = AtomicUsize::new(0);
    // One mutex per slot: a worker only ever locks the slot it claimed, so
    // there is no contention — the mutex is just the portable way to write
    // into shared storage from scoped threads.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

/// [`par_map`] with per-job fault isolation: a panicking job yields an
/// `Err` row carrying the panic message instead of tearing down the whole
/// sweep, so N inputs always produce N rows.
///
/// The sweep binaries run every compilation through this wrapper — one
/// poisoned benchmark (a compiler defect, a blown `unwrap`) must not cost
/// the other N-1 results of a long parallel run.
pub fn try_par_map<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(items, jobs, |i, t| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i, t)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

// ---------------------------------------------------------------------------
// A long-lived task pool for the serve daemon.
// ---------------------------------------------------------------------------

/// A long-lived thread pool for streams of independent jobs.
///
/// [`par_map`] is built for *batches* — it spawns scoped workers, drains a
/// slice, and joins. A daemon instead sees an unbounded stream of jobs
/// arriving one at a time, so this pool keeps its workers alive across
/// jobs: submit closures as they arrive, ask [`WorkerPool::pending`] for
/// backpressure decisions, [`WorkerPool::drain`] to wait for quiescence,
/// and [`WorkerPool::shutdown`] to finish everything and join.
///
/// Every job runs under `catch_unwind`, so a panicking job never takes a
/// worker down — the same per-job fault isolation [`try_par_map`] gives
/// batches. Jobs are responsible for reporting their own results (the
/// daemon's jobs send pre-rendered response lines over a channel); a
/// panic that escapes a job is swallowed here because the daemon's jobs
/// already catch and report panics themselves, and a second barrier keeps
/// worker threads immortal even if that reporting path itself panics.
pub struct WorkerPool {
    inner: std::sync::Arc<PoolInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

struct PoolState {
    queue: std::collections::VecDeque<Box<dyn FnOnce() + Send>>,
    in_flight: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signaled when work arrives or shutdown begins (workers wait here).
    work: std::sync::Condvar,
    /// Signaled when a job finishes (drainers wait here).
    done: std::sync::Condvar,
}

// Pool utilization metrics in the process-wide registry: how many
// workers exist, how many are busy right now, and the per-job run-time
// distribution (utilization over a window = Σ `pool.job_run_us` delta /
// (workers × window)). Handles are cached so the per-job overhead is a
// few relaxed atomic ops.
macro_rules! pool_metric {
    ($fn_name:ident, counter, $name:literal) => {
        fn $fn_name() -> &'static qsyn_trace::metrics::Counter {
            static CELL: std::sync::OnceLock<std::sync::Arc<qsyn_trace::metrics::Counter>> =
                std::sync::OnceLock::new();
            CELL.get_or_init(|| qsyn_trace::metrics::global().counter($name))
        }
    };
    ($fn_name:ident, gauge, $name:literal) => {
        fn $fn_name() -> &'static qsyn_trace::metrics::Gauge {
            static CELL: std::sync::OnceLock<std::sync::Arc<qsyn_trace::metrics::Gauge>> =
                std::sync::OnceLock::new();
            CELL.get_or_init(|| qsyn_trace::metrics::global().gauge($name))
        }
    };
    ($fn_name:ident, histogram, $name:literal) => {
        fn $fn_name() -> &'static qsyn_trace::metrics::Histogram {
            static CELL: std::sync::OnceLock<std::sync::Arc<qsyn_trace::metrics::Histogram>> =
                std::sync::OnceLock::new();
            CELL.get_or_init(|| qsyn_trace::metrics::global().histogram($name))
        }
    };
}

pool_metric!(m_pool_workers, gauge, "pool.workers");
pool_metric!(m_pool_busy, gauge, "pool.busy_workers");
pool_metric!(m_pool_submitted, counter, "pool.jobs_submitted");
pool_metric!(m_pool_completed, counter, "pool.jobs_completed");
pool_metric!(m_pool_job_run, histogram, "pool.job_run_us");

impl WorkerPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        m_pool_workers().set(workers.max(1) as i64);
        let inner = std::sync::Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: std::collections::VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work: std::sync::Condvar::new(),
            done: std::sync::Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qsyn-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool { inner, workers }
    }

    /// Enqueues a job. Jobs run in submission order as workers free up.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`].
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        assert!(!state.shutdown, "submit after shutdown");
        state.queue.push_back(Box::new(job));
        drop(state);
        m_pool_submitted().inc();
        self.inner.work.notify_one();
    }

    /// Jobs admitted but not yet finished (queued plus running). The
    /// daemon's admission control compares this against its queue cap.
    pub fn pending(&self) -> usize {
        let state = self.inner.state.lock().expect("pool poisoned");
        state.queue.len() + state.in_flight
    }

    /// Blocks until every submitted job has finished.
    pub fn drain(&self) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = self.inner.done.wait(state).expect("pool poisoned");
        }
    }

    /// Finishes all queued jobs, then joins the workers. Called by `drop`
    /// if not called explicitly.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool poisoned");
            if state.shutdown && self.workers.is_empty() {
                return;
            }
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work.wait(state).expect("pool poisoned");
            }
        };
        // Jobs report their own outcomes (including their own panics);
        // this outer barrier only guarantees the worker thread survives.
        m_pool_busy().inc();
        let job_started = std::time::Instant::now();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        m_pool_job_run().record_duration(job_started.elapsed());
        m_pool_busy().dec();
        m_pool_completed().inc();
        let mut state = inner.state.lock().expect("pool poisoned");
        state.in_flight -= 1;
        drop(state);
        inner.done.notify_all();
    }
}

/// Best-effort extraction of the human-readable panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 8, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let square = |_: usize, &x: &u64| x * x;
        assert_eq!(par_map(&items, 1, square), par_map(&items, 8, square));
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = [1, 2, 3];
        assert_eq!(par_map(&items, 64, |_, &x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        assert!(par_map(&items, 4, |_, &x| x).is_empty());
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn oversized_jobs_still_complete_every_item() {
        // An absurd --jobs value must not spawn an absurd thread count;
        // the pool clamps to the machine and still fills every slot.
        let items: Vec<usize> = (0..50).collect();
        let out = par_map(&items, 100_000, |_, &x| x + 1);
        assert_eq!(out, (1..=50).collect::<Vec<_>>());
    }

    #[test]
    fn flag_value_parses_both_forms() {
        let args: Vec<String> = ["--deadline", "2.5", "--node-budget=4096", "--bare"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--deadline"), Some("2.5"));
        assert_eq!(flag_value(&args, "--node-budget"), Some("4096"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert_eq!(flag_value(&args, "--bare"), Some(""));
    }

    #[test]
    fn try_par_map_isolates_panics() {
        let items: Vec<usize> = (0..16).collect();
        let out = try_par_map(&items, 4, |_, &x| {
            if x % 5 == 3 {
                panic!("job {x} exploded");
            }
            x * 10
        });
        assert_eq!(out.len(), items.len());
        for (x, row) in items.iter().zip(&out) {
            if x % 5 == 3 {
                let msg = row.as_ref().unwrap_err();
                assert!(msg.contains("exploded"), "{msg}");
            } else {
                assert_eq!(*row.as_ref().unwrap(), x * 10);
            }
        }
    }

    #[test]
    fn try_par_map_serial_also_isolates() {
        let out = try_par_map(&[1u8], 1, |_, _| -> u8 { panic!("lone job") });
        assert_eq!(out.len(), 1);
        assert!(out[0].as_ref().unwrap_err().contains("lone job"));
    }

    #[test]
    fn worker_pool_runs_every_job() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(4);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let count = std::sync::Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(pool.pending(), 0);
        pool.shutdown();
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(2);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let count = std::sync::Arc::clone(&count);
            pool.submit(move || {
                if i % 3 == 0 {
                    panic!("job {i} exploded");
                }
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        // 0,3,6,9,12,15,18 panicked; the other 13 completed on the same
        // two workers, proving panics did not kill them.
        assert_eq!(count.load(Ordering::SeqCst), 13);
        pool.shutdown();
    }

    #[test]
    fn worker_pool_shutdown_finishes_queued_jobs() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(1);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let count = std::sync::Arc::clone(&count);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 10, "shutdown drains first");
    }

    #[test]
    fn jobs_flag_parses_both_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(jobs_from_args(&args(&["--jobs", "4"])), Some(4));
        assert_eq!(jobs_from_args(&args(&["--jobs=8"])), Some(8));
        assert_eq!(jobs_from_args(&args(&[])), Some(default_jobs()));
        assert_eq!(jobs_from_args(&args(&["--jobs"])), None);
        assert_eq!(jobs_from_args(&args(&["--jobs", "zero"])), None);
        assert_eq!(jobs_from_args(&args(&["--jobs", "0"])), None);
    }
}
