//! The RevLib Toffoli-cascade benchmarks of paper Table 5.
//!
//! RevLib (revlib.org) hosts many realizations per function; the paper does
//! not reproduce the exact gate lists it used, so these are reconstructions
//! with the *same* line counts, gate counts and largest-gate species as the
//! paper's rows — which pins down the decomposition behavior exactly (the
//! Table 5 T-counts, constant across devices, follow mechanically from the
//! Toffoli/MCT mix: each Toffoli contributes 7 T gates after the Clifford+T
//! expansion, a T4 with one borrowed line 28, a T5 70).

use qsyn_circuit::Circuit;

/// One Table 5 benchmark: name, RevLib-style `.real` source, and the
/// paper-reported shape data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RevlibBenchmark {
    /// Paper row name.
    pub name: &'static str,
    /// Embedded `.real` source.
    pub source: &'static str,
    /// Paper's "# Qubits" column.
    pub qubits: usize,
    /// Paper's "Largest Gate" column (`t3` = Toffoli, `t4`/`t5` = MCT).
    pub largest_gate: &'static str,
    /// Paper's "Gate Count" column.
    pub gate_count: usize,
    /// The T-count every device mapping shares (Table 5 data column).
    pub paper_t: usize,
}

/// `3_17_14`: 3 lines, 6 gates, two Toffolis (T-count 14).
pub const R3_17_14: RevlibBenchmark = RevlibBenchmark {
    name: "3_17_14",
    qubits: 3,
    largest_gate: "toffoli",
    gate_count: 6,
    paper_t: 14,
    source: "\
.version 2.0
.numvars 3
.variables a b c
.begin
t3 b c a
t1 a
t2 a b
t3 a b c
t2 c b
t1 c
.end
",
};

/// `fred6`: 3 lines, 3 Toffolis realizing a Fredkin (T-count 21).
pub const FRED6: RevlibBenchmark = RevlibBenchmark {
    name: "fred6",
    qubits: 3,
    largest_gate: "toffoli",
    gate_count: 3,
    paper_t: 21,
    source: "\
.version 2.0
.numvars 3
.variables a b c
.begin
t3 a b c
t3 a c b
t3 a b c
.end
",
};

/// `4_49_17`: 4 lines, 12 gates, five Toffolis (T-count 35).
pub const R4_49_17: RevlibBenchmark = RevlibBenchmark {
    name: "4_49_17",
    qubits: 4,
    largest_gate: "toffoli",
    gate_count: 12,
    paper_t: 35,
    source: "\
.version 2.0
.numvars 4
.variables a b c d
.begin
t1 d
t3 a b c
t2 c d
t3 b d a
t1 b
t2 a c
t3 c d b
t2 b a
t3 a c d
t1 a
t2 d c
t3 b c a
.end
",
};

/// `4gt12-v0_88`: 5 lines, 5 gates, largest gate T5 (T-count 70: the T5
/// yields 8 Toffolis through the dirty-ancilla V-chain and the two
/// ordinary Toffolis add 2 more — 10 Toffolis x 7 T).
pub const R4GT12_V0_88: RevlibBenchmark = RevlibBenchmark {
    name: "4gt12-v0_88",
    qubits: 5,
    largest_gate: "T5",
    gate_count: 5,
    paper_t: 70,
    source: "\
.version 2.0
.numvars 5
.variables a b c d e
.begin
t1 e
t5 a b c d e
t3 a b d
t2 d c
t3 b c a
.end
",
};

/// `4gt13-v1_93`: 5 lines, 4 gates, one T4 (T-count 28: the V-chain yields
/// 4 Toffolis).
pub const R4GT13_V1_93: RevlibBenchmark = RevlibBenchmark {
    name: "4gt13-v1_93",
    qubits: 5,
    largest_gate: "T4",
    gate_count: 4,
    paper_t: 28,
    source: "\
.version 2.0
.numvars 5
.variables a b c d e
.begin
t4 b c d a
t2 a e
t1 d
t2 c b
.end
",
};

/// The five Table 5 benchmarks in row order.
pub const REVLIB_BENCHMARKS: [RevlibBenchmark; 5] =
    [R3_17_14, FRED6, R4_49_17, R4GT12_V0_88, R4GT13_V1_93];

impl RevlibBenchmark {
    /// Parses the embedded `.real` source into a circuit.
    pub fn circuit(&self) -> Circuit {
        Circuit::from_real(self.source)
            .expect("embedded .real sources are valid")
            .with_name(self.name)
    }
}

/// Looks a Table 5 benchmark up by name.
pub fn revlib_by_name(name: &str) -> Option<RevlibBenchmark> {
    REVLIB_BENCHMARKS.iter().copied().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;
    use qsyn_core::Compiler;

    #[test]
    fn shapes_match_paper_rows() {
        for b in REVLIB_BENCHMARKS {
            let c = b.circuit();
            assert_eq!(c.n_qubits(), b.qubits, "{}", b.name);
            assert_eq!(c.len(), b.gate_count, "{}", b.name);
            assert!(c.is_classical(), "{}", b.name);
        }
    }

    #[test]
    fn fred6_is_a_fredkin() {
        let c = FRED6.circuit();
        // Controlled swap of b and c on control a.
        assert_eq!(c.permute_basis(0b110), 0b101);
        assert_eq!(c.permute_basis(0b101), 0b110);
        assert_eq!(c.permute_basis(0b011), 0b011);
        assert_eq!(c.permute_basis(0b010), 0b010);
    }

    #[test]
    fn t_counts_match_paper_after_decomposition() {
        // The Table 5 T-count column (constant across devices) must be
        // reproduced exactly by our decomposition on a 16-qubit device.
        let d = devices::ibmqx5();
        for b in REVLIB_BENCHMARKS {
            let r = Compiler::new(d.clone())
                .with_optimization(false)
                .compile(&b.circuit())
                .unwrap();
            assert_eq!(
                r.unoptimized.stats().t_count,
                b.paper_t,
                "{} T-count",
                b.name
            );
        }
    }

    #[test]
    fn t5_benchmark_is_na_on_5_qubit_devices() {
        // Table 5 marks 4gt12-v0_88 N/A on ibmqx2 and ibmqx4.
        for d in [devices::ibmqx2(), devices::ibmqx4()] {
            assert!(Compiler::new(d).compile(&R4GT12_V0_88.circuit()).is_err());
        }
    }

    #[test]
    fn t4_benchmark_compiles_on_5_qubit_devices() {
        // Table 5 has values for 4gt13-v1_93 on ibmqx2 (one free line
        // suffices for the T4's dirty ancilla).
        let r = Compiler::new(devices::ibmqx2())
            .compile(&R4GT13_V1_93.circuit())
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(revlib_by_name("fred6").unwrap().qubits, 3);
        assert!(revlib_by_name("nope").is_none());
    }
}
