//! Reversible arithmetic circuit generators — realistic NCT workloads for
//! the compiler beyond the paper's benchmark suites.
//!
//! All constructions are pure NOT/CNOT/Toffoli networks, so they flow
//! through the same decomposition and routing machinery as the paper's
//! Toffoli cascades and are exhaustively checkable as permutations.

use qsyn_circuit::Circuit;
use qsyn_gate::Gate;

/// The Cuccaro ripple-carry adder: `|c0, b, a> -> |c0, a+b mod 2^n + carry, a>`
/// layout (little-endian within each register; see line map below).
///
/// Line layout for `n`-bit operands (total `2n + 2` lines):
/// * line 0 — incoming carry `c0`;
/// * lines `1, 3, 5, ...` — operand `b` bits, least significant first
///   (replaced by the sum);
/// * lines `2, 4, 6, ...` — operand `a` bits (preserved);
/// * line `2n + 1` — carry out `z`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn cuccaro_adder(n: usize) -> Circuit {
    assert!(n >= 1, "adder needs at least one bit");
    let lines = 2 * n + 2;
    let b = |i: usize| 1 + 2 * i; // sum/b bit i
    let a = |i: usize| 2 + 2 * i; // a bit i
    let c0 = 0usize;
    let z = 2 * n + 1;
    let mut c = Circuit::new(lines).with_name(format!("cuccaro_add{n}"));

    // MAJ(x, y, t): t becomes majority/carry; y becomes y^t(partial sum).
    let maj = |c: &mut Circuit, x: usize, y: usize, t: usize| {
        c.push(Gate::cx(t, y));
        c.push(Gate::cx(t, x));
        c.push(Gate::toffoli(x, y, t));
    };
    // UMA(x, y, t): inverse bookkeeping producing the sum on y.
    let uma = |c: &mut Circuit, x: usize, y: usize, t: usize| {
        c.push(Gate::toffoli(x, y, t));
        c.push(Gate::cx(t, x));
        c.push(Gate::cx(x, y));
    };

    // Forward MAJ ripple.
    maj(&mut c, c0, b(0), a(0));
    for i in 1..n {
        maj(&mut c, a(i - 1), b(i), a(i));
    }
    // Carry out.
    c.push(Gate::cx(a(n - 1), z));
    // Backward UMA ripple.
    for i in (1..n).rev() {
        uma(&mut c, a(i - 1), b(i), a(i));
    }
    uma(&mut c, c0, b(0), a(0));
    c
}

/// Packs operand values into a basis state for [`cuccaro_adder`].
///
/// # Panics
///
/// Panics if the operands or carry don't fit in `n` bits.
pub fn adder_input(n: usize, a: u64, b: u64, carry_in: bool) -> u64 {
    assert!(a < (1 << n) && b < (1 << n), "operands must fit");
    let lines = 2 * n + 2;
    let mut state = 0u64;
    let mut set = |line: usize, v: bool| {
        if v {
            state |= 1 << (lines - 1 - line);
        }
    };
    set(0, carry_in);
    for i in 0..n {
        set(1 + 2 * i, b >> i & 1 == 1);
        set(2 + 2 * i, a >> i & 1 == 1);
    }
    state
}

/// Extracts `(sum, carry_out, a_preserved)` from an adder output state.
pub fn adder_output(n: usize, state: u64) -> (u64, bool, u64) {
    let lines = 2 * n + 2;
    let get = |line: usize| state >> (lines - 1 - line) & 1;
    let mut sum = 0u64;
    let mut a = 0u64;
    for i in 0..n {
        sum |= get(1 + 2 * i) << i;
        a |= get(2 + 2 * i) << i;
    }
    (sum, get(2 * n + 1) == 1, a)
}

/// An `n`-bit unsigned comparator: flips the `result` line when `a < b`.
/// Built by computing `a - b` borrow logic via the adder trick: uses
/// `2n + 2` lines like the adder, result on the carry line.
///
/// The construction complements `b`, adds, and uncomputes, so both inputs
/// are preserved and only the result line changes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize) -> Circuit {
    // a < b  <=>  a - b borrows  <=>  NOT carry(a + ~b + 1).
    let mut c = Circuit::new(2 * n + 2).with_name(format!("cmp{n}"));
    // Set incoming carry = 1 and complement b: a + ~b + 1.
    c.push(Gate::x(0));
    for i in 0..n {
        c.push(Gate::x(1 + 2 * i));
    }
    c.append(&cuccaro_adder(n));
    // Result = NOT carry-out.
    c.push(Gate::x(2 * n + 1));
    // Uncompute everything except the carry line.
    let mut undo = cuccaro_adder(n).inverse();
    undo.gates_mut().retain(|g| !g.touches(2 * n + 1));
    // The inverse adder would also un-write the carry; keep it by
    // rebuilding the uncompute without carry gates. The remaining network
    // restores b' and the ripple; then undo the complements.
    c.append(&undo);
    for i in 0..n {
        c.push(Gate::x(1 + 2 * i));
    }
    c.push(Gate::x(0));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_is_correct_for_two_bits() {
        let c = cuccaro_adder(2);
        assert!(c.is_classical());
        for a in 0..4u64 {
            for b in 0..4u64 {
                for cin in [false, true] {
                    let out = c.permute_basis(adder_input(2, a, b, cin));
                    let (sum, carry, a_out) = adder_output(2, out);
                    let expect = a + b + cin as u64;
                    assert_eq!(sum, expect % 4, "{a}+{b}+{cin}");
                    assert_eq!(carry, expect >= 4, "{a}+{b}+{cin} carry");
                    assert_eq!(a_out, a, "a preserved");
                }
            }
        }
    }

    #[test]
    fn adder_is_correct_for_three_bits() {
        let c = cuccaro_adder(3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let out = c.permute_basis(adder_input(3, a, b, false));
                let (sum, carry, _) = adder_output(3, out);
                assert_eq!(sum, (a + b) % 8);
                assert_eq!(carry, a + b >= 8);
            }
        }
    }

    #[test]
    fn adder_gate_count_is_linear() {
        let g2 = cuccaro_adder(2).len();
        let g4 = cuccaro_adder(4).len();
        let g8 = cuccaro_adder(8).len();
        assert_eq!(g8 - g4, 2 * (g4 - g2), "linear growth in n");
        assert!(g8 < 60, "{g8} gates for 8 bits");
    }

    #[test]
    fn adder_compiles_and_verifies() {
        let c = cuccaro_adder(2); // 6 lines
        let r = qsyn_core::Compiler::new(qsyn_arch::devices::ibmqx5())
            .compile(&c)
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn comparator_flags_a_less_than_b() {
        let n = 2;
        let c = comparator(n);
        assert!(c.is_classical());
        for a in 0..4u64 {
            for b in 0..4u64 {
                let input = adder_input(n, a, b, false);
                let out = c.permute_basis(input);
                let result = out & 1; // carry line is the lsb of the state
                assert_eq!(result == 1, a < b, "{a} < {b}");
                // All other lines restored.
                assert_eq!(out & !1, input & !1, "{a},{b} inputs preserved");
            }
        }
    }

    #[test]
    fn packing_round_trip() {
        for a in 0..4u64 {
            for b in 0..4u64 {
                let state = adder_input(2, a, b, false);
                let (sum, carry, a_out) = adder_output(2, state);
                assert_eq!((sum, carry, a_out), (b, false, a), "identity packing");
            }
        }
    }
}
