//! Textbook quantum algorithm generators whose gate sets fall inside the
//! compiler's exact library — oracle-style workloads for examples, tests,
//! and benchmarks.

use qsyn_circuit::Circuit;
use qsyn_esop::{synthesize_single_target, TruthTable};
use qsyn_gate::Gate;

/// Bernstein-Vazirani: recovers a hidden bit string with one oracle call.
/// Lines `0..n` are the query register, line `n` the |-> ancilla.
/// Measuring the query register (in simulation: the dominant amplitude)
/// yields `secret` exactly.
///
/// # Panics
///
/// Panics if `secret` does not fit in `n` bits or `n == 0`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Circuit {
    assert!(n >= 1, "need at least one query bit");
    assert!(n >= 64 || secret < (1 << n), "secret must fit");
    let mut c = Circuit::new(n + 1).with_name(format!("bv{n}_{secret:b}"));
    // Ancilla to |->; query register to uniform superposition.
    c.push(Gate::x(n));
    c.push(Gate::h(n));
    for q in 0..n {
        c.push(Gate::h(q));
    }
    // Oracle: f(x) = secret . x — one CNOT per set secret bit.
    for q in 0..n {
        if secret >> (n - 1 - q) & 1 == 1 {
            c.push(Gate::cx(q, n));
        }
    }
    // Interference back to the basis.
    for q in 0..n {
        c.push(Gate::h(q));
    }
    // Return the ancilla to |0>.
    c.push(Gate::h(n));
    c.push(Gate::x(n));
    c
}

/// Deutsch-Jozsa over an arbitrary control function: after the circuit,
/// the all-zeros amplitude on the query register is `+-1` for constant `f`
/// and `0` for balanced `f`.
pub fn deutsch_jozsa(f: &TruthTable) -> Circuit {
    let n = f.n_vars();
    let mut c = Circuit::new(n + 1).with_name("deutsch_jozsa");
    c.push(Gate::x(n));
    c.push(Gate::h(n));
    for q in 0..n {
        c.push(Gate::h(q));
    }
    c.append(&synthesize_single_target(f));
    for q in 0..n {
        c.push(Gate::h(q));
    }
    c.push(Gate::h(n));
    c.push(Gate::x(n));
    c
}

/// Grover search for a single marked item over `n` query lines with the
/// given number of iterations; one ancilla line carries the phase oracle.
///
/// # Panics
///
/// Panics if `marked` does not fit in `n` bits.
pub fn grover(n: usize, marked: u64, iterations: usize) -> Circuit {
    assert!(n >= 64 || marked < (1 << n), "marked item must fit");
    let oracle_f = TruthTable::from_fn(n, |x| x == marked);
    let oracle = synthesize_single_target(&oracle_f);
    let mut c = Circuit::new(n + 1).with_name(format!("grover{n}"));
    for q in 0..n {
        c.push(Gate::h(q));
    }
    c.push(Gate::x(n));
    c.push(Gate::h(n));
    for _ in 0..iterations {
        c.append(&oracle);
        // Diffusion.
        for q in 0..n {
            c.push(Gate::h(q));
            c.push(Gate::x(q));
        }
        c.push(Gate::h(n - 1));
        c.push(Gate::mct((0..n - 1).collect(), n - 1));
        c.push(Gate::h(n - 1));
        for q in 0..n {
            c.push(Gate::x(q));
            c.push(Gate::h(q));
        }
    }
    c.push(Gate::h(n));
    c.push(Gate::x(n));
    c
}

/// The optimal Grover iteration count for one marked item among `2^n`.
pub fn grover_optimal_iterations(n: usize) -> usize {
    let space = (1u64 << n) as f64;
    ((std::f64::consts::FRAC_PI_4) * space.sqrt() - 0.5).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_gate::C64;

    fn amplitudes(c: &Circuit) -> Vec<C64> {
        let mut state = vec![C64::ZERO; 1 << c.n_qubits()];
        state[0] = C64::ONE;
        c.apply_to_state(&mut state);
        state
    }

    #[test]
    fn bernstein_vazirani_recovers_the_secret() {
        for secret in [0b101u64, 0b000, 0b111, 0b010] {
            let c = bernstein_vazirani(3, secret);
            let amps = amplitudes(&c);
            // Query register holds the secret deterministically; ancilla
            // back at |0>.
            let idx = (secret << 1) as usize;
            assert!(amps[idx].abs() > 0.999, "secret {secret:03b}");
        }
    }

    #[test]
    fn deutsch_jozsa_separates_constant_from_balanced() {
        let constant = TruthTable::from_fn(3, |_| true);
        let balanced = TruthTable::from_fn(3, |x| x & 1 == 1);
        let zero_amp = |f: &TruthTable| {
            let c = deutsch_jozsa(f);
            amplitudes(&c)[0].abs()
        };
        assert!(zero_amp(&constant) > 0.999, "constant -> certainty");
        assert!(zero_amp(&balanced) < 1e-9, "balanced -> zero");
    }

    #[test]
    fn grover_amplifies_the_marked_item() {
        let n = 3;
        let iters = grover_optimal_iterations(n);
        assert_eq!(iters, 2);
        let c = grover(n, 0b110, iters);
        let amps = amplitudes(&c);
        let p: f64 = amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> 1 == 0b110)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        assert!(p > 0.9, "P(marked) = {p}");
    }

    #[test]
    fn algorithms_compile_and_verify() {
        let bv = bernstein_vazirani(3, 0b011);
        let r = qsyn_core::Compiler::new(qsyn_arch::devices::ibmqx5())
            .compile(&bv)
            .unwrap();
        assert_eq!(r.verified, Some(true));
        let dj = deutsch_jozsa(&TruthTable::from_fn(2, |x| x.count_ones() % 2 == 1));
        let r = qsyn_core::Compiler::new(qsyn_arch::devices::ibmqx4())
            .compile(&dj)
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }

    #[test]
    fn optimal_iterations_grow_with_space() {
        assert_eq!(grover_optimal_iterations(2), 1);
        assert_eq!(grover_optimal_iterations(4), 3);
        assert!(grover_optimal_iterations(8) > grover_optimal_iterations(4));
    }
}
