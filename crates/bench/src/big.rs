//! The 96-qubit generalized-Toffoli benchmarks of paper Tables 7 and 8.
//!
//! Each benchmark `Tn_b` is a cascade of four `T_n` gates placed across the
//! Fig. 7 machine so consecutive gates share at least one qubit: gate `k`
//! (k = 1..4) controls on `q(20(k-1)+1) .. q(20(k-1)+n-1)` and targets
//! `q(20k+5)` — exactly the control/target lists of Table 7.

use qsyn_circuit::Circuit;
use qsyn_gate::Gate;

/// One Table 7/8 benchmark descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BigBenchmark {
    /// Paper row name (`T6_b` .. `T10_b`).
    pub name: &'static str,
    /// Qubits per gate (`n` of `T_n`), i.e. controls + target.
    pub gate_size: usize,
    /// Paper Table 8 unoptimized (T-count, gates, cost).
    pub paper_unopt: (usize, usize, f64),
    /// Paper Table 8 optimized (T-count, gates, cost).
    pub paper_opt: (usize, usize, f64),
    /// Paper Table 8 percent cost decrease.
    pub paper_pct: f64,
}

/// The five benchmarks of Tables 7 and 8, in row order, with the paper's
/// reported compilation results.
pub const BIG_BENCHMARKS: [BigBenchmark; 5] = [
    BigBenchmark {
        name: "T6_b",
        gate_size: 6,
        paper_unopt: (336, 17312, 19268.0),
        paper_opt: (336, 10156, 11359.0),
        paper_pct: 41.05,
    },
    BigBenchmark {
        name: "T7_b",
        gate_size: 7,
        paper_unopt: (448, 20112, 22400.0),
        paper_opt: (448, 12234, 13694.0),
        paper_pct: 38.87,
    },
    BigBenchmark {
        name: "T8_b",
        gate_size: 8,
        paper_unopt: (560, 21264, 23728.0),
        paper_opt: (560, 13134, 14746.0),
        paper_pct: 37.85,
    },
    BigBenchmark {
        name: "T9_b",
        gate_size: 9,
        paper_unopt: (672, 17696, 19784.0),
        paper_opt: (672, 11544, 13002.0),
        paper_pct: 34.28,
    },
    BigBenchmark {
        name: "T10_b",
        gate_size: 10,
        paper_unopt: (784, 17792, 19960.0),
        paper_opt: (784, 9518, 10846.0),
        paper_pct: 45.66,
    },
];

impl BigBenchmark {
    /// The Table 7 gate list: four `T_n` gates on the 96-qubit machine.
    ///
    /// Gate `k` (k = 0..3) has controls `q(20k+1) .. q(20k+n-1)` and target
    /// `q(20k+25)` — i.e. targets q25, q45, q65, q85 — so each gate shares
    /// its target region with the next gate's control block.
    pub fn circuit(&self) -> Circuit {
        let mut c = Circuit::new(96).with_name(self.name);
        let m = self.gate_size - 1; // controls per gate
        for k in 0..4usize {
            let base = 20 * k;
            let controls: Vec<usize> = (1..=m).map(|i| base + i).collect();
            let target = base + 25;
            c.push(Gate::mct(controls, target));
        }
        c
    }

    /// Expected T-count after decomposition with full dirty-ancilla chains:
    /// `4 gates x 4(m-2) Toffolis x 7 T` (matches the paper's Table 8
    /// column exactly).
    pub fn expected_t_count(&self) -> usize {
        let m = self.gate_size - 1;
        4 * (4 * (m - 2)) * 7
    }
}

/// Looks a Table 7/8 benchmark up by name.
pub fn big_by_name(name: &str) -> Option<BigBenchmark> {
    BIG_BENCHMARKS.iter().copied().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_control_and_target_lists() {
        let t6 = big_by_name("T6_b").unwrap().circuit();
        assert_eq!(t6.len(), 4);
        // First gate: controls q1..q5, target q25.
        assert_eq!(
            t6.gates()[0],
            Gate::mct(vec![1, 2, 3, 4, 5], 25)
        );
        // Second gate: controls q21..q25, target q45 — shares q25.
        assert_eq!(
            t6.gates()[1],
            Gate::mct(vec![21, 22, 23, 24, 25], 45)
        );
        // Fourth gate: controls q61..q65, target q85.
        assert_eq!(
            t6.gates()[3],
            Gate::mct(vec![61, 62, 63, 64, 65], 85)
        );
    }

    #[test]
    fn consecutive_gates_share_a_qubit() {
        for b in BIG_BENCHMARKS {
            let c = b.circuit();
            for w in c.gates().windows(2) {
                assert!(w[0].overlaps(&w[1]), "{}: gates must chain", b.name);
            }
        }
    }

    #[test]
    fn t10_controls_match_table7() {
        let t10 = big_by_name("T10_b").unwrap().circuit();
        assert_eq!(
            t10.gates()[2],
            Gate::mct(vec![41, 42, 43, 44, 45, 46, 47, 48, 49], 65)
        );
    }

    #[test]
    fn expected_t_counts_match_table8() {
        for b in BIG_BENCHMARKS {
            assert_eq!(b.expected_t_count(), b.paper_unopt.0, "{}", b.name);
        }
    }

    #[test]
    fn circuits_are_classical_96_wide() {
        for b in BIG_BENCHMARKS {
            let c = b.circuit();
            assert_eq!(c.n_qubits(), 96);
            assert!(c.is_classical());
        }
    }
}
