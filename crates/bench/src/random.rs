//! Seeded random workload generation for stress testing and benchmarking
//! beyond the paper's fixed suites.

use qsyn_circuit::Circuit;
use qsyn_gate::{Gate, SINGLE_OPS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random classical reversible circuit (NOT / CNOT / Toffoli /
/// generalized Toffoli) over `n_lines` lines.
///
/// # Panics
///
/// Panics if `n_lines < 3` (Toffoli gates need three lines).
pub fn random_classical(n_lines: usize, n_gates: usize, seed: u64) -> Circuit {
    assert!(n_lines >= 3, "need at least 3 lines");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n_lines).with_name(format!("rand_classical_{seed}"));
    for _ in 0..n_gates {
        let kind = rng.gen_range(0..100u32);
        if kind < 20 {
            c.push(Gate::x(rng.gen_range(0..n_lines)));
        } else if kind < 60 {
            let (a, b) = distinct_pair(&mut rng, n_lines);
            c.push(Gate::cx(a, b));
        } else if kind < 90 || n_lines < 5 {
            let (a, b, t) = distinct_triple(&mut rng, n_lines);
            c.push(Gate::toffoli(a, b, t));
        } else {
            // Occasional wider MCT, at most n_lines - 2 controls so a
            // borrowed line always exists.
            let max_controls = (n_lines - 2).min(5);
            let m = rng.gen_range(3..=max_controls.max(3));
            let mut lines = sample_distinct(&mut rng, n_lines, m + 1);
            let target = lines.pop().expect("sampled m+1 lines");
            c.push(Gate::mct(lines, target));
        }
    }
    c
}

/// Generates a random technology-ready Clifford+T circuit (one-qubit
/// library gates and CNOTs).
///
/// # Panics
///
/// Panics if `n_lines < 2`.
pub fn random_clifford_t(n_lines: usize, n_gates: usize, seed: u64) -> Circuit {
    assert!(n_lines >= 2, "need at least 2 lines");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n_lines).with_name(format!("rand_cliffordt_{seed}"));
    for _ in 0..n_gates {
        if rng.gen_bool(0.6) {
            let op = SINGLE_OPS[rng.gen_range(0..SINGLE_OPS.len())];
            c.push(Gate::single(op, rng.gen_range(0..n_lines)));
        } else {
            let (a, b) = distinct_pair(&mut rng, n_lines);
            c.push(Gate::cx(a, b));
        }
    }
    c
}

fn distinct_pair(rng: &mut StdRng, n: usize) -> (usize, usize) {
    let a = rng.gen_range(0..n);
    let mut b = rng.gen_range(0..n - 1);
    if b >= a {
        b += 1;
    }
    (a, b)
}

fn distinct_triple(rng: &mut StdRng, n: usize) -> (usize, usize, usize) {
    let v = sample_distinct(rng, n, 3);
    (v[0], v[1], v[2])
}

fn sample_distinct(rng: &mut StdRng, n: usize, k: usize) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classical_generator_is_classical_and_seeded() {
        let a = random_classical(6, 40, 7);
        let b = random_classical(6, 40, 7);
        assert_eq!(a.gates(), b.gates(), "same seed, same circuit");
        assert!(a.is_classical());
        assert_eq!(a.len(), 40);
        let c = random_classical(6, 40, 8);
        assert_ne!(a.gates(), c.gates(), "different seed, different circuit");
    }

    #[test]
    fn clifford_t_generator_is_technology_ready() {
        let c = random_clifford_t(4, 100, 42);
        assert!(c.is_technology_ready());
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn mct_gates_always_leave_a_borrowable_line() {
        for seed in 0..20 {
            let c = random_classical(6, 30, seed);
            for g in c.gates() {
                if let Gate::Mct { controls, .. } = g {
                    assert!(controls.len() + 1 < c.n_qubits());
                }
            }
        }
    }

    #[test]
    fn sample_distinct_yields_unique_lines() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let v = sample_distinct(&mut rng, 8, 5);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5);
        }
    }
}
