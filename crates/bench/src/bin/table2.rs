//! Regenerates paper Table 2: IBM Q device details and coupling
//! complexity. This reproduction is exact — the metric is a deterministic
//! function of the published coupling maps.

use qsyn_bench::report::{render_table2, run_table2};

fn main() {
    println!("Table 2: IBM Q device details (coupling complexity)\n");
    print!("{}", render_table2(&run_table2()));
    println!("\nqc96 (paper Fig. 7 reconstruction): {}", qsyn_arch::devices::qc96());
}
