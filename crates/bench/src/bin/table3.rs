//! Regenerates paper Table 3: the "Optimal Single-target Gates" suite
//! mapped to the five IBM devices, unoptimized and optimized, with the
//! technology-independent reference forms. Pass `--no-verify` to skip the
//! built-in QMDD equivalence checks.

use qsyn_bench::report::{render_table3, render_table4, run_table3};

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    println!(
        "Table 3: single-target gates on IBM devices (verify = {verify})\n"
    );
    let rows = run_table3(verify);
    print!("{}", render_table3(&rows));
    println!("\nTable 4: percent cost decrease after optimization\n");
    print!("{}", render_table4(&rows));
}
