//! Regenerates paper Table 3: the "Optimal Single-target Gates" suite
//! mapped to the five IBM devices, unoptimized and optimized, with the
//! technology-independent reference forms. Pass `--no-verify` to skip the
//! built-in QMDD equivalence checks and `--jobs N` to fan the sweep across
//! N worker threads (default: all CPUs). Resource-governance flags
//! (`--node-budget`, `--deadline`, `--strict-verify`, `--inject-fault`)
//! are documented in docs/ROBUSTNESS.md.

use qsyn_bench::report::{count_failed, render_table3, render_table4, run_table3_sweep, SweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match SweepConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "Table 3: single-target gates on IBM devices (verify = {}, jobs = {})\n",
        cfg.verify, cfg.jobs
    );
    let rows = run_table3_sweep(&cfg);
    print!("{}", render_table3(&rows));
    println!("\nTable 4: percent cost decrease after optimization\n");
    print!("{}", render_table4(&rows));
    println!(
        "\nfailed jobs: {}",
        count_failed(rows.iter().flat_map(|r| &r.cells))
    );
}
