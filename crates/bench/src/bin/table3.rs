//! Regenerates paper Table 3: the "Optimal Single-target Gates" suite
//! mapped to the five IBM devices, unoptimized and optimized, with the
//! technology-independent reference forms. Pass `--no-verify` to skip the
//! built-in QMDD equivalence checks and `--jobs N` to fan the sweep across
//! N worker threads (default: all CPUs).

use qsyn_bench::par::jobs_from_args;
use qsyn_bench::report::{render_table3, render_table4, run_table3_jobs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let Some(jobs) = jobs_from_args(&args) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    println!(
        "Table 3: single-target gates on IBM devices (verify = {verify}, jobs = {jobs})\n"
    );
    let rows = run_table3_jobs(verify, None, jobs);
    print!("{}", render_table3(&rows));
    println!("\nTable 4: percent cost decrease after optimization\n");
    print!("{}", render_table4(&rows));
}
