//! Run the Table 5-style experiment over a user-supplied directory of
//! circuit files (`.real`, `.qc`, `.qasm`, `.pla`) — point the harness at
//! your own benchmark suite.
//!
//! ```text
//! cargo run --release --bin suite -- <dir> [device ...]
//! ```

use qsyn_arch::{devices, CostModel, TransmonCost};
use qsyn_circuit::Circuit;
use qsyn_core::{CompileError, Compiler};
use std::path::Path;

fn load(path: &Path) -> Result<Circuit, String> {
    let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit")
        .to_string();
    let c = match ext {
        "real" => Circuit::from_real(&src).map_err(|e| e.to_string())?,
        "qc" => Circuit::from_qc(&src).map_err(|e| e.to_string())?,
        "pla" => qsyn_esop::parse_pla(&src)?.synthesize(),
        "qasm" => Circuit::from_qasm(&src).map_err(|e| e.to_string())?,
        other => return Err(format!("unsupported extension `{other}`")),
    };
    Ok(c.with_name(name))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else {
        eprintln!("usage: suite <dir> [device ...]");
        std::process::exit(2);
    };
    let device_names: Vec<String> = args.collect();
    let devs: Vec<_> = if device_names.is_empty() {
        devices::ibm_devices()
    } else {
        device_names
            .iter()
            .map(|n| devices::device_by_name(n).unwrap_or_else(|| panic!("unknown device {n}")))
            .collect()
    };

    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("real" | "qc" | "qasm" | "pla")
            )
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no circuit files in {dir}");
        std::process::exit(1);
    }

    let cost = TransmonCost::default();
    print!("| circuit | qubits | gates |");
    for d in &devs {
        print!(" {} (T/g/cost -> T/g/cost, %dec) |", d.name());
    }
    println!();
    println!("|{}", "---|".repeat(3 + devs.len()));

    for path in &paths {
        let circuit = match load(path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                continue;
            }
        };
        print!(
            "| {} | {} | {} |",
            circuit.name().unwrap_or("?"),
            circuit.n_qubits(),
            circuit.len()
        );
        for d in &devs {
            match Compiler::new(d.clone()).compile(&circuit) {
                Ok(r) => {
                    let (u, o) = (r.unoptimized.stats(), r.optimized.stats());
                    assert_eq!(r.verified, Some(true), "verification failed");
                    print!(
                        " {}/{}/{:.1} -> {}/{}/{:.1}, {:.1}% |",
                        u.t_count,
                        u.volume,
                        cost.cost(&u),
                        o.t_count,
                        o.volume,
                        cost.cost(&o),
                        r.percent_cost_decrease(&cost)
                    );
                }
                Err(CompileError::TooWide { .. }) | Err(CompileError::NoAncilla { .. }) => {
                    print!(" N/A |");
                }
                Err(e) => panic!("{}: {e}", path.display()),
            }
        }
        println!();
    }
}
