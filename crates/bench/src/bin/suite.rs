//! Run the Table 5-style experiment over a user-supplied directory of
//! circuit files (`.real`, `.qc`, `.qasm`, `.pla`) — point the harness at
//! your own benchmark suite.
//!
//! ```text
//! cargo run --release --bin suite -- <dir> [--jobs N] [device ...]
//! ```
//!
//! `--jobs N` fans the (circuit, device) compilations across N worker
//! threads (default: all CPUs); the table is printed in directory order
//! regardless of which job finished first.

use qsyn_arch::{devices, CostModel, TransmonCost};
use qsyn_bench::par::{jobs_from_args, par_map};
use qsyn_circuit::Circuit;
use qsyn_core::{CompileError, Compiler};
use std::path::Path;

fn load(path: &Path) -> Result<Circuit, String> {
    let src = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit")
        .to_string();
    let c = match ext {
        "real" => Circuit::from_real(&src).map_err(|e| e.to_string())?,
        "qc" => Circuit::from_qc(&src).map_err(|e| e.to_string())?,
        "pla" => qsyn_esop::parse_pla(&src)?.synthesize(),
        "qasm" => Circuit::from_qasm(&src).map_err(|e| e.to_string())?,
        other => return Err(format!("unsupported extension `{other}`")),
    };
    Ok(c.with_name(name))
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(jobs) = jobs_from_args(&raw) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    // Drop the --jobs flag (and its value) before positional parsing.
    let mut positional: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &raw {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--jobs" {
            skip_next = true;
        } else if !a.starts_with("--jobs=") {
            positional.push(a.clone());
        }
    }
    let mut positional = positional.into_iter();
    let Some(dir) = positional.next() else {
        eprintln!("usage: suite <dir> [--jobs N] [device ...]");
        std::process::exit(2);
    };
    let device_names: Vec<String> = positional.collect();
    let devs: Vec<_> = if device_names.is_empty() {
        devices::ibm_devices()
    } else {
        device_names
            .iter()
            .map(|n| devices::device_by_name(n).unwrap_or_else(|| panic!("unknown device {n}")))
            .collect()
    };

    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{dir}: {e}"))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            matches!(
                p.extension().and_then(|e| e.to_str()),
                Some("real" | "qc" | "qasm" | "pla")
            )
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        eprintln!("no circuit files in {dir}");
        std::process::exit(1);
    }

    let circuits: Vec<Circuit> = paths
        .iter()
        .filter_map(|path| match load(path) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("skipping {}: {e}", path.display());
                None
            }
        })
        .collect();

    let cost = TransmonCost::default();
    // One job per (circuit, device) pair, row-major so output order is the
    // directory order no matter how the pool schedules them.
    let pairs: Vec<(usize, usize)> = (0..circuits.len())
        .flat_map(|c| (0..devs.len()).map(move |d| (c, d)))
        .collect();
    let cells: Vec<String> = par_map(&pairs, jobs, |_, &(c, d)| {
        let circuit = &circuits[c];
        match Compiler::new(devs[d].clone()).compile(circuit) {
            Ok(r) => {
                let (u, o) = (r.unoptimized.stats(), r.optimized.stats());
                assert_eq!(r.verified, Some(true), "verification failed");
                format!(
                    " {}/{}/{:.1} -> {}/{}/{:.1}, {:.1}% |",
                    u.t_count,
                    u.volume,
                    cost.cost(&u),
                    o.t_count,
                    o.volume,
                    cost.cost(&o),
                    r.percent_cost_decrease(&cost)
                )
            }
            Err(CompileError::TooWide { .. }) | Err(CompileError::NoAncilla { .. }) => {
                " N/A |".to_string()
            }
            Err(e) => panic!("{:?}: {e}", circuit.name()),
        }
    });

    print!("| circuit | qubits | gates |");
    for d in &devs {
        print!(" {} (T/g/cost -> T/g/cost, %dec) |", d.name());
    }
    println!();
    println!("|{}", "---|".repeat(3 + devs.len()));
    for (c, circuit) in circuits.iter().enumerate() {
        print!(
            "| {} | {} | {} |",
            circuit.name().unwrap_or("?"),
            circuit.n_qubits(),
            circuit.len()
        );
        for d in 0..devs.len() {
            print!("{}", cells[c * devs.len() + d]);
        }
        println!();
    }
}
