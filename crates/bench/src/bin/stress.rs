//! Randomized stress run: compile many seeded random circuits onto the
//! whole device library, QMDD-verify every output, and summarize. Doubles
//! as a fuzzer for the pipeline — any verification failure or unexpected
//! error aborts loudly.
//!
//! ```text
//! cargo run --release --bin stress [-- <count-per-device>]
//! ```

use qsyn_arch::{devices, TransmonCost};
use qsyn_bench::random::random_classical;
use qsyn_core::{CompileError, Compiler};

fn main() {
    let count: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(25);
    let cost = TransmonCost::default();
    let mut compiled = 0usize;
    let mut na = 0usize;
    let mut improved = 0usize;
    let mut expansion_sum = 0.0f64;

    for device in devices::ibm_devices() {
        let lines = device.n_qubits().min(6);
        for seed in 0..count {
            let circuit = random_classical(lines, 12, seed * 31 + 7);
            match Compiler::new(device.clone()).compile(&circuit) {
                Ok(r) => {
                    assert_eq!(
                        r.verified,
                        Some(true),
                        "VERIFICATION FAILED: seed {seed} on {}",
                        device.name()
                    );
                    compiled += 1;
                    expansion_sum += r.optimized.len() as f64 / circuit.len() as f64;
                    if r.percent_cost_decrease(&cost) > 0.0 {
                        improved += 1;
                    }
                }
                Err(CompileError::NoAncilla { .. }) | Err(CompileError::TooWide { .. }) => {
                    na += 1;
                }
                Err(e) => panic!("unexpected error: seed {seed} on {}: {e}", device.name()),
            }
        }
    }

    println!("stress run: {} circuits per device x {} devices", count, 5);
    println!("  compiled + verified : {compiled}");
    println!("  N/A (legitimate)    : {na}");
    println!(
        "  improved by opt     : {improved} ({:.0}%)",
        improved as f64 / compiled as f64 * 100.0
    );
    println!(
        "  mean expansion      : x{:.1}",
        expansion_sum / compiled as f64
    );
    println!("all outputs QMDD-verified, no unexpected failures");
}
