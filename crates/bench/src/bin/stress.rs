//! Randomized stress run: compile many seeded random circuits onto the
//! whole device library, QMDD-verify every output, and summarize. Doubles
//! as a fuzzer for the pipeline — any verification failure or unexpected
//! error aborts loudly.
//!
//! ```text
//! cargo run --release --bin stress [-- <count-per-device> [--jobs N]]
//! ```
//!
//! `--jobs N` fans the (device, seed) compilations across N worker threads
//! (default: all CPUs). The aggregate summary is deterministic for every N
//! because each job is an independent seeded compilation.

use qsyn_arch::{devices, TransmonCost};
use qsyn_bench::par::{jobs_from_args, par_map};
use qsyn_bench::random::random_classical;
use qsyn_core::{CompileError, Compiler};

enum Outcome {
    Compiled { expansion: f64, improved: bool },
    NotApplicable,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(jobs) = jobs_from_args(&args) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    // First positional arg (skipping --jobs and its value) is the count.
    let mut positional = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
        } else if a == "--jobs" {
            skip_next = true;
        } else if !a.starts_with("--") {
            positional.push(a.clone());
        }
    }
    let count: u64 = positional.first().and_then(|a| a.parse().ok()).unwrap_or(25);
    let cost = TransmonCost::default();

    let cases: Vec<(qsyn_arch::Device, u64)> = devices::ibm_devices()
        .into_iter()
        .flat_map(|d| (0..count).map(move |seed| (d.clone(), seed)))
        .collect();

    let outcomes = par_map(&cases, jobs, |_, (device, seed)| {
        let lines = device.n_qubits().min(6);
        let circuit = random_classical(lines, 12, seed * 31 + 7);
        match Compiler::new(device.clone()).compile(&circuit) {
            Ok(r) => {
                assert_eq!(
                    r.verified,
                    Some(true),
                    "VERIFICATION FAILED: seed {seed} on {}",
                    device.name()
                );
                Outcome::Compiled {
                    expansion: r.optimized.len() as f64 / circuit.len() as f64,
                    improved: r.percent_cost_decrease(&cost) > 0.0,
                }
            }
            Err(CompileError::NoAncilla { .. }) | Err(CompileError::TooWide { .. }) => {
                Outcome::NotApplicable
            }
            Err(e) => panic!("unexpected error: seed {seed} on {}: {e}", device.name()),
        }
    });

    let mut compiled = 0usize;
    let mut na = 0usize;
    let mut improved = 0usize;
    let mut expansion_sum = 0.0f64;
    for o in &outcomes {
        match o {
            Outcome::Compiled {
                expansion,
                improved: imp,
            } => {
                compiled += 1;
                expansion_sum += expansion;
                if *imp {
                    improved += 1;
                }
            }
            Outcome::NotApplicable => na += 1,
        }
    }

    println!(
        "stress run: {} circuits per device x {} devices (jobs = {jobs})",
        count, 5
    );
    println!("  compiled + verified : {compiled}");
    println!("  N/A (legitimate)    : {na}");
    println!(
        "  improved by opt     : {improved} ({:.0}%)",
        improved as f64 / compiled as f64 * 100.0
    );
    println!(
        "  mean expansion      : x{:.1}",
        expansion_sum / compiled as f64
    );
    println!("all outputs QMDD-verified, no unexpected failures");
}
