//! Quality ablations for the design choices DESIGN.md calls out: how much
//! Eqn. 2 cost each optimization family recovers, what greedy placement
//! buys over the paper's identity assignment, and what proximity-aware
//! ancilla selection saves during Barenco decomposition.
//!
//! ```text
//! cargo run --release --bin ablation
//! ```

use qsyn_arch::{devices, CostModel, TransmonCost};
use qsyn_bench::big::BIG_BENCHMARKS;
use qsyn_bench::revlib::REVLIB_BENCHMARKS;
use qsyn_core::{
    decompose_circuit, decompose_circuit_for, optimize_with, route_circuit, Compiler,
    DecomposeStrategy, OptimizeConfig, PlacementStrategy, SwapStrategy, Verification,
};

fn main() {
    let cost = TransmonCost::default();

    println!("## Ablation 1: optimization families (paper steps 5-6)\n");
    println!("| benchmark | device | unopt cost | cancel-only | rewrite-only | both |");
    println!("|---|---|---|---|---|---|");
    for b in REVLIB_BENCHMARKS {
        let device = devices::ibmqx5();
        let mapped = Compiler::new(device.clone())
            .with_verification(Verification::None)
            .with_optimization(false)
            .compile(&b.circuit())
            .unwrap()
            .unoptimized;
        let run = |cancel, rewrite| {
            let cfg = OptimizeConfig {
                cancel_identities: cancel,
                rewrite_identities: rewrite,
            };
            cost.circuit_cost(&optimize_with(&mapped, Some(&device), &cost, cfg))
        };
        println!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.2} |",
            b.name,
            device.name(),
            cost.circuit_cost(&mapped),
            run(true, false),
            run(false, true),
            run(true, true),
        );
    }

    println!("\n## Ablation 2: initial placement (identity vs. greedy vs. annealed)\n");
    println!("| benchmark | device | identity | greedy | annealed | best delta % |");
    println!("|---|---|---|---|---|---|");
    for b in REVLIB_BENCHMARKS {
        for device in [devices::ibmqx3(), devices::ibmqx5()] {
            let compile = |strategy| {
                Compiler::new(device.clone())
                    .with_placement(strategy)
                    .with_verification(Verification::None)
                    .compile(&b.circuit())
                    .ok()
                    .map(|r| cost.circuit_cost(&r.optimized))
            };
            if let (Some(ident), Some(greedy), Some(annealed)) = (
                compile(PlacementStrategy::Identity),
                compile(PlacementStrategy::Greedy),
                compile(PlacementStrategy::Annealed),
            ) {
                let best = greedy.min(annealed);
                println!(
                    "| {} | {} | {:.2} | {:.2} | {:.2} | {:+.1} |",
                    b.name,
                    device.name(),
                    ident,
                    greedy,
                    annealed,
                    (ident - best) / ident * 100.0
                );
            }
        }
    }

    println!("\n## Ablation 3: MCT decomposition (exact vs. relative-phase chains)\n");
    println!("| benchmark | device | exact T / cost | relative-phase T / cost |");
    println!("|---|---|---|---|");
    let d16 = devices::ibmqx5();
    for b in REVLIB_BENCHMARKS {
        let run = |strategy| {
            Compiler::new(d16.clone())
                .with_decompose_strategy(strategy)
                .compile(&b.circuit())
                .map(|r| {
                    assert_eq!(r.verified, Some(true));
                    (r.optimized.stats().t_count, cost.circuit_cost(&r.optimized))
                })
                .ok()
        };
        if let (Some((te, ce)), Some((tr, cr))) = (
            run(DecomposeStrategy::Exact),
            run(DecomposeStrategy::RelativePhase),
        ) {
            println!(
                "| {} | {} | {te} / {ce:.2} | {tr} / {cr:.2} |",
                b.name,
                d16.name()
            );
        }
    }

    println!("\n## Ablation 4: SWAP strategy (CTR swap-back vs. persistent layout)\n");
    println!("| benchmark | device | CTR cost | persistent cost | delta % |");
    println!("|---|---|---|---|---|");
    for b in REVLIB_BENCHMARKS {
        for device in [devices::ibmqx3(), devices::ibmqx5()] {
            let run = |swaps| {
                Compiler::new(device.clone())
                    .with_swap_strategy(swaps)
                    .compile(&b.circuit())
                    .map(|r| {
                        assert_eq!(r.verified, Some(true));
                        cost.circuit_cost(&r.optimized)
                    })
                    .ok()
            };
            if let (Some(ctr), Some(persist)) = (
                run(SwapStrategy::ReturnControl),
                run(SwapStrategy::PersistentLayout),
            ) {
                println!(
                    "| {} | {} | {ctr:.2} | {persist:.2} | {:+.1} |",
                    b.name,
                    device.name(),
                    (ctr - persist) / ctr * 100.0
                );
            }
        }
    }

    println!("\n## Ablation 5: ancilla selection (index vs. coupling distance)\n");
    println!("| benchmark | routed cost, index order | routed cost, distance order | delta % |");
    println!("|---|---|---|---|");
    let device = devices::qc96();
    for b in BIG_BENCHMARKS {
        let by_index = decompose_circuit(&b.circuit()).unwrap();
        let by_dist = decompose_circuit_for(&b.circuit(), Some(&device)).unwrap();
        let ci = cost.circuit_cost(&route_circuit(&by_index, &device).unwrap());
        let cd = cost.circuit_cost(&route_circuit(&by_dist, &device).unwrap());
        println!(
            "| {} | {:.0} | {:.0} | {:+.1} |",
            b.name,
            ci,
            cd,
            (ci - cd) / ci * 100.0
        );
    }
}
