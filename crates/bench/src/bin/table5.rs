//! Regenerates paper Table 5: RevLib Toffoli cascades mapped to the five
//! IBM devices. Pass `--no-verify` to skip QMDD checks.

use qsyn_bench::report::{render_table5, render_table6, run_table5};

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    println!("Table 5: RevLib Toffoli cascades on IBM devices (verify = {verify})\n");
    let rows = run_table5(verify);
    print!("{}", render_table5(&rows));
    println!("\nTable 6: percent cost decrease after optimization\n");
    print!("{}", render_table6(&rows));
}
