//! Regenerates paper Table 5: RevLib Toffoli cascades mapped to the five
//! IBM devices. Pass `--no-verify` to skip QMDD checks and `--jobs N` to
//! fan the sweep across N worker threads (default: all CPUs).

use qsyn_bench::par::jobs_from_args;
use qsyn_bench::report::{render_table5, render_table6, run_table5_jobs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let Some(jobs) = jobs_from_args(&args) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    println!(
        "Table 5: RevLib Toffoli cascades on IBM devices (verify = {verify}, jobs = {jobs})\n"
    );
    let rows = run_table5_jobs(verify, None, jobs);
    print!("{}", render_table5(&rows));
    println!("\nTable 6: percent cost decrease after optimization\n");
    print!("{}", render_table6(&rows));
}
