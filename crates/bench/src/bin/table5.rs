//! Regenerates paper Table 5: RevLib Toffoli cascades mapped to the five
//! IBM devices. Pass `--no-verify` to skip QMDD checks and `--jobs N` to
//! fan the sweep across N worker threads (default: all CPUs). Resource
//! governance flags (`--node-budget`, `--deadline`, `--strict-verify`,
//! `--inject-fault`) are documented in docs/ROBUSTNESS.md.

use qsyn_bench::report::{count_failed, render_table5, render_table6, run_table5_sweep, SweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match SweepConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "Table 5: RevLib Toffoli cascades on IBM devices (verify = {}, jobs = {})\n",
        cfg.verify, cfg.jobs
    );
    let rows = run_table5_sweep(&cfg);
    print!("{}", render_table5(&rows));
    println!("\nTable 6: percent cost decrease after optimization\n");
    print!("{}", render_table6(&rows));
    println!(
        "\nfailed jobs: {}",
        count_failed(rows.iter().flat_map(|r| &r.cells))
    );
}
