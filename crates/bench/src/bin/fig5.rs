//! Walks the paper's Fig. 5 example: rerouting a CNOT with control q5 and
//! target q10 on the 16-qubit ibmqx3 machine via two SWAPs (q5<->q12, then
//! q12<->q11), executing on the q11 -> q10 coupling, and swapping back.

use qsyn_arch::devices;
use qsyn_circuit::Circuit;
use qsyn_core::{ctr_route, emit_cnot};
use qsyn_gate::Gate;
use qsyn_qmdd::equivalent_miter;

fn main() {
    let device = devices::ibmqx3();
    let (control, target) = (5usize, 10usize);
    println!("Fig. 5: CTR on {} for CNOT q{control} -> q{target}\n", device.name());

    let route = ctr_route(&device, control, target).expect("ibmqx3 is connected");
    println!("SWAP path found by the connectivity tree: {:?}", route.path);
    println!("effective control after swaps: q{}", route.effective_control);
    assert_eq!(route.path, vec![5, 12, 11], "must match the paper's example");

    let mut mapped = Circuit::new(device.n_qubits());
    emit_cnot(&device, control, target, &mut mapped).expect("routable");
    println!("\nemitted technology-dependent sequence ({} gates):", mapped.len());
    print!("{mapped}");

    let mut spec = Circuit::new(device.n_qubits());
    spec.push(Gate::cx(control, target));
    let report = equivalent_miter(&spec, &mapped);
    println!("QMDD equivalence with the original CNOT: {}", report.equivalent);
    assert!(report.equivalent);
}
