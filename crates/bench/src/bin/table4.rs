//! Regenerates paper Table 4: percent cost decrease of the Table 3
//! mappings after optimization. Pass `--no-verify` to skip QMDD checks.

use qsyn_bench::report::{render_table4, run_table3};

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    println!("Table 4: percent cost decrease (single-target gates)\n");
    print!("{}", render_table4(&run_table3(verify)));
}
