//! Runs the complete evaluation of the paper (Tables 2-8) and prints a
//! markdown report suitable for EXPERIMENTS.md:
//!
//! ```text
//! cargo run --release --bin experiments > report.md
//! ```
//!
//! Pass `--no-verify` to skip the QMDD equivalence checks (they are part of
//! the paper's flow and on by default). Pass `--trace FILE` to stream one
//! JSON line per compiler pass of every benchmark mapping to FILE (each
//! line carries a job id so interleaved parallel streams stay parseable).
//! Pass `--jobs N` to fan the (circuit, device) jobs across N worker
//! threads (default: all CPUs); results are identical for every N.

use qsyn_bench::par::jobs_from_args;
use qsyn_bench::report::*;
use qsyn_trace::{JsonlSink, TraceSink};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let Some(jobs) = jobs_from_args(&args) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    let trace: Option<Arc<dyn TraceSink>> = match args.iter().position(|a| a == "--trace") {
        None => None,
        Some(i) => {
            let Some(path) = args.get(i + 1) else {
                eprintln!("error: flag --trace requires a value");
                std::process::exit(2);
            };
            match JsonlSink::to_file(path) {
                Ok(sink) => Some(Arc::new(sink)),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let t0 = Instant::now();

    println!("# qsyn experiment report\n");
    println!(
        "QMDD verification of every compiled output: **{}**\n",
        if verify { "on" } else { "off" }
    );
    println!("Sweep worker threads: **{jobs}**\n");

    println!("## Table 2 — device coupling complexity (exact)\n");
    print!("{}", render_table2(&run_table2()));

    println!("\n## Table 3 — single-target gates mapped to IBM devices\n");
    let t3 = Instant::now();
    let rows3 = run_table3_jobs(verify, trace.clone(), jobs);
    print!("{}", render_table3(&rows3));
    println!("\n## Table 4 — percent cost decrease (single-target gates)\n");
    print!("{}", render_table4(&rows3));
    let t3 = t3.elapsed().as_secs_f64();

    println!("\n## Table 5 — RevLib Toffoli cascades mapped to IBM devices\n");
    let t5 = Instant::now();
    let rows5 = run_table5_jobs(verify, trace.clone(), jobs);
    print!("{}", render_table5(&rows5));
    println!("\n## Table 6 — percent cost decrease (RevLib cascades)\n");
    print!("{}", render_table6(&rows5));
    let t5 = t5.elapsed().as_secs_f64();

    println!("\n## Table 7 — 96-qubit benchmark definitions\n");
    print!("{}", render_table7());

    println!("\n## Table 8 — 96-qubit compilation results\n");
    let t8 = Instant::now();
    let rows8 = run_table8_jobs(verify, trace.clone(), jobs);
    print!("{}", render_table8(&rows8));
    let t8 = t8.elapsed().as_secs_f64();

    println!("\n## Runtime\n");
    println!("| Experiment | Wall time (s) |");
    println!("|---|---|");
    println!("| Tables 3+4 (24 functions x 5 devices) | {t3:.2} |");
    println!("| Tables 5+6 (5 cascades x 5 devices) | {t5:.2} |");
    println!("| Table 8 (5 cascades on qc96) | {t8:.2} |");
    println!("| Total | {:.2} |", t0.elapsed().as_secs_f64());
    if let Some(sink) = trace {
        sink.flush();
    }
}
