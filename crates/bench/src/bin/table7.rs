//! Regenerates paper Table 7: the 96-qubit benchmark definitions
//! (T6_b .. T10_b control and target lists). Exact reproduction.

use qsyn_bench::report::render_table7;

fn main() {
    println!("Table 7: 96-qubit QC benchmark details\n");
    print!("{}", render_table7());
}
