//! Regenerates paper Table 6: percent cost decrease of the Table 5
//! mappings after optimization. Pass `--no-verify` to skip QMDD checks.

use qsyn_bench::report::{render_table6, run_table5};

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    println!("Table 6: percent cost decrease (RevLib cascades)\n");
    print!("{}", render_table6(&run_table5(verify)));
}
