//! Scalability study (the motivation behind the paper's 96-qubit
//! experiment): synthesis wall time and output size as the register width
//! and the gate count grow, on the qc96 machine.
//!
//! ```text
//! cargo run --release --bin scaling [-- <max-width>]
//! ```

use qsyn_arch::devices;
use qsyn_bench::random::random_classical;
use qsyn_core::{Compiler, Verification};
use std::time::Instant;

fn main() {
    let max_width: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(96)
        .clamp(8, 96);
    let device = devices::qc96();

    println!("## Width scaling: 24 random NCT gates on w lines of qc96\n");
    println!("| width | mapped gates | synth seconds |");
    println!("|---|---|---|");
    let mut w = 8usize;
    while w <= max_width {
        let circuit = random_classical(w, 24, 42);
        let start = Instant::now();
        let r = Compiler::new(device.clone())
            .with_verification(Verification::None)
            .compile(&circuit)
            .expect("qc96 hosts these");
        println!(
            "| {w} | {} | {:.3} |",
            r.optimized.len(),
            start.elapsed().as_secs_f64()
        );
        w *= 2;
    }

    println!("\n## Size scaling: g random NCT gates on 24 lines of qc96\n");
    println!("| input gates | mapped gates | synth seconds |");
    println!("|---|---|---|");
    for g in [8usize, 16, 32, 64, 128] {
        let circuit = random_classical(24, g, 7);
        let start = Instant::now();
        let r = Compiler::new(device.clone())
            .with_verification(Verification::None)
            .compile(&circuit)
            .expect("qc96 hosts these");
        println!(
            "| {g} | {} | {:.3} |",
            r.optimized.len(),
            start.elapsed().as_secs_f64()
        );
    }

    println!("\nThe paper reports ~10^-2 s typical and 6.5 s worst case on a");
    println!("2016 laptop (Python); the table above is this implementation's");
    println!("equivalent scaling measurement.");
}
