//! Regenerates paper Table 8: the Table 7 benchmarks compiled for the
//! 96-qubit Fig. 7 machine, unoptimized and optimized, with percent cost
//! decrease and QMDD verification. Pass `--no-verify` to skip the (wide)
//! miter equivalence checks and `--jobs N` to compile the benchmarks on N
//! worker threads (default: all CPUs).

use qsyn_bench::par::jobs_from_args;
use qsyn_bench::report::{render_table8, run_table8_jobs};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let verify = !args.iter().any(|a| a == "--no-verify");
    let Some(jobs) = jobs_from_args(&args) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    println!(
        "Table 8: 96-qubit QC benchmark compilation results (verify = {verify}, jobs = {jobs})\n"
    );
    print!("{}", render_table8(&run_table8_jobs(verify, None, jobs)));
}
