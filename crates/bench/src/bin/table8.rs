//! Regenerates paper Table 8: the Table 7 benchmarks compiled for the
//! 96-qubit Fig. 7 machine, unoptimized and optimized, with percent cost
//! decrease and QMDD verification. Pass `--no-verify` to skip the (wide)
//! miter equivalence checks and `--jobs N` to compile the benchmarks on N
//! worker threads (default: all CPUs). Resource governance flags
//! (`--node-budget`, `--deadline`, `--strict-verify`, `--inject-fault`)
//! are documented in docs/ROBUSTNESS.md.

use qsyn_bench::report::{count_failed, render_table8, run_table8_sweep, SweepConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match SweepConfig::from_args(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "Table 8: 96-qubit QC benchmark compilation results (verify = {}, jobs = {})\n",
        cfg.verify, cfg.jobs
    );
    let rows = run_table8_sweep(&cfg);
    print!("{}", render_table8(&rows));
    println!(
        "\nfailed jobs: {}",
        count_failed(rows.iter().map(|r| &r.cell))
    );
}
