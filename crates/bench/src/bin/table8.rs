//! Regenerates paper Table 8: the Table 7 benchmarks compiled for the
//! 96-qubit Fig. 7 machine, unoptimized and optimized, with percent cost
//! decrease and QMDD verification. Pass `--no-verify` to skip the (wide)
//! miter equivalence checks.

use qsyn_bench::report::{render_table8, run_table8};

fn main() {
    let verify = !std::env::args().any(|a| a == "--no-verify");
    println!("Table 8: 96-qubit QC benchmark compilation results (verify = {verify})\n");
    print!("{}", render_table8(&run_table8(verify)));
}
