//! Performance baseline harness: `bench perf` measures the QMDD hot paths
//! and the parallel sweep engine, then writes `BENCH_qmdd.json`.
//!
//! ```text
//! cargo run --release --bin bench -- perf [--jobs N] [--out FILE]
//! ```
//!
//! The report has three sections:
//!
//! * `qmdd` — single-threaded miter verification of the largest Table 7
//!   benchmark, once with garbage collection effectively disabled (the
//!   `baseline` figures: peak node count with no sweeps) and once with a
//!   forcing watermark (`current`: sweeps fire, peak drops, verdict
//!   unchanged);
//! * `pass_seconds` — wall time per Fig. 2 pass summed over a serial
//!   Table 5 sweep;
//! * `sweep` — the full Table 5 sweep (QMDD verification on) at `--jobs 1`
//!   vs `--jobs N`, with the resulting speedup.
//!
//! See `docs/PERFORMANCE.md` for how to read the numbers.

use qsyn_arch::devices;
use qsyn_bench::big::BIG_BENCHMARKS;
use qsyn_bench::par::jobs_from_args;
use qsyn_bench::report::run_table5_jobs;
use qsyn_core::{Compiler, Verification};
use qsyn_qmdd::{equivalent_miter_with_gc_threshold, EquivReport};
use qsyn_trace::json::Value;
use qsyn_trace::{Pass, TableSink};
use std::sync::Arc;
use std::time::Instant;

/// GC watermark used for the `current` figures: low enough that the miter
/// product of a Table 7 benchmark crosses it several times.
const FORCING_WATERMARK: usize = 1 << 12;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn report_json(seconds: f64, r: &EquivReport) -> Value {
    obj(vec![
        ("seconds", Value::Num(seconds)),
        ("equivalent", Value::Bool(r.equivalent)),
        ("peak_nodes", Value::Num(r.peak_nodes as f64)),
        ("unique_nodes", Value::Num(r.unique_nodes as f64)),
        ("cache_lookups", Value::Num(r.cache_lookups as f64)),
        ("cache_hit_rate", Value::Num(r.cache_hit_rate())),
        ("cache_evictions", Value::Num(r.cache_evictions as f64)),
        ("gc_runs", Value::Num(r.gc_runs as f64)),
        ("nodes_reclaimed", Value::Num(r.nodes_reclaimed as f64)),
    ])
}

fn qmdd_section() -> Value {
    // The largest Table 7 benchmark (T10_b) compiled for qc96, then
    // miter-verified twice: GC off vs. a forcing watermark.
    let bench = BIG_BENCHMARKS.last().expect("table 7 is non-empty");
    let spec = bench.circuit();
    let compiled = Compiler::new(devices::qc96())
        .with_verification(Verification::None)
        .compile(&spec)
        .expect("qc96 hosts every Table 7 benchmark");

    let t = Instant::now();
    let baseline =
        equivalent_miter_with_gc_threshold(&compiled.placed, &compiled.optimized, Some(usize::MAX));
    let baseline_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let current = equivalent_miter_with_gc_threshold(
        &compiled.placed,
        &compiled.optimized,
        Some(FORCING_WATERMARK),
    );
    let current_s = t.elapsed().as_secs_f64();

    assert_eq!(
        baseline.equivalent, current.equivalent,
        "GC must not change the verification verdict"
    );
    obj(vec![
        ("circuit", Value::Str(bench.name.to_string())),
        ("gc_watermark", Value::Num(FORCING_WATERMARK as f64)),
        ("baseline", report_json(baseline_s, &baseline)),
        ("current", report_json(current_s, &current)),
    ])
}

fn perf(jobs: usize, out: &str) {
    eprintln!("bench perf: QMDD section (largest Table 7 benchmark)...");
    let qmdd = qmdd_section();

    eprintln!("bench perf: serial Table 5 sweep (per-pass timing)...");
    let sink = Arc::new(TableSink::new());
    let t = Instant::now();
    let _ = run_table5_jobs(true, Some(sink.clone()), 1);
    let serial_s = t.elapsed().as_secs_f64();
    let events = sink.events();
    let pass_seconds = obj(Pass::FIG2_ORDER
        .iter()
        .map(|p| {
            let total: f64 = events
                .iter()
                .filter(|e| e.pass == *p)
                .map(|e| e.seconds)
                .sum();
            (p.name(), Value::Num(total))
        })
        .collect());

    eprintln!("bench perf: parallel Table 5 sweep (--jobs {jobs})...");
    let t = Instant::now();
    let _ = run_table5_jobs(true, None, jobs);
    let parallel_s = t.elapsed().as_secs_f64();

    let sweep = obj(vec![
        ("jobs", Value::Num(jobs as f64)),
        ("table5_seconds_jobs1", Value::Num(serial_s)),
        ("table5_seconds_jobsN", Value::Num(parallel_s)),
        ("speedup", Value::Num(serial_s / parallel_s)),
    ]);

    let report = obj(vec![
        ("schema", Value::Str("qsyn-bench-perf/1".to_string())),
        ("qmdd", qmdd),
        ("pass_seconds", pass_seconds),
        ("sweep", sweep),
    ]);
    let text = format!("{report}\n");
    if let Err(e) = std::fs::write(out, &text) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    print!("{text}");
    eprintln!("bench perf: wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(jobs) = jobs_from_args(&args) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        })
        .unwrap_or_else(|| "BENCH_qmdd.json".to_string());
    match args.first().map(String::as_str) {
        Some("perf") => perf(jobs, &out),
        _ => {
            eprintln!("usage: bench perf [--jobs N] [--out FILE]");
            std::process::exit(2);
        }
    }
}
