//! Performance baseline harness: `bench perf` measures the QMDD hot paths
//! and the parallel sweep engine, then writes `BENCH_qmdd.json` plus the
//! caching report `BENCH_cache.json`.
//!
//! ```text
//! cargo run --release --bin bench -- perf [--jobs N] [--out FILE]
//!                                         [--cache-out FILE]
//!                                         [--routing-out FILE]
//! ```
//!
//! The `BENCH_qmdd.json` report has three sections:
//!
//! * `qmdd` — single-threaded miter verification of the largest Table 7
//!   benchmark, once with garbage collection effectively disabled (the
//!   `baseline` figures: peak node count with no sweeps) and once with a
//!   forcing watermark (`current`: sweeps fire, peak drops, verdict
//!   unchanged);
//! * `pass_seconds` — wall time per Fig. 2 pass summed over a serial
//!   Table 5 sweep;
//! * `sweep` — the full Table 5 sweep (QMDD verification on) at `--jobs 1`
//!   vs `--jobs N`, with the resulting speedup.
//!
//! `BENCH_cache.json` (schema `qsyn-bench-cache/1`) covers the layered
//! compilation cache:
//!
//! * `compile` — a serial Table 5 sweep under `--cache mem`, cold (empty
//!   compile cache) vs. warm (every job a hit), with the verdicts asserted
//!   identical;
//! * `layers` — per-layer hit/miss deltas over those two runs;
//! * `routing` — per (device, objective), an all-connected-pairs CNOT
//!   workload routed by the legacy per-gate search vs. the precomputed
//!   routing table, outputs asserted byte-identical.
//!
//! `BENCH_routing.json` (schema `qsyn-bench-routing/1`) benchmarks the
//! routing *strategies* against each other: per (device, objective), the
//! paper's CTR vs. the SABRE-style lookahead router on the same workload,
//! with total SWAPs, Eqn. 2 cost, wall time, and a QMDD equivalence
//! verdict for every output — and an assertion that the lookahead wins on
//! SWAPs or cost for at least two device/objective combinations.
//!
//! See `docs/PERFORMANCE.md` for how to read the numbers.

use qsyn_arch::{devices, CostModel, Device, TransmonCost};
use qsyn_bench::big::BIG_BENCHMARKS;
use qsyn_bench::par::{flag_value, jobs_from_args};
use qsyn_bench::report::{run_table5_jobs, run_table5_sweep, Cell, SweepConfig, Table5Row};
use qsyn_circuit::Circuit;
use qsyn_core::{
    cache, routing_table, CacheMode, Compiler, CtrStrategy, LookaheadStrategy, RouteOutcome,
    RouteRequest, RoutingObjective, RoutingStrategy, RoutingTable, Verification,
};
use qsyn_gate::Gate;
use qsyn_qmdd::{equivalent_miter, equivalent_miter_with_gc_threshold, EquivReport};
use qsyn_trace::json::Value;
use qsyn_trace::{Pass, TableSink};
use std::sync::Arc;
use std::time::Instant;

/// GC watermark used for the `current` figures: low enough that the miter
/// product of a Table 7 benchmark crosses it several times.
const FORCING_WATERMARK: usize = 1 << 12;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn report_json(seconds: f64, r: &EquivReport) -> Value {
    obj(vec![
        ("seconds", Value::Num(seconds)),
        ("equivalent", Value::Bool(r.equivalent)),
        ("peak_nodes", Value::Num(r.peak_nodes as f64)),
        ("unique_nodes", Value::Num(r.unique_nodes as f64)),
        ("cache_lookups", Value::Num(r.cache_lookups as f64)),
        ("cache_hit_rate", Value::Num(r.cache_hit_rate())),
        ("cache_evictions", Value::Num(r.cache_evictions as f64)),
        ("gc_runs", Value::Num(r.gc_runs as f64)),
        ("nodes_reclaimed", Value::Num(r.nodes_reclaimed as f64)),
    ])
}

fn qmdd_section() -> Value {
    // The largest Table 7 benchmark (T10_b) compiled for qc96, then
    // miter-verified twice: GC off vs. a forcing watermark.
    let bench = BIG_BENCHMARKS.last().expect("table 7 is non-empty");
    let spec = bench.circuit();
    let compiled = Compiler::new(devices::qc96())
        .with_verification(Verification::None)
        .compile(&spec)
        .expect("qc96 hosts every Table 7 benchmark");

    let t = Instant::now();
    let baseline =
        equivalent_miter_with_gc_threshold(&compiled.placed, &compiled.optimized, Some(usize::MAX));
    let baseline_s = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let current = equivalent_miter_with_gc_threshold(
        &compiled.placed,
        &compiled.optimized,
        Some(FORCING_WATERMARK),
    );
    let current_s = t.elapsed().as_secs_f64();

    assert_eq!(
        baseline.equivalent, current.equivalent,
        "GC must not change the verification verdict"
    );
    obj(vec![
        ("circuit", Value::Str(bench.name.to_string())),
        ("gc_watermark", Value::Num(FORCING_WATERMARK as f64)),
        ("baseline", report_json(baseline_s, &baseline)),
        ("current", report_json(current_s, &current)),
    ])
}

/// Times one full pass of the all-connected-pairs CNOT workload through a
/// routing strategy, repeated `reps` times; returns (seconds, last output).
const ROUTE_REPS: usize = 20;

/// A CNOT for every ordered qubit pair — the densest routing workload a
/// device supports, exercising every table entry.
fn all_pairs_cnots(d: &Device) -> Circuit {
    let n = d.n_qubits();
    let mut c = Circuit::new(n);
    for control in 0..n {
        for target in 0..n {
            if control != target {
                c.push(Gate::cx(control, target));
            }
        }
    }
    c
}

/// Collapses a sweep cell to its verdict-relevant content (everything but
/// the wall time), so cold and warm runs can be asserted identical.
fn cell_fingerprint(c: &Cell) -> String {
    match c {
        Cell::Mapped(m) => format!(
            "mapped {:?} {:?} {:.6} {} {}",
            m.unopt, m.opt, m.pct_decrease, m.verified, m.unverified
        ),
        Cell::NotApplicable => "n/a".to_string(),
        Cell::Failed(msg) => format!("failed {msg}"),
    }
}

fn rows_fingerprint(rows: &[Table5Row]) -> Vec<String> {
    rows.iter()
        .flat_map(|r| r.cells.iter().map(cell_fingerprint))
        .collect()
}

fn routing_section() -> Value {
    let mut entries = Vec::new();
    for d in devices::ibm_devices() {
        let workload = all_pairs_cnots(&d);
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            // Steady-state comparison: the table is built once per
            // process, so fetch it before the clock starts.
            let (table, _) = routing_table(&d, objective);

            let t = Instant::now();
            let mut legacy = None;
            for _ in 0..ROUTE_REPS {
                let req = RouteRequest::new(&workload, &d).with_objective(objective);
                legacy = Some(CtrStrategy.route(&req).expect("ibm devices are connected"));
            }
            let legacy_s = t.elapsed().as_secs_f64();

            let t = Instant::now();
            let mut tabled = None;
            for _ in 0..ROUTE_REPS {
                let req = RouteRequest::new(&workload, &d)
                    .with_objective(objective)
                    .with_table(table.clone());
                tabled = Some(CtrStrategy.route(&req).expect("ibm devices are connected"));
            }
            let table_s = t.elapsed().as_secs_f64();

            let legacy = legacy.expect("reps >= 1");
            let tabled = tabled.expect("reps >= 1");
            assert_eq!(
                legacy.circuit.gates(),
                tabled.circuit.gates(),
                "table routing must be byte-identical to the legacy search \
                 ({} {objective:?})",
                d.name()
            );
            assert_eq!(legacy.swaps_inserted, tabled.swaps_inserted);
            entries.push(obj(vec![
                ("device", Value::Str(d.name().to_string())),
                (
                    "objective",
                    Value::Str(format!("{objective:?}").to_lowercase()),
                ),
                ("cnots", Value::Num(workload.len() as f64)),
                ("reps", Value::Num(ROUTE_REPS as f64)),
                ("legacy_seconds", Value::Num(legacy_s)),
                ("table_seconds", Value::Num(table_s)),
                ("speedup", Value::Num(legacy_s / table_s)),
                ("identical", Value::Bool(true)),
            ]));
        }
    }
    Value::Arr(entries)
}

/// Repetitions for the strategy shoot-out (the lookahead search is
/// heavier per gate than a table lookup, so fewer reps than the
/// table-vs-legacy timing).
const STRATEGY_REPS: usize = 5;

/// Times `strategy` over the workload and returns (mean seconds per rep,
/// last outcome).
fn time_strategy(
    strategy: &dyn RoutingStrategy,
    workload: &Circuit,
    d: &Device,
    objective: RoutingObjective,
    table: &Arc<RoutingTable>,
) -> (f64, RouteOutcome) {
    let t = Instant::now();
    let mut last = None;
    for _ in 0..STRATEGY_REPS {
        let req = RouteRequest::new(workload, d)
            .with_objective(objective)
            .with_table(table.clone());
        last = Some(strategy.route(&req).expect("ibm devices are connected"));
    }
    (
        t.elapsed().as_secs_f64() / STRATEGY_REPS as f64,
        last.expect("reps >= 1"),
    )
}

/// One strategy's result on one (device, objective): counters, Eqn. 2
/// cost of the routed output, timing, and the QMDD equivalence verdict.
fn strategy_json(seconds: f64, outcome: &RouteOutcome, eqn2: f64, equivalent: bool) -> Value {
    obj(vec![
        ("total_swaps", Value::Num(outcome.total_swaps() as f64)),
        ("gates", Value::Num(outcome.circuit.len() as f64)),
        ("depth", Value::Num(outcome.depth as f64)),
        ("eqn2_cost", Value::Num(eqn2)),
        ("seconds", Value::Num(seconds)),
        ("equivalent", Value::Bool(equivalent)),
    ])
}

/// `BENCH_routing.json`: CTR vs. the SABRE-style lookahead router per
/// (device, objective), every output QMDD-verified against the workload.
/// Panics unless the lookahead wins on total SWAPs or Eqn. 2 cost for at
/// least two device/objective combinations.
fn routing_bench(routing_out: &str) {
    eprintln!("bench perf: routing strategies (ctr vs lookahead)...");
    let cost = TransmonCost::default();
    let mut entries = Vec::new();
    let mut lookahead_wins = 0usize;
    let mut combos = 0usize;
    for d in devices::ibm_devices() {
        let workload = all_pairs_cnots(&d);
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let (table, _) = routing_table(&d, objective);
            let (ctr_s, ctr) = time_strategy(&CtrStrategy, &workload, &d, objective, &table);
            let (look_s, look) =
                time_strategy(&LookaheadStrategy::default(), &workload, &d, objective, &table);
            let ctr_ok = equivalent_miter(&workload, &ctr.circuit).equivalent;
            let look_ok = equivalent_miter(&workload, &look.circuit).equivalent;
            assert!(
                ctr_ok && look_ok,
                "strategy output failed QMDD verification ({} {objective:?})",
                d.name()
            );
            let ctr_cost = cost.circuit_cost(&ctr.circuit);
            let look_cost = cost.circuit_cost(&look.circuit);
            let wins_swaps = look.total_swaps() < ctr.total_swaps();
            let wins_cost = look_cost < ctr_cost;
            combos += 1;
            lookahead_wins += usize::from(wins_swaps || wins_cost);
            entries.push(obj(vec![
                ("device", Value::Str(d.name().to_string())),
                (
                    "objective",
                    Value::Str(format!("{objective:?}").to_lowercase()),
                ),
                ("cnots", Value::Num(workload.len() as f64)),
                ("ctr", strategy_json(ctr_s, &ctr, ctr_cost, ctr_ok)),
                ("lookahead", strategy_json(look_s, &look, look_cost, look_ok)),
                ("lookahead_wins_swaps", Value::Bool(wins_swaps)),
                ("lookahead_wins_cost", Value::Bool(wins_cost)),
            ]));
        }
    }
    assert!(
        lookahead_wins >= 2,
        "lookahead must beat CTR on SWAPs or Eqn. 2 cost for at least two \
         device/objective combos (won {lookahead_wins} of {combos})"
    );
    let report = obj(vec![
        ("schema", Value::Str("qsyn-bench-routing/1".to_string())),
        ("combos", Value::Num(combos as f64)),
        ("lookahead_wins", Value::Num(lookahead_wins as f64)),
        ("strategies", Value::Arr(entries)),
    ]);
    let text = format!("{report}\n");
    if let Err(e) = std::fs::write(routing_out, &text) {
        eprintln!("error: {routing_out}: {e}");
        std::process::exit(1);
    }
    print!("{text}");
    eprintln!("bench perf: wrote {routing_out}");
}

fn cache_perf(cache_out: &str) {
    eprintln!("bench perf: routing table vs legacy per-gate search...");
    let routing = routing_section();

    eprintln!("bench perf: cold vs warm Table 5 sweep (--cache mem)...");
    let cfg = SweepConfig {
        verify: true,
        jobs: 1,
        cache: CacheMode::Mem,
        ..SweepConfig::default()
    };
    let before = cache::stats();
    let t = Instant::now();
    let cold_rows = run_table5_sweep(&cfg);
    let cold_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm_rows = run_table5_sweep(&cfg);
    let warm_s = t.elapsed().as_secs_f64();
    let delta = cache::stats().since(&before);
    assert_eq!(
        rows_fingerprint(&cold_rows),
        rows_fingerprint(&warm_rows),
        "a warm compile cache must reproduce the cold run's verdicts"
    );

    let compile = obj(vec![
        ("cold_seconds", Value::Num(cold_s)),
        ("warm_seconds", Value::Num(warm_s)),
        ("speedup", Value::Num(cold_s / warm_s)),
        ("outputs_identical", Value::Bool(true)),
    ]);
    let layers = obj(vec![
        ("routing_builds", Value::Num(delta.routing_tables_built as f64)),
        ("routing_hits", Value::Num(delta.routing_table_hits as f64)),
        ("decompose_hits", Value::Num(delta.decompose_memo_hits as f64)),
        ("decompose_misses", Value::Num(delta.decompose_memo_misses as f64)),
        ("decompose_hit_rate", Value::Num(delta.decompose_hit_rate())),
        ("compile_hits", Value::Num(delta.compile_hits as f64)),
        ("compile_misses", Value::Num(delta.compile_misses as f64)),
        ("compile_hit_rate", Value::Num(delta.compile_hit_rate())),
    ]);
    let report = obj(vec![
        ("schema", Value::Str("qsyn-bench-cache/1".to_string())),
        ("compile", compile),
        ("layers", layers),
        ("routing", routing),
    ]);
    let text = format!("{report}\n");
    if let Err(e) = std::fs::write(cache_out, &text) {
        eprintln!("error: {cache_out}: {e}");
        std::process::exit(1);
    }
    print!("{text}");
    eprintln!("bench perf: wrote {cache_out}");
}

fn perf(jobs: usize, out: &str) {
    eprintln!("bench perf: QMDD section (largest Table 7 benchmark)...");
    let qmdd = qmdd_section();

    eprintln!("bench perf: serial Table 5 sweep (per-pass timing)...");
    let sink = Arc::new(TableSink::new());
    let t = Instant::now();
    let _ = run_table5_jobs(true, Some(sink.clone()), 1);
    let serial_s = t.elapsed().as_secs_f64();
    let events = sink.events();
    let pass_seconds = obj(Pass::FIG2_ORDER
        .iter()
        .map(|p| {
            let total: f64 = events
                .iter()
                .filter(|e| e.pass == *p)
                .map(|e| e.seconds)
                .sum();
            (p.name(), Value::Num(total))
        })
        .collect());

    eprintln!("bench perf: parallel Table 5 sweep (--jobs {jobs})...");
    let t = Instant::now();
    let _ = run_table5_jobs(true, None, jobs);
    let parallel_s = t.elapsed().as_secs_f64();

    let sweep = obj(vec![
        ("jobs", Value::Num(jobs as f64)),
        ("table5_seconds_jobs1", Value::Num(serial_s)),
        ("table5_seconds_jobsN", Value::Num(parallel_s)),
        ("speedup", Value::Num(serial_s / parallel_s)),
    ]);

    let report = obj(vec![
        ("schema", Value::Str("qsyn-bench-perf/1".to_string())),
        ("qmdd", qmdd),
        ("pass_seconds", pass_seconds),
        ("sweep", sweep),
    ]);
    let text = format!("{report}\n");
    if let Err(e) = std::fs::write(out, &text) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    print!("{text}");
    eprintln!("bench perf: wrote {out}");
}

/// Gate count of the scale section's streaming compile (overridable with
/// `QSYN_SCALE_STREAM_GATES` for quick local runs).
const STREAM_GATES: usize = 1_000_000;
/// Input gates per streaming window. Narrow windows keep each window's
/// miter support small (~1.5× the window for the grid stream), which is
/// what lets support-restricted verification walk a ~96-line QMDD
/// instead of the full 1024-line register; at the old 512-gate windows
/// the support covered most of the device and restriction bought ~1×.
const STREAM_WINDOW: usize = 64;
/// Windows of the stream prefix re-verified with the pre-optimization
/// full-register serial path to measure `verified_speedup` in the same
/// run (the whole million-gate stream at baseline speed would take ~15
/// minutes for a number the prefix already gives).
const BASELINE_WINDOWS: usize = 128;
/// The fixed QMDD node budget every streamed window must verify within.
const STREAM_NODE_BUDGET: usize = 1 << 18;
/// CNOTs in the strided oracle routing workload.
const SCALE_ROUTE_CNOTS: usize = 200;
/// Build/route the dense table only up to this size; beyond it the dense
/// figures are projected (an O(n²) build at 4096 qubits is exactly the
/// wall the oracle removes).
const DENSE_MEASURE_MAX: usize = 1024;

/// A strided CNOT workload touching a spread of sources and distances
/// without enumerating all n² pairs (which no realistic circuit does at
/// this scale).
fn strided_cnots(d: &Device, count: usize) -> Circuit {
    let n = d.n_qubits();
    let mut c = Circuit::new(n);
    for i in 0..count {
        let a = (i * 37 + 11) % n;
        let b = (a + 1 + (i * 13) % 96) % n;
        if a != b {
            c.push(Gate::cx(a, b));
        }
    }
    c
}

/// The generated-family sizes the scale section sweeps (100–4096 qubits).
fn scale_devices() -> Vec<Device> {
    vec![
        devices::lnn(128),
        devices::grid_calibrated(16, 16),
        devices::grid_calibrated(32, 32),
        devices::grid_calibrated(64, 64),
    ]
}

/// One size point: sparse oracle build/route time and memory vs the dense
/// table (measured up to [`DENSE_MEASURE_MAX`] qubits, projected beyond).
fn scale_point(d: &Device) -> Value {
    let n = d.n_qubits();
    let objective = RoutingObjective::FewestSwaps;
    let workload = strided_cnots(d, SCALE_ROUTE_CNOTS);

    let t = Instant::now();
    let oracle = Arc::new(qsyn_core::DistanceOracle::build(d, objective));
    let sparse_build_s = t.elapsed().as_secs_f64();
    let sparse_build_bytes = oracle.approx_bytes();

    let t = Instant::now();
    let req = RouteRequest::new(&workload, d)
        .with_objective(objective)
        .with_oracle(oracle.clone());
    let sparse_out = CtrStrategy.route(&req).expect("generated families are connected");
    let sparse_route_s = t.elapsed().as_secs_f64();
    let sparse_total_bytes = oracle.approx_bytes();

    let mut pairs = vec![
        ("qubits", Value::Num(n as f64)),
        ("device", Value::Str(d.name().to_string())),
        ("cnots", Value::Num(workload.len() as f64)),
        ("sparse_build_seconds", Value::Num(sparse_build_s)),
        ("sparse_build_bytes", Value::Num(sparse_build_bytes as f64)),
        ("sparse_route_seconds", Value::Num(sparse_route_s)),
        ("sparse_total_bytes", Value::Num(sparse_total_bytes as f64)),
        ("oracle_hits", Value::Num(oracle.hit_count() as f64)),
        ("oracle_misses", Value::Num(oracle.miss_count() as f64)),
        // 20 bytes per all-pairs entry: u32 hop + f64 neglog + usize next
        // hop — what a materialized dense matrix costs at this width.
        ("dense_projected_bytes", Value::Num((n * n * 20) as f64)),
    ];
    if n <= DENSE_MEASURE_MAX {
        let t = Instant::now();
        let table = Arc::new(RoutingTable::build(d, objective));
        let dense_build_s = t.elapsed().as_secs_f64();
        let dense_bytes = table.approx_bytes();
        let t = Instant::now();
        let req = RouteRequest::new(&workload, d)
            .with_objective(objective)
            .with_table(table);
        let dense_out = CtrStrategy.route(&req).expect("generated families are connected");
        let dense_route_s = t.elapsed().as_secs_f64();
        assert_eq!(
            sparse_out.circuit.gates(),
            dense_out.circuit.gates(),
            "oracle routing must be byte-identical to the dense table on {}",
            d.name()
        );
        pairs.push(("dense_build_seconds", Value::Num(dense_build_s)));
        pairs.push(("dense_bytes", Value::Num(dense_bytes as f64)));
        pairs.push(("dense_route_seconds", Value::Num(dense_route_s)));
        pairs.push((
            "sparse_memory_ratio",
            Value::Num(sparse_total_bytes as f64 / dense_bytes as f64),
        ));
    }
    obj(pairs)
}

/// A nearest-neighbor-heavy native gate stream over a `w`-column grid —
/// the shape of workload a 2D fabric is built for.
fn grid_stream(n: usize, w: usize, gates: usize) -> impl Iterator<Item = Gate> {
    (0..gates).map(move |i| match i % 4 {
        0 => Gate::h((i * 37 + 11) % n),
        1 => {
            let q = (i * 73 + 5) % n;
            if q % w < w - 1 {
                Gate::cx(q, q + 1)
            } else {
                Gate::cx(q, q - 1)
            }
        }
        2 => Gate::t((i * 29 + 3) % n),
        _ => {
            let q = (i * 41 + 17) % n;
            if q + w < n {
                Gate::cx(q, q + w)
            } else {
                Gate::cx(q, q - w)
            }
        }
    })
}

/// `BENCH_scale.json`: the device-axis scaling story. Sparse oracle vs
/// dense table build time/memory from 128 to 4096 qubits (dense measured
/// to 1024, projected beyond), and a million-gate streaming compile on
/// the 1024-qubit grid with support-restricted windowed QMDD
/// verification under a fixed node budget, plus a same-run full-register
/// serial baseline prefix for the `verified_speedup` ratio. Panics
/// unless the sparse figures beat dense at >= 1024 qubits, the streamed
/// verdict is non-Unverified, and the verified throughput is >= 10x the
/// baseline path.
fn scale_bench(scale_out: &str) {
    eprintln!("bench perf: oracle-vs-dense scaling sweep (128..4096 qubits)...");
    let points: Vec<Value> = scale_devices().iter().map(scale_point).collect();

    // The acceptance comparisons at the 1024-qubit grid point.
    let find = |v: &Value, key: &str| -> f64 {
        let Value::Obj(pairs) = v else { panic!("point is an object") };
        pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| match v {
                Value::Num(x) => Some(*x),
                _ => None,
            })
            .unwrap_or_else(|| panic!("missing {key}"))
    };
    let p1024 = points
        .iter()
        .find(|p| find(p, "qubits") == 1024.0)
        .expect("1024-qubit point");
    let sparse_bytes = find(p1024, "sparse_total_bytes");
    let dense_bytes = find(p1024, "dense_bytes");
    let sparse_build = find(p1024, "sparse_build_seconds");
    let dense_build = find(p1024, "dense_build_seconds");
    assert!(
        sparse_bytes * 8.0 < dense_bytes,
        "sparse oracle must use <1/8 the dense memory at 1024 qubits \
         ({sparse_bytes} vs {dense_bytes})"
    );
    assert!(
        sparse_build < dense_build,
        "sparse oracle must build faster than the dense table at 1024 \
         qubits ({sparse_build}s vs {dense_build}s)"
    );
    let p4096 = points
        .iter()
        .find(|p| find(p, "qubits") == 4096.0)
        .expect("4096-qubit point");
    assert!(
        find(p4096, "sparse_total_bytes") * 100.0 < find(p4096, "dense_projected_bytes"),
        "sparse oracle must stay >100x under the projected dense matrix at 4096 qubits"
    );

    let stream_gates: usize = std::env::var("QSYN_SCALE_STREAM_GATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(STREAM_GATES);
    eprintln!(
        "bench perf: streaming {stream_gates} gates through the 1024-qubit grid \
         (window {STREAM_WINDOW}, node budget {STREAM_NODE_BUDGET})..."
    );
    let device = devices::grid_calibrated(32, 32);
    let n = device.n_qubits();
    let compiler = Compiler::new(device)
        .with_budget(
            qsyn_core::CompileBudget::default().with_node_budget(STREAM_NODE_BUDGET),
        );
    let mut emitted = 0usize;
    let t = Instant::now();
    let summary = compiler
        .compile_stream(n, STREAM_WINDOW, grid_stream(n, 32, stream_gates), |_| {
            emitted += 1;
        })
        .expect("streaming compile fits its budget");
    let stream_s = t.elapsed().as_secs_f64();
    assert!(
        !summary.verdict.is_unverified(),
        "every streamed window must verify within the node budget: {:?}",
        summary.verdict
    );
    assert_eq!(summary.gates_out, emitted);
    assert!(
        summary.peak_resident_gates < stream_gates / 10,
        "streaming must bound the resident circuit (peak {} of {} gates)",
        summary.peak_resident_gates,
        stream_gates
    );

    // Differential baseline, same run: the first BASELINE_WINDOWS
    // windows of the identical stream re-verified with the
    // pre-optimization full-register serial miter. The generator is
    // uniform window to window, so prefix throughput is representative,
    // and the restricted run above having the same window contents
    // makes the ratio a true like-for-like verified-throughput speedup.
    let baseline_gates = (BASELINE_WINDOWS * STREAM_WINDOW).min(stream_gates);
    eprintln!(
        "bench perf: re-verifying a {baseline_gates}-gate prefix with the \
         full-register serial baseline..."
    );
    let t = Instant::now();
    let baseline = compiler
        .with_stream_verify(qsyn_core::StreamVerifyConfig::full_register_serial())
        .compile_stream(n, STREAM_WINDOW, grid_stream(n, 32, baseline_gates), |_| {})
        .expect("baseline streaming compile fits its budget");
    let baseline_s = t.elapsed().as_secs_f64();
    assert!(
        !baseline.verdict.is_unverified(),
        "the baseline path must also verify every window: {:?}",
        baseline.verdict
    );
    let gates_per_second = summary.gates_in as f64 / stream_s;
    let baseline_gates_per_second = baseline.gates_in as f64 / baseline_s;
    let verified_speedup = gates_per_second / baseline_gates_per_second;
    eprintln!(
        "bench perf: verified throughput {gates_per_second:.0} gates/s vs \
         baseline {baseline_gates_per_second:.0} gates/s ({verified_speedup:.1}x)"
    );
    assert!(
        verified_speedup >= 10.0,
        "support-restricted windowed verification must deliver >= 10x the \
         full-register serial verified throughput (got {verified_speedup:.2}x)"
    );

    let streaming = obj(vec![
        ("device", Value::Str("grid32x32".to_string())),
        ("qubits", Value::Num(n as f64)),
        ("gates_in", Value::Num(summary.gates_in as f64)),
        ("gates_out", Value::Num(summary.gates_out as f64)),
        ("window_gates", Value::Num(summary.window_gates as f64)),
        ("windows", Value::Num(summary.windows as f64)),
        ("node_budget", Value::Num(STREAM_NODE_BUDGET as f64)),
        ("seconds", Value::Num(stream_s)),
        ("gates_per_second", Value::Num(gates_per_second)),
        (
            "baseline_gates_per_second",
            Value::Num(baseline_gates_per_second),
        ),
        ("baseline_gates", Value::Num(baseline.gates_in as f64)),
        ("verified_speedup", Value::Num(verified_speedup)),
        (
            "verify_seconds_total",
            Value::Num(summary.verify_seconds_total),
        ),
        ("verify_p95", Value::Num(summary.verify_p95_seconds)),
        (
            "max_window_support",
            Value::Num(summary.max_window_support as f64),
        ),
        ("verify_jobs", Value::Num(summary.verify_jobs as f64)),
        (
            "peak_resident_gates",
            Value::Num(summary.peak_resident_gates as f64),
        ),
        ("swaps_inserted", Value::Num(summary.swaps_inserted as f64)),
        (
            "max_window_swaps",
            Value::Num(summary.max_window_swaps as f64),
        ),
        (
            "verified_windows",
            Value::Num(summary.verified_windows as f64),
        ),
        (
            "unverified_windows",
            Value::Num(summary.unverified_windows as f64),
        ),
        ("oracle_hits", Value::Num(summary.oracle_hits as f64)),
        ("oracle_misses", Value::Num(summary.oracle_misses as f64)),
        ("verdict", Value::Str(format!("{:?}", summary.verdict))),
    ]);

    let report = obj(vec![
        ("schema", Value::Str("qsyn-bench-scale/1".to_string())),
        ("oracle", Value::Arr(points)),
        ("streaming", streaming),
    ]);
    let text = format!("{report}\n");
    if let Err(e) = std::fs::write(scale_out, &text) {
        eprintln!("error: {scale_out}: {e}");
        std::process::exit(1);
    }
    print!("{text}");
    eprintln!("bench perf: wrote {scale_out}");
}

/// `BENCH_serve.json`: requests/s and latency percentiles of the serve
/// execution path at 1/2/4 workers, cold vs. warm compile cache (see
/// `qsyn_bench::serve_bench`).
fn serve_bench_run(serve_out: &str) {
    eprintln!("bench serve: daemon execution path (1/2/4 workers, cold vs warm)...");
    let report = qsyn_bench::serve_bench::serve_report();
    let text = format!("{report}\n");
    if let Err(e) = std::fs::write(serve_out, &text) {
        eprintln!("error: {serve_out}: {e}");
        std::process::exit(1);
    }
    print!("{text}");
    eprintln!("bench serve: wrote {serve_out}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(jobs) = jobs_from_args(&args) else {
        eprintln!("error: --jobs requires a positive integer");
        std::process::exit(2);
    };
    let out = flag_value(&args, "--out")
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| "BENCH_qmdd.json".to_string());
    let cache_out = flag_value(&args, "--cache-out")
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| "BENCH_cache.json".to_string());
    let routing_out = flag_value(&args, "--routing-out")
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| "BENCH_routing.json".to_string());
    let scale_out = flag_value(&args, "--scale-out")
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let serve_out = flag_value(&args, "--serve-out")
        .filter(|v| !v.is_empty())
        .map(str::to_string)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    match args.first().map(String::as_str) {
        Some("perf") => {
            perf(jobs, &out);
            cache_perf(&cache_out);
            routing_bench(&routing_out);
            scale_bench(&scale_out);
            serve_bench_run(&serve_out);
        }
        Some("scale") => scale_bench(&scale_out),
        Some("serve") => serve_bench_run(&serve_out),
        _ => {
            eprintln!(
                "usage: bench perf [--jobs N] [--out FILE] [--cache-out FILE] \
                 [--routing-out FILE] [--scale-out FILE] [--serve-out FILE]\n       \
                 bench scale [--scale-out FILE]\n       \
                 bench serve [--serve-out FILE]"
            );
            std::process::exit(2);
        }
    }
}
