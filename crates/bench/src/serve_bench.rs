//! `bench serve` — throughput and latency of the serve execution path.
//!
//! Drives the same request pipeline the `qsyn serve` daemon runs —
//! [`qsyn_core::serve::parse_request`] into [`qsyn_core::serve::execute`]
//! on a [`crate::par::WorkerPool`] — without the stdin/stdout shell, so
//! the figures isolate compile throughput from client I/O. Each worker
//! count (1, 2, 4) runs one batch **cold** (every request a distinct
//! circuit, compile cache empty for these keys) and once more **warm**
//! (the identical batch again, every request a whole-compile cache hit),
//! reporting requests/s and the p50/p95/p99 of the `serve.latency_us`
//! histogram delta for each configuration.
//!
//! The batch size defaults to [`DEFAULT_REQUESTS`] and can be lowered for
//! smoke runs with `QSYN_SERVE_BENCH_REQUESTS`.

use crate::par::WorkerPool;
use qsyn_core::serve::{execute, parse_request, ServeContext, ServeDefaults};
use qsyn_trace::json::Value;
use qsyn_trace::metrics::{self, HistogramSnapshot};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Requests per (workers × cache) configuration.
pub const DEFAULT_REQUESTS: usize = 32;

/// Worker counts benchmarked.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One request line of the benchmark batch: a small 5-qubit circuit on
/// ibmqx4, made distinct per index by an `x`-gate encoding of `i` (so a
/// cold batch shares no compile-cache key) and distinct per worker
/// configuration by the `node_budget` field, which is part of the
/// compile-cache key.
fn request_line(i: usize, node_budget: usize) -> String {
    let a = i % 5;
    let b = (a + 1) % 5;
    let c = (a + 2) % 5;
    let mut body = format!("h q[{a}];\\n");
    for bit in 0..8 {
        if (i >> bit) & 1 == 1 {
            body.push_str(&format!("x q[{}];\\n", bit % 5));
        }
    }
    body.push_str(&format!("cx q[{a}],q[{b}];\\nccx q[{a}],q[{b}],q[{c}];\\n"));
    format!(
        "{{\"id\":\"r{i}\",\"circuit\":\"OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[5];\\n{body}\",\"device\":\"ibmqx4\",\"node_budget\":{node_budget}}}"
    )
}

/// Result of one batch: wall time, row outcomes, and the latency
/// histogram recorded over exactly this batch.
struct BatchResult {
    seconds: f64,
    ok: usize,
    errors: usize,
    cache_hits: u64,
    latency: Option<HistogramSnapshot>,
}

/// Pushes every line through `parse_request` + `execute` on a pool of
/// `workers` threads and waits for all responses.
fn run_batch(lines: &[String], workers: usize, ctx: &Arc<ServeContext>) -> BatchResult {
    let pool = WorkerPool::new(workers);
    let (tx, rx) = mpsc::channel::<bool>();
    let before = metrics::global().snapshot();
    let t = Instant::now();
    for (job, line) in lines.iter().enumerate() {
        let req = parse_request(line, &ctx.defaults).expect("benchmark requests are well-formed");
        let ctx = Arc::clone(ctx);
        let tx = tx.clone();
        let accepted = Instant::now();
        pool.submit(move || {
            let row = execute(&req, job as u64, accepted, &ctx);
            let _ = tx.send(row.is_ok());
        });
    }
    drop(tx);
    let (mut ok, mut errors) = (0usize, 0usize);
    for is_ok in rx {
        if is_ok {
            ok += 1;
        } else {
            errors += 1;
        }
    }
    let seconds = t.elapsed().as_secs_f64();
    pool.shutdown();
    let delta = metrics::global().snapshot().since(&before);
    BatchResult {
        seconds,
        ok,
        errors,
        cache_hits: delta.counter("serve.cache_hits").unwrap_or(0),
        latency: delta.histogram("serve.latency_us").cloned(),
    }
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn latency_json(h: &Option<HistogramSnapshot>) -> Value {
    let Some(h) = h else {
        return Value::Null;
    };
    let q = |p: f64| h.quantile(p).map_or(Value::Null, |v| Value::Num(v as f64));
    obj(vec![
        ("count", Value::Num(h.count as f64)),
        ("mean_us", h.mean().map_or(Value::Null, Value::Num)),
        ("p50_us", q(0.50)),
        ("p95_us", q(0.95)),
        ("p99_us", q(0.99)),
    ])
}

/// Runs the full matrix (worker counts × cold/warm) and returns the
/// `qsyn-bench-serve/1` report.
///
/// # Panics
///
/// Panics when a request errors, or when the warm batch misses the
/// compile cache — both mean the serve path is broken, not slow.
pub fn serve_report() -> Value {
    let requests: usize = std::env::var("QSYN_SERVE_BENCH_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_REQUESTS);
    let mut configs = Vec::new();
    for (ci, &workers) in WORKER_COUNTS.iter().enumerate() {
        // A fresh node budget per worker configuration keys this batch
        // away from every earlier one, so "cold" is honestly cold.
        let node_budget = 200_000 + ci;
        let lines: Vec<String> = (0..requests)
            .map(|i| request_line(i, node_budget))
            .collect();
        let ctx = Arc::new(ServeContext {
            defaults: ServeDefaults::default(),
            disk: None,
            trace: None,
            gate: None,
        });
        for (label, batch) in [
            ("cold", run_batch(&lines, workers, &ctx)),
            ("warm", run_batch(&lines, workers, &ctx)),
        ] {
            assert_eq!(
                batch.errors, 0,
                "bench serve: {label} batch at {workers} workers produced error rows"
            );
            assert_eq!(batch.ok, requests);
            if label == "warm" {
                assert_eq!(
                    batch.cache_hits as usize, requests,
                    "bench serve: warm batch at {workers} workers must hit the \
                     compile cache on every request"
                );
            }
            eprintln!(
                "bench serve: {workers} worker(s), {label}: {} requests in {:.3}s \
                 ({:.1} req/s, {} cache hits)",
                requests,
                batch.seconds,
                requests as f64 / batch.seconds,
                batch.cache_hits
            );
            configs.push(obj(vec![
                ("workers", Value::Num(workers as f64)),
                ("cache", Value::Str(label.to_string())),
                ("requests", Value::Num(requests as f64)),
                ("ok", Value::Num(batch.ok as f64)),
                ("errors", Value::Num(batch.errors as f64)),
                ("cache_hits", Value::Num(batch.cache_hits as f64)),
                ("seconds", Value::Num(batch.seconds)),
                (
                    "requests_per_second",
                    Value::Num(requests as f64 / batch.seconds),
                ),
                ("latency_us", latency_json(&batch.latency)),
            ]));
        }
    }
    obj(vec![
        ("schema", Value::Str("qsyn-bench-serve/1".to_string())),
        ("device", Value::Str("ibmqx4".to_string())),
        ("requests_per_config", Value::Num(requests as f64)),
        ("configs", Value::Arr(configs)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_parse_and_are_distinct() {
        let defaults = ServeDefaults::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let line = request_line(i, 1000);
            let req = parse_request(&line, &defaults).expect("line parses");
            assert_eq!(req.id, format!("r{i}"));
            assert_eq!(req.node_budget, Some(1000));
            assert!(
                seen.insert(format!("{:?}", req.circuit.gates())),
                "request circuits must be pairwise distinct (collision at {i})"
            );
        }
    }

    #[test]
    fn one_cold_batch_runs_clean() {
        let ctx = Arc::new(ServeContext {
            defaults: ServeDefaults::default(),
            disk: None,
            trace: None,
            gate: None,
        });
        let lines: Vec<String> = (0..4).map(|i| request_line(i, 314_159)).collect();
        let batch = run_batch(&lines, 2, &ctx);
        assert_eq!(batch.ok, 4);
        assert_eq!(batch.errors, 0);
        let lat = batch.latency.expect("latency histogram recorded");
        assert_eq!(lat.count, 4);
    }
}
