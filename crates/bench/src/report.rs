//! Experiment harness: runs the paper's evaluation and renders each table.
//!
//! Every table/figure of the paper's Section 5 has a `run_*` function that
//! returns structured data and a `render_*` function that prints the same
//! rows the paper reports (plus the paper's own numbers for comparison).
//! The `table2` .. `table8` binaries and the `experiments` binary are thin
//! wrappers over this module, so EXPERIMENTS.md can be regenerated with
//! `cargo run --bin experiments`.

use crate::big::{BigBenchmark, BIG_BENCHMARKS};
use crate::par::{par_map, try_par_map};
use crate::revlib::{RevlibBenchmark, REVLIB_BENCHMARKS};
use crate::stg::{StgFunction, STG_FUNCTIONS};
use qsyn_arch::{devices, CostModel, Device, TransmonCost};
use qsyn_circuit::Circuit;
use qsyn_core::{CacheMode, CompileBudget, CompileError, Compiler, FaultSpec, Verification};
use qsyn_trace::TraceSink;
use std::fmt::Write as _;
use std::sync::Arc;

/// Metrics of one mapping: the `(T-count / gates / cost)` triples the
/// paper's tables use, before and after optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingMetrics {
    /// Unoptimized (T-count, gate count, Eqn. 2 cost).
    pub unopt: (usize, usize, f64),
    /// Optimized (T-count, gate count, Eqn. 2 cost).
    pub opt: (usize, usize, f64),
    /// Percent cost decrease from optimization (Tables 4/6/8).
    pub pct_decrease: f64,
    /// Whether the built-in QMDD equivalence check passed.
    pub verified: bool,
    /// Verification ran but every degradation-ladder rung exhausted its
    /// budget: the output is explicitly unverified (never a silent pass).
    pub unverified: bool,
    /// Synthesis wall time in seconds (including verification).
    pub seconds: f64,
}

/// One benchmark-on-device cell of a sweep table.
///
/// Historically this was `Option<MappingMetrics>` with a panic for
/// unexpected errors; the sweep harness now keeps every outcome structured
/// so a run over N inputs always produces N cells.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Synthesized (and possibly verified); carries the table metrics.
    Mapped(MappingMetrics),
    /// The paper's `N/A`: circuit too wide, or a generalized Toffoli with
    /// no borrowable ancilla line.
    NotApplicable,
    /// The job failed — budget exhaustion, an injected fault, or a panic
    /// the sweep isolated — with the failure message.
    Failed(String),
}

impl Cell {
    /// The metrics, when the benchmark synthesized.
    pub fn metrics(&self) -> Option<&MappingMetrics> {
        match self {
            Cell::Mapped(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the job failed (as opposed to mapping or a clean `N/A`).
    pub fn is_failed(&self) -> bool {
        matches!(self, Cell::Failed(_))
    }

    /// The failure message, when the job failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            Cell::Failed(msg) => Some(msg),
            _ => None,
        }
    }
}

/// Everything a table sweep needs beyond its inputs: verification on/off,
/// an optional shared trace sink, the worker count, the per-job resource
/// budget, and (for harness tests and CI smoke runs) a fault to inject.
#[derive(Clone, Default)]
pub struct SweepConfig {
    /// Run the built-in QMDD verification for every job.
    pub verify: bool,
    /// Optional shared sink receiving every job's pass events.
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Worker threads (`<= 1` runs serially on the calling thread).
    pub jobs: usize,
    /// Resource budget applied to every job's compiler.
    pub budget: CompileBudget,
    /// Caching layers for every job's compiler (default
    /// [`CacheMode::Tables`]; see `docs/PERFORMANCE.md`).
    pub cache: CacheMode,
    /// Deliberate fault injected into job 0 only; the remaining jobs
    /// demonstrate isolation by completing normally.
    pub inject: Option<FaultSpec>,
}

impl std::fmt::Debug for SweepConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepConfig")
            .field("verify", &self.verify)
            .field("traced", &self.trace.is_some())
            .field("jobs", &self.jobs)
            .field("budget", &self.budget)
            .field("cache", &self.cache)
            .field("inject", &self.inject)
            .finish()
    }
}

impl SweepConfig {
    /// A serial, untraced, unbudgeted sweep.
    pub fn new(verify: bool) -> Self {
        SweepConfig {
            verify,
            ..SweepConfig::default()
        }
    }

    /// Parses the sweep flags the table binaries share: `--no-verify`,
    /// `--jobs N`, `--node-budget NODES`, `--deadline SECONDS`,
    /// `--strict-verify`, and `--inject-fault pass:kind`.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the offending flag.
    pub fn from_args(args: &[String]) -> Result<SweepConfig, String> {
        use crate::par::{flag_value, jobs_from_args};
        let jobs =
            jobs_from_args(args).ok_or("--jobs requires a positive integer")?;
        let mut budget = CompileBudget::default();
        if let Some(v) = flag_value(args, "--node-budget") {
            let nodes: usize = v
                .parse()
                .map_err(|_| format!("--node-budget requires a node count, got `{v}`"))?;
            budget = budget.with_node_budget(nodes);
        }
        if let Some(v) = flag_value(args, "--deadline") {
            let secs: f64 = v
                .parse()
                .ok()
                .filter(|s: &f64| *s >= 0.0 && s.is_finite())
                .ok_or_else(|| format!("--deadline requires seconds, got `{v}`"))?;
            budget = budget.with_deadline(std::time::Duration::from_secs_f64(secs));
        }
        if args.iter().any(|a| a == "--strict-verify") {
            budget = budget.with_verify_mode(qsyn_core::VerifyMode::Strict);
        }
        let inject = match flag_value(args, "--inject-fault") {
            Some(v) => Some(FaultSpec::parse(v).map_err(|e| format!("--inject-fault: {e}"))?),
            None => None,
        };
        let cache = match flag_value(args, "--cache") {
            Some(v) => CacheMode::parse(v)
                .ok_or_else(|| format!("--cache requires off, tables or mem, got `{v}`"))?,
            None => CacheMode::default(),
        };
        Ok(SweepConfig {
            verify: !args.iter().any(|a| a == "--no-verify"),
            trace: None,
            jobs,
            budget,
            cache,
            inject,
        })
    }

}

/// Counts [`Cell::Failed`] entries — the summary line every sweep binary
/// prints so CI can assert fault isolation.
pub fn count_failed<'a>(cells: impl IntoIterator<Item = &'a Cell>) -> usize {
    cells.into_iter().filter(|c| c.is_failed()).count()
}

/// Compiles a circuit for a device and extracts the table metrics.
///
/// Returns [`Cell::NotApplicable`] for the paper's `N/A` conditions
/// (circuit too wide, or a generalized Toffoli with no borrowable line)
/// and [`Cell::Failed`] for every other error — the harness tabulates
/// failures rather than tearing down a sweep.
pub fn map_benchmark(circuit: &Circuit, device: &Device, verify: bool) -> Cell {
    map_benchmark_traced(circuit, device, verify, None)
}

/// [`map_benchmark`] with an optional pass-event sink: every compiler pass
/// of every benchmark streams to `trace` (e.g. a shared
/// [`qsyn_trace::JsonlSink`]), so an experiment sweep leaves a per-pass
/// record alongside the rendered tables.
pub fn map_benchmark_traced(
    circuit: &Circuit,
    device: &Device,
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
) -> Cell {
    map_benchmark_job(circuit, device, verify, trace, None)
}

/// [`map_benchmark_traced`] with an optional sweep job id: every pass
/// event the compilation emits carries `job`, so events from concurrent
/// jobs interleaved in one JSONL stream stay attributable.
pub fn map_benchmark_job(
    circuit: &Circuit,
    device: &Device,
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    job: Option<u64>,
) -> Cell {
    let cfg = SweepConfig {
        verify,
        trace,
        ..SweepConfig::default()
    };
    map_benchmark_cell(circuit, device, &cfg, job)
}

/// The full-configuration mapper every sweep funnels through: applies the
/// [`SweepConfig`] budget (and, for job 0, any injected fault) and converts
/// every outcome into a [`Cell`].
pub fn map_benchmark_cell(
    circuit: &Circuit,
    device: &Device,
    cfg: &SweepConfig,
    job: Option<u64>,
) -> Cell {
    let cost = TransmonCost::default();
    let mut compiler = Compiler::new(device.clone())
        .with_verification(if cfg.verify {
            Verification::Auto
        } else {
            Verification::None
        })
        .with_budget(cfg.budget)
        .with_cache(cfg.cache);
    if let Some(sink) = cfg.trace.clone() {
        compiler = compiler.with_trace(sink);
    }
    if let Some(id) = job {
        compiler = compiler.with_job_id(id);
    }
    if let Some(spec) = cfg.inject {
        if job.unwrap_or(0) == 0 {
            compiler = compiler.with_fault_injection(spec);
        }
    }
    match compiler.compile(circuit) {
        Ok(r) => {
            let su = r.unoptimized_stats();
            let so = r.optimized_stats();
            Cell::Mapped(MappingMetrics {
                unopt: (su.t_count, su.volume, cost.cost(&su)),
                opt: (so.t_count, so.volume, cost.cost(&so)),
                pct_decrease: r.percent_cost_decrease(&cost),
                verified: r.verified.unwrap_or(false),
                unverified: r.verdict().is_unverified(),
                seconds: r.metrics().total_seconds,
            })
        }
        Err(CompileError::TooWide { .. }) | Err(CompileError::NoAncilla { .. }) => {
            Cell::NotApplicable
        }
        Err(e) => Cell::Failed(format!(
            "{}: {e}",
            circuit.name().unwrap_or("circuit")
        )),
    }
}

/// Technology-independent reference form of a benchmark: mapped to an
/// unconstrained simulator twice as wide as the circuit (so every
/// generalized Toffoli gets a full dirty-ancilla chain, as it would on a
/// larger device), then optimized. T-counts therefore agree with the
/// device mappings, which never change T-count during routing.
pub fn tech_independent_metrics(circuit: &Circuit) -> (usize, usize, f64) {
    let cost = TransmonCost::default();
    let sim = Device::simulator(circuit.n_qubits() * 2);
    let r = Compiler::new(sim)
        .with_verification(Verification::Canonical)
        .compile(circuit)
        .expect("simulator mapping cannot fail");
    assert_eq!(r.verified, Some(true));
    let s = r.optimized_stats();
    (s.t_count, s.volume, cost.cost(&s))
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One Table 2 row: device data plus the paper's reported complexity.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Device name.
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// Coupling complexity computed from the map.
    pub complexity: f64,
    /// The value printed in paper Table 2.
    pub paper_complexity: f64,
}

/// Computes Table 2 (device coupling complexities). Exact reproduction.
pub fn run_table2() -> Vec<Table2Row> {
    let paper = [
        ("ibmqx2", 0.3),
        ("ibmqx3", 1.0 / 12.0),
        ("ibmqx4", 0.3),
        ("ibmqx5", 22.0 / 240.0),
        ("ibmq_16", 18.0 / 182.0),
    ];
    devices::ibm_devices()
        .into_iter()
        .zip(paper)
        .map(|(d, (name, pc))| {
            assert_eq!(d.name(), name);
            Table2Row {
                name: d.name().to_string(),
                qubits: d.n_qubits(),
                complexity: d.coupling_complexity(),
                paper_complexity: pc,
            }
        })
        .collect()
}

/// Renders Table 2 as markdown.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| Device | Qubits | Coupling complexity (measured) | Paper |");
    let _ = writeln!(out, "|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.6} | {:.6} |",
            r.name, r.qubits, r.complexity, r.paper_complexity
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Tables 3 and 4
// ---------------------------------------------------------------------------

/// One Table 3 row: a single-target-gate function mapped to every device.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The benchmark function.
    pub function: StgFunction,
    /// Our technology-independent (T, gates, cost).
    pub tech_independent: (usize, usize, f64),
    /// One cell per device, in [`devices::ibm_devices`] order.
    pub cells: Vec<Cell>,
}

/// Runs the Table 3 / Table 4 experiment over the whole suite.
pub fn run_table3(verify: bool) -> Vec<Table3Row> {
    run_table3_traced(verify, None)
}

/// [`run_table3`] streaming every compiler pass to an optional sink.
pub fn run_table3_traced(verify: bool, trace: Option<Arc<dyn TraceSink>>) -> Vec<Table3Row> {
    run_table3_jobs(verify, trace, 1)
}

/// [`run_table3_traced`] fanning the (function, device) jobs across up to
/// `jobs` worker threads. Each job compiles with its own QMDD package and
/// is stamped with a row-major job id, so results (and per-pass trace
/// attribution) are identical for every `jobs` value.
pub fn run_table3_jobs(
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    jobs: usize,
) -> Vec<Table3Row> {
    run_table3_sweep(&SweepConfig {
        verify,
        trace,
        jobs,
        ..SweepConfig::default()
    })
}

/// [`run_table3_jobs`] under a full [`SweepConfig`] (budget, fault
/// injection). Each job is fault-isolated: a panic or budget blow becomes
/// a [`Cell::Failed`] in its slot and every other job still completes.
pub fn run_table3_sweep(cfg: &SweepConfig) -> Vec<Table3Row> {
    let devs = devices::ibm_devices();
    let cascades: Vec<Circuit> = STG_FUNCTIONS.iter().map(StgFunction::cascade).collect();
    let pairs = job_pairs(cascades.len(), devs.len());
    let cells = sweep_cells(&pairs, cfg, |job, &(f, d)| {
        map_benchmark_cell(&cascades[f], &devs[d], cfg, Some(job as u64))
    });
    let tech = par_map(&cascades, cfg.jobs.max(1), |_, c| tech_independent_metrics(c));
    STG_FUNCTIONS
        .iter()
        .enumerate()
        .map(|(i, f)| Table3Row {
            function: *f,
            tech_independent: tech[i],
            cells: cells[i * devs.len()..(i + 1) * devs.len()].to_vec(),
        })
        .collect()
}

/// Runs one fault-isolated cell per job: panics caught by
/// [`try_par_map`] are folded back into [`Cell::Failed`] rows, so the
/// returned vector always has exactly `pairs.len()` entries.
fn sweep_cells<T: Sync>(
    pairs: &[T],
    cfg: &SweepConfig,
    f: impl Fn(usize, &T) -> Cell + Sync,
) -> Vec<Cell> {
    try_par_map(pairs, cfg.jobs.max(1), f)
        .into_iter()
        .map(|r| r.unwrap_or_else(Cell::Failed))
        .collect()
}

/// Row-major (benchmark, device) job list: job id = `b * n_devices + d`,
/// stable across `--jobs` values.
fn job_pairs(n_benchmarks: usize, n_devices: usize) -> Vec<(usize, usize)> {
    (0..n_benchmarks)
        .flat_map(|b| (0..n_devices).map(move |d| (b, d)))
        .collect()
}

/// Per-device average percent cost decrease (the paper's Table 4 bottom
/// row) over the rows that synthesized.
pub fn average_pct_per_device(rows: &[&[Cell]], n_devices: usize) -> Vec<f64> {
    (0..n_devices)
        .map(|d| {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|cells| cells[d].metrics().map(|m| m.pct_decrease))
                .collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

fn fmt_cell(c: &Cell) -> String {
    match c {
        Cell::Mapped(m) => format!(
            "{}/{}/{:.2} -> {}/{}/{:.2}",
            m.unopt.0, m.unopt.1, m.unopt.2, m.opt.0, m.opt.1, m.opt.2
        ),
        Cell::NotApplicable => "N/A".to_string(),
        Cell::Failed(_) => "FAILED".to_string(),
    }
}

fn device_names() -> Vec<String> {
    devices::ibm_devices()
        .iter()
        .map(|d| d.name().to_string())
        .collect()
}

/// Renders a Table 4/6-style percent-decrease table for any row set.
fn render_pct_table(
    names: &[String],
    cells: &[&[Cell]],
    paper_avg: &[f64; 5],
) -> String {
    let dev_names = device_names();
    let mut out = String::new();
    let _ = writeln!(out, "| Ftn. | {} |", dev_names.join(" | "));
    let _ = writeln!(out, "|{}", "---|".repeat(1 + dev_names.len()));
    for (name, row) in names.iter().zip(cells) {
        let pcts: Vec<String> = row
            .iter()
            .map(|c| match c {
                Cell::Mapped(m) => format!("{:.2}", m.pct_decrease),
                Cell::NotApplicable => "N/A".into(),
                Cell::Failed(_) => "FAILED".into(),
            })
            .collect();
        let _ = writeln!(out, "| {} | {} |", name, pcts.join(" | "));
    }
    let avg = average_pct_per_device(cells, dev_names.len());
    let _ = writeln!(
        out,
        "| Average (ours) | {} |",
        avg.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>().join(" | ")
    );
    let _ = writeln!(
        out,
        "| Average (paper) | {} |",
        paper_avg.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>().join(" | ")
    );
    out
}

/// Renders Table 3 (mappings) as markdown.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let dev_names = device_names();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Ftn. | Qubits | Tech-ind. ours (T/g/cost) | Tech-ind. paper | {} |",
        dev_names.join(" | ")
    );
    let _ = writeln!(out, "|{}", "---|".repeat(4 + dev_names.len()));
    for r in rows {
        let cells: Vec<String> = r.cells.iter().map(fmt_cell).collect();
        let _ = writeln!(
            out,
            "| #{} | {} | {}/{}/{:.2} | {}/{}/{:.2} | {} |",
            r.function.id,
            r.function.qubits,
            r.tech_independent.0,
            r.tech_independent.1,
            r.tech_independent.2,
            r.function.paper_t,
            r.function.paper_gates,
            r.function.paper_cost,
            cells.join(" | ")
        );
    }
    out
}

/// Renders Table 4 (percent cost decrease of the Table 3 mappings).
pub fn render_table4(rows: &[Table3Row]) -> String {
    let names: Vec<String> = rows.iter().map(|r| format!("#{}", r.function.id)).collect();
    let cells: Vec<&[Cell]> = rows.iter().map(|r| r.cells.as_slice()).collect();
    render_pct_table(&names, &cells, &[5.85, 7.65, 4.92, 8.04, 8.48])
}

// ---------------------------------------------------------------------------
// Tables 5 and 6
// ---------------------------------------------------------------------------

/// One Table 5 row: a RevLib cascade mapped to every device.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// The benchmark.
    pub benchmark: RevlibBenchmark,
    /// One cell per device, in [`devices::ibm_devices`] order.
    pub cells: Vec<Cell>,
}

/// Runs the Table 5 / Table 6 experiment.
pub fn run_table5(verify: bool) -> Vec<Table5Row> {
    run_table5_traced(verify, None)
}

/// [`run_table5`] streaming every compiler pass to an optional sink.
pub fn run_table5_traced(verify: bool, trace: Option<Arc<dyn TraceSink>>) -> Vec<Table5Row> {
    run_table5_jobs(verify, trace, 1)
}

/// [`run_table5_traced`] fanning the (benchmark, device) jobs across up to
/// `jobs` worker threads (see [`run_table3_jobs`] for the job-id scheme).
pub fn run_table5_jobs(
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    jobs: usize,
) -> Vec<Table5Row> {
    run_table5_sweep(&SweepConfig {
        verify,
        trace,
        jobs,
        ..SweepConfig::default()
    })
}

/// [`run_table5_jobs`] under a full [`SweepConfig`] — see
/// [`run_table3_sweep`] for the isolation contract.
pub fn run_table5_sweep(cfg: &SweepConfig) -> Vec<Table5Row> {
    let devs = devices::ibm_devices();
    let circuits: Vec<Circuit> = REVLIB_BENCHMARKS.iter().map(RevlibBenchmark::circuit).collect();
    let pairs = job_pairs(circuits.len(), devs.len());
    let cells = sweep_cells(&pairs, cfg, |job, &(b, d)| {
        map_benchmark_cell(&circuits[b], &devs[d], cfg, Some(job as u64))
    });
    REVLIB_BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| Table5Row {
            benchmark: *b,
            cells: cells[i * devs.len()..(i + 1) * devs.len()].to_vec(),
        })
        .collect()
}

/// Renders Table 5 (mappings) as markdown.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let dev_names = device_names();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Ftn. | Qubits | Largest | Gates | Paper T | {} |",
        dev_names.join(" | ")
    );
    let _ = writeln!(out, "|{}", "---|".repeat(5 + dev_names.len()));
    for r in rows {
        let cells: Vec<String> = r.cells.iter().map(fmt_cell).collect();
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            r.benchmark.name,
            r.benchmark.qubits,
            r.benchmark.largest_gate,
            r.benchmark.gate_count,
            r.benchmark.paper_t,
            cells.join(" | ")
        );
    }
    out
}

/// Renders Table 6 (percent cost decrease of the Table 5 mappings).
pub fn render_table6(rows: &[Table5Row]) -> String {
    let names: Vec<String> = rows.iter().map(|r| r.benchmark.name.to_string()).collect();
    let cells: Vec<&[Cell]> = rows.iter().map(|r| r.cells.as_slice()).collect();
    render_pct_table(&names, &cells, &[5.48, 29.56, 6.40, 26.51, 19.08])
}

// ---------------------------------------------------------------------------
// Tables 7 and 8
// ---------------------------------------------------------------------------

/// One Table 8 row: a Table 7 benchmark compiled for the 96-qubit machine.
#[derive(Debug, Clone)]
pub struct Table8Row {
    /// The benchmark.
    pub benchmark: BigBenchmark,
    /// Compilation outcome (mapped on the 96-qubit machine unless a
    /// budget or injected fault intervened).
    pub cell: Cell,
}

/// Runs the Table 8 experiment on the Fig. 7 machine.
pub fn run_table8(verify: bool) -> Vec<Table8Row> {
    run_table8_traced(verify, None)
}

/// [`run_table8`] streaming every compiler pass to an optional sink.
pub fn run_table8_traced(verify: bool, trace: Option<Arc<dyn TraceSink>>) -> Vec<Table8Row> {
    run_table8_jobs(verify, trace, 1)
}

/// [`run_table8_traced`] fanning one job per benchmark across up to `jobs`
/// worker threads (job id = benchmark index).
pub fn run_table8_jobs(
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    jobs: usize,
) -> Vec<Table8Row> {
    run_table8_sweep(&SweepConfig {
        verify,
        trace,
        jobs,
        ..SweepConfig::default()
    })
}

/// [`run_table8_jobs`] under a full [`SweepConfig`] — see
/// [`run_table3_sweep`] for the isolation contract.
pub fn run_table8_sweep(cfg: &SweepConfig) -> Vec<Table8Row> {
    let d = devices::qc96();
    let circuits: Vec<Circuit> = BIG_BENCHMARKS.iter().map(BigBenchmark::circuit).collect();
    let cells = sweep_cells(&circuits, cfg, |job, c| {
        map_benchmark_cell(c, &d, cfg, Some(job as u64))
    });
    BIG_BENCHMARKS
        .iter()
        .zip(cells)
        .map(|(b, cell)| Table8Row {
            benchmark: *b,
            cell,
        })
        .collect()
}

/// Renders Table 7 (benchmark contents) as markdown.
pub fn render_table7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| Name | Gate | Controls | Target |");
    let _ = writeln!(out, "|---|---|---|---|");
    for b in BIG_BENCHMARKS {
        for (k, g) in b.circuit().gates().iter().enumerate() {
            if let qsyn_gate::Gate::Mct { controls, target } = g {
                let ctl: Vec<String> = controls.iter().map(|q| format!("q{q}")).collect();
                let _ = writeln!(
                    out,
                    "| {} | {}: T{} | {} | q{} |",
                    if k == 0 { b.name } else { "" },
                    k + 1,
                    b.gate_size,
                    ctl.join(", "),
                    target
                );
            }
        }
    }
    out
}

/// Renders Table 8 as markdown, paper values side by side.
pub fn render_table8(rows: &[Table8Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Name | Unopt ours (T/g/cost) | Unopt paper | Opt ours | Opt paper | % dec ours | % dec paper | verified | seconds |"
    );
    let _ = writeln!(out, "|{}", "---|".repeat(9));
    let mut pct_sum = 0.0;
    let mut mapped = 0usize;
    for r in rows {
        let b = &r.benchmark;
        let Some(m) = r.cell.metrics() else {
            let status = match &r.cell {
                Cell::NotApplicable => "N/A".to_string(),
                Cell::Failed(msg) => format!("FAILED: {msg}"),
                Cell::Mapped(_) => unreachable!(),
            };
            let _ = writeln!(out, "| {} | {status} | | | | | | | |", b.name);
            continue;
        };
        pct_sum += m.pct_decrease;
        mapped += 1;
        let verified = if m.unverified {
            "UNVERIFIED".to_string()
        } else {
            m.verified.to_string()
        };
        let _ = writeln!(
            out,
            "| {} | {}/{}/{:.0} | {}/{}/{:.0} | {}/{}/{:.0} | {}/{}/{:.0} | {:.2} | {:.2} | {} | {:.2} |",
            b.name,
            m.unopt.0, m.unopt.1, m.unopt.2,
            b.paper_unopt.0, b.paper_unopt.1, b.paper_unopt.2,
            m.opt.0, m.opt.1, m.opt.2,
            b.paper_opt.0, b.paper_opt.1, b.paper_opt.2,
            m.pct_decrease,
            b.paper_pct,
            verified,
            m.seconds
        );
    }
    let _ = writeln!(
        out,
        "| Average | | | | | {:.2} | 39.54 | | |",
        if mapped == 0 { 0.0 } else { pct_sum / mapped as f64 }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revlib::R3_17_14;

    #[test]
    fn table2_is_exact() {
        for row in run_table2() {
            assert!(
                (row.complexity - row.paper_complexity).abs() < 1e-9,
                "{}",
                row.name
            );
        }
        let text = render_table2(&run_table2());
        assert!(text.contains("ibmqx2"));
        assert!(text.contains("0.3"));
    }

    #[test]
    fn map_benchmark_reports_metrics() {
        let d = devices::ibmqx4();
        let cell = map_benchmark(&R3_17_14.circuit(), &d, true);
        let m = cell.metrics().expect("r3_17_14 maps on ibmqx4");
        assert!(m.verified);
        assert!(!m.unverified);
        assert!(m.unopt.2 >= m.opt.2, "optimization never raises cost");
        assert_eq!(m.unopt.0, 14, "two Toffolis = 14 T");
        assert!(m.seconds >= 0.0);
    }

    #[test]
    fn traced_map_benchmark_streams_passes_and_matches_untraced() {
        let d = devices::ibmqx4();
        let c = R3_17_14.circuit();
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let traced_cell = map_benchmark_traced(&c, &d, true, Some(sink.clone()));
        let traced = traced_cell.metrics().unwrap();
        let plain_cell = map_benchmark(&c, &d, true);
        let plain = plain_cell.metrics().unwrap();
        assert_eq!(traced.unopt, plain.unopt);
        assert_eq!(traced.opt, plain.opt);
        assert_eq!(traced.pct_decrease, plain.pct_decrease);
        // One event per Fig. 2 pass: place, decompose, route, optimize, verify.
        assert_eq!(sink.events().len(), 5);
    }

    fn same_metrics_ignoring_time(a: &Cell, b: &Cell) {
        match (a, b) {
            (Cell::NotApplicable, Cell::NotApplicable) => {}
            (Cell::Failed(x), Cell::Failed(y)) => assert_eq!(x, y),
            (Cell::Mapped(x), Cell::Mapped(y)) => {
                assert_eq!(x.unopt, y.unopt);
                assert_eq!(x.opt, y.opt);
                assert_eq!(x.pct_decrease, y.pct_decrease);
                assert_eq!(x.verified, y.verified);
                assert_eq!(x.unverified, y.unverified);
            }
            _ => panic!("outcome mismatch between serial and parallel sweeps"),
        }
    }

    #[test]
    fn parallel_table5_sweep_matches_serial() {
        let serial = run_table5_jobs(false, None, 1);
        let par = run_table5_jobs(false, None, 4);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.benchmark.name, b.benchmark.name);
            for (ca, cb) in a.cells.iter().zip(&b.cells) {
                same_metrics_ignoring_time(ca, cb);
            }
        }
    }

    #[test]
    fn parallel_sweep_stamps_row_major_job_ids() {
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let rows = run_table5_jobs(false, Some(sink.clone()), 4);
        let n_devices = devices::ibm_devices().len();
        let n_jobs = rows.len() * n_devices;
        let events = sink.events();
        assert!(!events.is_empty());
        for e in &events {
            let job = e.job.expect("sweep events carry a job id") as usize;
            assert!(job < n_jobs, "job {job} out of range {n_jobs}");
        }
        // Per job, events arrive in Fig. 2 order even when the stream as a
        // whole is interleaved across workers.
        for job in 0..n_jobs as u64 {
            let passes: Vec<_> = events
                .iter()
                .filter(|e| e.job == Some(job))
                .map(|e| e.pass)
                .collect();
            let order = qsyn_trace::Pass::FIG2_ORDER;
            let mut cursor = 0;
            for p in &passes {
                let pos = order[cursor..]
                    .iter()
                    .position(|o| o == p)
                    .expect("per-job passes follow Fig. 2 order");
                cursor += pos + 1;
            }
        }
    }

    #[test]
    fn map_benchmark_returns_na_for_too_wide() {
        let d = devices::ibmqx2();
        let mut too_wide = Circuit::new(6);
        too_wide.push(qsyn_gate::Gate::x(5));
        assert_eq!(map_benchmark(&too_wide, &d, false), Cell::NotApplicable);
    }

    #[test]
    fn strict_node_budget_yields_failed_cell_not_panic() {
        use qsyn_core::VerifyMode;
        let cfg = SweepConfig {
            verify: true,
            budget: CompileBudget::default()
                .with_node_budget(2)
                .with_verify_mode(VerifyMode::Strict),
            ..SweepConfig::default()
        };
        let cell = map_benchmark_cell(&R3_17_14.circuit(), &devices::ibmqx4(), &cfg, None);
        let msg = cell.failure().expect("strict tiny budget must fail");
        assert!(msg.contains("budget"), "{msg}");
    }

    #[test]
    fn degraded_node_budget_maps_with_explicit_unverified() {
        let cfg = SweepConfig {
            verify: true,
            budget: CompileBudget::default().with_node_budget(2),
            ..SweepConfig::default()
        };
        let cell = map_benchmark_cell(&R3_17_14.circuit(), &devices::ibmqx4(), &cfg, None);
        let m = cell.metrics().expect("degrade mode still maps");
        assert!(!m.verified);
        assert!(m.unverified, "must be loud about the skipped proof");
    }

    #[test]
    fn injected_panic_is_isolated_to_one_row() {
        use qsyn_core::{FaultKind, FaultSpec};
        let cfg = SweepConfig {
            jobs: 4,
            inject: Some(FaultSpec {
                pass: qsyn_trace::Pass::Route,
                kind: FaultKind::Panic,
            }),
            ..SweepConfig::default()
        };
        let rows = run_table5_sweep(&cfg);
        assert_eq!(rows.len(), REVLIB_BENCHMARKS.len(), "one row per benchmark");
        let cells: Vec<&Cell> = rows.iter().flat_map(|r| &r.cells).collect();
        // Job 0 (first benchmark on the first device) carries the fault...
        let msg = cells[0].failure().expect("job 0 is poisoned");
        assert!(msg.contains("injected fault"), "{msg}");
        // ...and it is the only failure; every other job completed.
        assert_eq!(cells.iter().filter(|c| c.is_failed()).count(), 1);
        assert!(cells[1..].iter().any(|c| c.metrics().is_some()));
    }

    #[test]
    fn injected_budget_fault_is_a_structured_failure() {
        use qsyn_core::{FaultKind, FaultSpec};
        let cfg = SweepConfig {
            inject: Some(FaultSpec {
                pass: qsyn_trace::Pass::Decompose,
                kind: FaultKind::Budget,
            }),
            ..SweepConfig::default()
        };
        let cell = map_benchmark_cell(&R3_17_14.circuit(), &devices::ibmqx4(), &cfg, Some(0));
        let msg = cell.failure().unwrap();
        assert!(msg.contains("budget exceeded"), "{msg}");
        // Other job ids are untouched by the injection.
        let clean = map_benchmark_cell(&R3_17_14.circuit(), &devices::ibmqx4(), &cfg, Some(3));
        assert!(clean.metrics().is_some());
    }

    #[test]
    fn tech_independent_small_function() {
        let f = crate::stg::stg_by_id("3").unwrap();
        let (t, g, cost) = tech_independent_metrics(&f.cascade());
        // #3 is the linear function x0: no T gates at all.
        assert_eq!(t, 0);
        assert!(g <= 3);
        assert!(cost <= 4.0);
    }

    #[test]
    fn average_pct_ignores_na_and_failed() {
        let cells: Vec<Cell> = vec![
            Cell::Mapped(MappingMetrics {
                unopt: (0, 0, 10.0),
                opt: (0, 0, 5.0),
                pct_decrease: 50.0,
                verified: true,
                unverified: false,
                seconds: 0.0,
            }),
            Cell::NotApplicable,
            Cell::Failed("poisoned".into()),
        ];
        let rows: Vec<&[Cell]> = vec![&cells];
        let avg = average_pct_per_device(&rows, 3);
        assert_eq!(avg, vec![50.0, 0.0, 0.0]);
    }

    #[test]
    fn render_table7_lists_all_twenty_gates() {
        let text = render_table7();
        // 2 header lines + 20 gate rows (4 per benchmark, 5 benchmarks).
        assert_eq!(text.lines().count(), 22);
        assert!(text.contains("T6_b"));
        assert!(text.contains("q85"));
    }
}
