//! Experiment harness: runs the paper's evaluation and renders each table.
//!
//! Every table/figure of the paper's Section 5 has a `run_*` function that
//! returns structured data and a `render_*` function that prints the same
//! rows the paper reports (plus the paper's own numbers for comparison).
//! The `table2` .. `table8` binaries and the `experiments` binary are thin
//! wrappers over this module, so EXPERIMENTS.md can be regenerated with
//! `cargo run --bin experiments`.

use crate::big::{BigBenchmark, BIG_BENCHMARKS};
use crate::par::par_map;
use crate::revlib::{RevlibBenchmark, REVLIB_BENCHMARKS};
use crate::stg::{StgFunction, STG_FUNCTIONS};
use qsyn_arch::{devices, CostModel, Device, TransmonCost};
use qsyn_circuit::Circuit;
use qsyn_core::{CompileError, Compiler, Verification};
use qsyn_trace::TraceSink;
use std::fmt::Write as _;
use std::sync::Arc;

/// Metrics of one mapping: the `(T-count / gates / cost)` triples the
/// paper's tables use, before and after optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingMetrics {
    /// Unoptimized (T-count, gate count, Eqn. 2 cost).
    pub unopt: (usize, usize, f64),
    /// Optimized (T-count, gate count, Eqn. 2 cost).
    pub opt: (usize, usize, f64),
    /// Percent cost decrease from optimization (Tables 4/6/8).
    pub pct_decrease: f64,
    /// Whether the built-in QMDD equivalence check passed.
    pub verified: bool,
    /// Synthesis wall time in seconds (including verification).
    pub seconds: f64,
}

/// One benchmark-on-device cell; `None` is the paper's `N/A`.
pub type Cell = Option<MappingMetrics>;

/// Compiles a circuit for a device and extracts the table metrics.
///
/// Returns `None` for the paper's `N/A` conditions (circuit too wide, or a
/// generalized Toffoli with no borrowable line).
///
/// # Panics
///
/// Panics if compilation fails for any *other* reason, or if the built-in
/// verification rejects the output — both would be compiler defects, which
/// the experiment harness surfaces loudly rather than tabulating.
pub fn map_benchmark(circuit: &Circuit, device: &Device, verify: bool) -> Cell {
    map_benchmark_traced(circuit, device, verify, None)
}

/// [`map_benchmark`] with an optional pass-event sink: every compiler pass
/// of every benchmark streams to `trace` (e.g. a shared
/// [`qsyn_trace::JsonlSink`]), so an experiment sweep leaves a per-pass
/// record alongside the rendered tables.
///
/// # Panics
///
/// Same contract as [`map_benchmark`].
pub fn map_benchmark_traced(
    circuit: &Circuit,
    device: &Device,
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
) -> Cell {
    map_benchmark_job(circuit, device, verify, trace, None)
}

/// [`map_benchmark_traced`] with an optional sweep job id: every pass
/// event the compilation emits carries `job`, so events from concurrent
/// jobs interleaved in one JSONL stream stay attributable.
///
/// # Panics
///
/// Same contract as [`map_benchmark`].
pub fn map_benchmark_job(
    circuit: &Circuit,
    device: &Device,
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    job: Option<u64>,
) -> Cell {
    let cost = TransmonCost::default();
    let mut compiler = Compiler::new(device.clone()).with_verification(if verify {
        Verification::Auto
    } else {
        Verification::None
    });
    if let Some(sink) = trace {
        compiler = compiler.with_trace(sink);
    }
    if let Some(id) = job {
        compiler = compiler.with_job_id(id);
    }
    match compiler.compile(circuit) {
        Ok(r) => {
            let su = r.unoptimized_stats();
            let so = r.optimized_stats();
            Some(MappingMetrics {
                unopt: (su.t_count, su.volume, cost.cost(&su)),
                opt: (so.t_count, so.volume, cost.cost(&so)),
                pct_decrease: r.percent_cost_decrease(&cost),
                verified: r.verified.unwrap_or(false),
                seconds: r.metrics().total_seconds,
            })
        }
        Err(CompileError::TooWide { .. }) | Err(CompileError::NoAncilla { .. }) => None,
        Err(e) => panic!("unexpected failure mapping {:?}: {e}", circuit.name()),
    }
}

/// Technology-independent reference form of a benchmark: mapped to an
/// unconstrained simulator twice as wide as the circuit (so every
/// generalized Toffoli gets a full dirty-ancilla chain, as it would on a
/// larger device), then optimized. T-counts therefore agree with the
/// device mappings, which never change T-count during routing.
pub fn tech_independent_metrics(circuit: &Circuit) -> (usize, usize, f64) {
    let cost = TransmonCost::default();
    let sim = Device::simulator(circuit.n_qubits() * 2);
    let r = Compiler::new(sim)
        .with_verification(Verification::Canonical)
        .compile(circuit)
        .expect("simulator mapping cannot fail");
    assert_eq!(r.verified, Some(true));
    let s = r.optimized_stats();
    (s.t_count, s.volume, cost.cost(&s))
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// One Table 2 row: device data plus the paper's reported complexity.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Device name.
    pub name: String,
    /// Qubit count.
    pub qubits: usize,
    /// Coupling complexity computed from the map.
    pub complexity: f64,
    /// The value printed in paper Table 2.
    pub paper_complexity: f64,
}

/// Computes Table 2 (device coupling complexities). Exact reproduction.
pub fn run_table2() -> Vec<Table2Row> {
    let paper = [
        ("ibmqx2", 0.3),
        ("ibmqx3", 1.0 / 12.0),
        ("ibmqx4", 0.3),
        ("ibmqx5", 22.0 / 240.0),
        ("ibmq_16", 18.0 / 182.0),
    ];
    devices::ibm_devices()
        .into_iter()
        .zip(paper)
        .map(|(d, (name, pc))| {
            assert_eq!(d.name(), name);
            Table2Row {
                name: d.name().to_string(),
                qubits: d.n_qubits(),
                complexity: d.coupling_complexity(),
                paper_complexity: pc,
            }
        })
        .collect()
}

/// Renders Table 2 as markdown.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| Device | Qubits | Coupling complexity (measured) | Paper |");
    let _ = writeln!(out, "|---|---|---|---|");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.6} | {:.6} |",
            r.name, r.qubits, r.complexity, r.paper_complexity
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Tables 3 and 4
// ---------------------------------------------------------------------------

/// One Table 3 row: a single-target-gate function mapped to every device.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The benchmark function.
    pub function: StgFunction,
    /// Our technology-independent (T, gates, cost).
    pub tech_independent: (usize, usize, f64),
    /// One cell per device, in [`devices::ibm_devices`] order.
    pub cells: Vec<Cell>,
}

/// Runs the Table 3 / Table 4 experiment over the whole suite.
pub fn run_table3(verify: bool) -> Vec<Table3Row> {
    run_table3_traced(verify, None)
}

/// [`run_table3`] streaming every compiler pass to an optional sink.
pub fn run_table3_traced(verify: bool, trace: Option<Arc<dyn TraceSink>>) -> Vec<Table3Row> {
    run_table3_jobs(verify, trace, 1)
}

/// [`run_table3_traced`] fanning the (function, device) jobs across up to
/// `jobs` worker threads. Each job compiles with its own QMDD package and
/// is stamped with a row-major job id, so results (and per-pass trace
/// attribution) are identical for every `jobs` value.
pub fn run_table3_jobs(
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    jobs: usize,
) -> Vec<Table3Row> {
    let devs = devices::ibm_devices();
    let cascades: Vec<Circuit> = STG_FUNCTIONS.iter().map(StgFunction::cascade).collect();
    let pairs = job_pairs(cascades.len(), devs.len());
    let cells = par_map(&pairs, jobs, |job, &(f, d)| {
        map_benchmark_job(&cascades[f], &devs[d], verify, trace.clone(), Some(job as u64))
    });
    let tech = par_map(&cascades, jobs, |_, c| tech_independent_metrics(c));
    STG_FUNCTIONS
        .iter()
        .enumerate()
        .map(|(i, f)| Table3Row {
            function: *f,
            tech_independent: tech[i],
            cells: cells[i * devs.len()..(i + 1) * devs.len()].to_vec(),
        })
        .collect()
}

/// Row-major (benchmark, device) job list: job id = `b * n_devices + d`,
/// stable across `--jobs` values.
fn job_pairs(n_benchmarks: usize, n_devices: usize) -> Vec<(usize, usize)> {
    (0..n_benchmarks)
        .flat_map(|b| (0..n_devices).map(move |d| (b, d)))
        .collect()
}

/// Per-device average percent cost decrease (the paper's Table 4 bottom
/// row) over the rows that synthesized.
pub fn average_pct_per_device(rows: &[&[Cell]], n_devices: usize) -> Vec<f64> {
    (0..n_devices)
        .map(|d| {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|cells| cells[d].map(|m| m.pct_decrease))
                .collect();
            if vals.is_empty() {
                0.0
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect()
}

fn fmt_cell(c: &Cell) -> String {
    match c {
        Some(m) => format!(
            "{}/{}/{:.2} -> {}/{}/{:.2}",
            m.unopt.0, m.unopt.1, m.unopt.2, m.opt.0, m.opt.1, m.opt.2
        ),
        None => "N/A".to_string(),
    }
}

fn device_names() -> Vec<String> {
    devices::ibm_devices()
        .iter()
        .map(|d| d.name().to_string())
        .collect()
}

/// Renders a Table 4/6-style percent-decrease table for any row set.
fn render_pct_table(
    names: &[String],
    cells: &[&[Cell]],
    paper_avg: &[f64; 5],
) -> String {
    let dev_names = device_names();
    let mut out = String::new();
    let _ = writeln!(out, "| Ftn. | {} |", dev_names.join(" | "));
    let _ = writeln!(out, "|{}", "---|".repeat(1 + dev_names.len()));
    for (name, row) in names.iter().zip(cells) {
        let pcts: Vec<String> = row
            .iter()
            .map(|c| match c {
                Some(m) => format!("{:.2}", m.pct_decrease),
                None => "N/A".into(),
            })
            .collect();
        let _ = writeln!(out, "| {} | {} |", name, pcts.join(" | "));
    }
    let avg = average_pct_per_device(cells, dev_names.len());
    let _ = writeln!(
        out,
        "| Average (ours) | {} |",
        avg.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>().join(" | ")
    );
    let _ = writeln!(
        out,
        "| Average (paper) | {} |",
        paper_avg.iter().map(|v| format!("{v:.2}")).collect::<Vec<_>>().join(" | ")
    );
    out
}

/// Renders Table 3 (mappings) as markdown.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let dev_names = device_names();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Ftn. | Qubits | Tech-ind. ours (T/g/cost) | Tech-ind. paper | {} |",
        dev_names.join(" | ")
    );
    let _ = writeln!(out, "|{}", "---|".repeat(4 + dev_names.len()));
    for r in rows {
        let cells: Vec<String> = r.cells.iter().map(fmt_cell).collect();
        let _ = writeln!(
            out,
            "| #{} | {} | {}/{}/{:.2} | {}/{}/{:.2} | {} |",
            r.function.id,
            r.function.qubits,
            r.tech_independent.0,
            r.tech_independent.1,
            r.tech_independent.2,
            r.function.paper_t,
            r.function.paper_gates,
            r.function.paper_cost,
            cells.join(" | ")
        );
    }
    out
}

/// Renders Table 4 (percent cost decrease of the Table 3 mappings).
pub fn render_table4(rows: &[Table3Row]) -> String {
    let names: Vec<String> = rows.iter().map(|r| format!("#{}", r.function.id)).collect();
    let cells: Vec<&[Cell]> = rows.iter().map(|r| r.cells.as_slice()).collect();
    render_pct_table(&names, &cells, &[5.85, 7.65, 4.92, 8.04, 8.48])
}

// ---------------------------------------------------------------------------
// Tables 5 and 6
// ---------------------------------------------------------------------------

/// One Table 5 row: a RevLib cascade mapped to every device.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// The benchmark.
    pub benchmark: RevlibBenchmark,
    /// One cell per device, in [`devices::ibm_devices`] order.
    pub cells: Vec<Cell>,
}

/// Runs the Table 5 / Table 6 experiment.
pub fn run_table5(verify: bool) -> Vec<Table5Row> {
    run_table5_traced(verify, None)
}

/// [`run_table5`] streaming every compiler pass to an optional sink.
pub fn run_table5_traced(verify: bool, trace: Option<Arc<dyn TraceSink>>) -> Vec<Table5Row> {
    run_table5_jobs(verify, trace, 1)
}

/// [`run_table5_traced`] fanning the (benchmark, device) jobs across up to
/// `jobs` worker threads (see [`run_table3_jobs`] for the job-id scheme).
pub fn run_table5_jobs(
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    jobs: usize,
) -> Vec<Table5Row> {
    let devs = devices::ibm_devices();
    let circuits: Vec<Circuit> = REVLIB_BENCHMARKS.iter().map(RevlibBenchmark::circuit).collect();
    let pairs = job_pairs(circuits.len(), devs.len());
    let cells = par_map(&pairs, jobs, |job, &(b, d)| {
        map_benchmark_job(&circuits[b], &devs[d], verify, trace.clone(), Some(job as u64))
    });
    REVLIB_BENCHMARKS
        .iter()
        .enumerate()
        .map(|(i, b)| Table5Row {
            benchmark: *b,
            cells: cells[i * devs.len()..(i + 1) * devs.len()].to_vec(),
        })
        .collect()
}

/// Renders Table 5 (mappings) as markdown.
pub fn render_table5(rows: &[Table5Row]) -> String {
    let dev_names = device_names();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Ftn. | Qubits | Largest | Gates | Paper T | {} |",
        dev_names.join(" | ")
    );
    let _ = writeln!(out, "|{}", "---|".repeat(5 + dev_names.len()));
    for r in rows {
        let cells: Vec<String> = r.cells.iter().map(fmt_cell).collect();
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} |",
            r.benchmark.name,
            r.benchmark.qubits,
            r.benchmark.largest_gate,
            r.benchmark.gate_count,
            r.benchmark.paper_t,
            cells.join(" | ")
        );
    }
    out
}

/// Renders Table 6 (percent cost decrease of the Table 5 mappings).
pub fn render_table6(rows: &[Table5Row]) -> String {
    let names: Vec<String> = rows.iter().map(|r| r.benchmark.name.to_string()).collect();
    let cells: Vec<&[Cell]> = rows.iter().map(|r| r.cells.as_slice()).collect();
    render_pct_table(&names, &cells, &[5.48, 29.56, 6.40, 26.51, 19.08])
}

// ---------------------------------------------------------------------------
// Tables 7 and 8
// ---------------------------------------------------------------------------

/// One Table 8 row: a Table 7 benchmark compiled for the 96-qubit machine.
#[derive(Debug, Clone)]
pub struct Table8Row {
    /// The benchmark.
    pub benchmark: BigBenchmark,
    /// Compilation metrics (always succeeds on the 96-qubit machine).
    pub metrics: MappingMetrics,
}

/// Runs the Table 8 experiment on the Fig. 7 machine.
pub fn run_table8(verify: bool) -> Vec<Table8Row> {
    run_table8_traced(verify, None)
}

/// [`run_table8`] streaming every compiler pass to an optional sink.
pub fn run_table8_traced(verify: bool, trace: Option<Arc<dyn TraceSink>>) -> Vec<Table8Row> {
    run_table8_jobs(verify, trace, 1)
}

/// [`run_table8_traced`] fanning one job per benchmark across up to `jobs`
/// worker threads (job id = benchmark index).
pub fn run_table8_jobs(
    verify: bool,
    trace: Option<Arc<dyn TraceSink>>,
    jobs: usize,
) -> Vec<Table8Row> {
    let d = devices::qc96();
    let circuits: Vec<Circuit> = BIG_BENCHMARKS.iter().map(BigBenchmark::circuit).collect();
    let metrics = par_map(&circuits, jobs, |job, c| {
        map_benchmark_job(c, &d, verify, trace.clone(), Some(job as u64))
            .expect("qc96 hosts every Table 7 benchmark")
    });
    BIG_BENCHMARKS
        .iter()
        .zip(metrics)
        .map(|(b, m)| Table8Row {
            benchmark: *b,
            metrics: m,
        })
        .collect()
}

/// Renders Table 7 (benchmark contents) as markdown.
pub fn render_table7() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| Name | Gate | Controls | Target |");
    let _ = writeln!(out, "|---|---|---|---|");
    for b in BIG_BENCHMARKS {
        for (k, g) in b.circuit().gates().iter().enumerate() {
            if let qsyn_gate::Gate::Mct { controls, target } = g {
                let ctl: Vec<String> = controls.iter().map(|q| format!("q{q}")).collect();
                let _ = writeln!(
                    out,
                    "| {} | {}: T{} | {} | q{} |",
                    if k == 0 { b.name } else { "" },
                    k + 1,
                    b.gate_size,
                    ctl.join(", "),
                    target
                );
            }
        }
    }
    out
}

/// Renders Table 8 as markdown, paper values side by side.
pub fn render_table8(rows: &[Table8Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Name | Unopt ours (T/g/cost) | Unopt paper | Opt ours | Opt paper | % dec ours | % dec paper | verified | seconds |"
    );
    let _ = writeln!(out, "|{}", "---|".repeat(9));
    let mut pct_sum = 0.0;
    for r in rows {
        let m = &r.metrics;
        let b = &r.benchmark;
        pct_sum += m.pct_decrease;
        let _ = writeln!(
            out,
            "| {} | {}/{}/{:.0} | {}/{}/{:.0} | {}/{}/{:.0} | {}/{}/{:.0} | {:.2} | {:.2} | {} | {:.2} |",
            b.name,
            m.unopt.0, m.unopt.1, m.unopt.2,
            b.paper_unopt.0, b.paper_unopt.1, b.paper_unopt.2,
            m.opt.0, m.opt.1, m.opt.2,
            b.paper_opt.0, b.paper_opt.1, b.paper_opt.2,
            m.pct_decrease,
            b.paper_pct,
            m.verified,
            m.seconds
        );
    }
    let _ = writeln!(
        out,
        "| Average | | | | | {:.2} | 39.54 | | |",
        pct_sum / rows.len() as f64
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::revlib::R3_17_14;

    #[test]
    fn table2_is_exact() {
        for row in run_table2() {
            assert!(
                (row.complexity - row.paper_complexity).abs() < 1e-9,
                "{}",
                row.name
            );
        }
        let text = render_table2(&run_table2());
        assert!(text.contains("ibmqx2"));
        assert!(text.contains("0.3"));
    }

    #[test]
    fn map_benchmark_reports_metrics() {
        let d = devices::ibmqx4();
        let m = map_benchmark(&R3_17_14.circuit(), &d, true).unwrap();
        assert!(m.verified);
        assert!(m.unopt.2 >= m.opt.2, "optimization never raises cost");
        assert_eq!(m.unopt.0, 14, "two Toffolis = 14 T");
        assert!(m.seconds >= 0.0);
    }

    #[test]
    fn traced_map_benchmark_streams_passes_and_matches_untraced() {
        let d = devices::ibmqx4();
        let c = R3_17_14.circuit();
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let traced = map_benchmark_traced(&c, &d, true, Some(sink.clone())).unwrap();
        let plain = map_benchmark(&c, &d, true).unwrap();
        assert_eq!(traced.unopt, plain.unopt);
        assert_eq!(traced.opt, plain.opt);
        assert_eq!(traced.pct_decrease, plain.pct_decrease);
        // One event per Fig. 2 pass: place, decompose, route, optimize, verify.
        assert_eq!(sink.events().len(), 5);
    }

    fn same_metrics_ignoring_time(a: &Cell, b: &Cell) {
        match (a, b) {
            (None, None) => {}
            (Some(x), Some(y)) => {
                assert_eq!(x.unopt, y.unopt);
                assert_eq!(x.opt, y.opt);
                assert_eq!(x.pct_decrease, y.pct_decrease);
                assert_eq!(x.verified, y.verified);
            }
            _ => panic!("N/A mismatch between serial and parallel sweeps"),
        }
    }

    #[test]
    fn parallel_table5_sweep_matches_serial() {
        let serial = run_table5_jobs(false, None, 1);
        let par = run_table5_jobs(false, None, 4);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            assert_eq!(a.benchmark.name, b.benchmark.name);
            for (ca, cb) in a.cells.iter().zip(&b.cells) {
                same_metrics_ignoring_time(ca, cb);
            }
        }
    }

    #[test]
    fn parallel_sweep_stamps_row_major_job_ids() {
        let sink = Arc::new(qsyn_trace::TableSink::new());
        let rows = run_table5_jobs(false, Some(sink.clone()), 4);
        let n_devices = devices::ibm_devices().len();
        let n_jobs = rows.len() * n_devices;
        let events = sink.events();
        assert!(!events.is_empty());
        for e in &events {
            let job = e.job.expect("sweep events carry a job id") as usize;
            assert!(job < n_jobs, "job {job} out of range {n_jobs}");
        }
        // Per job, events arrive in Fig. 2 order even when the stream as a
        // whole is interleaved across workers.
        for job in 0..n_jobs as u64 {
            let passes: Vec<_> = events
                .iter()
                .filter(|e| e.job == Some(job))
                .map(|e| e.pass)
                .collect();
            let order = qsyn_trace::Pass::FIG2_ORDER;
            let mut cursor = 0;
            for p in &passes {
                let pos = order[cursor..]
                    .iter()
                    .position(|o| o == p)
                    .expect("per-job passes follow Fig. 2 order");
                cursor += pos + 1;
            }
        }
    }

    #[test]
    fn map_benchmark_returns_none_for_na() {
        let d = devices::ibmqx2();
        let mut too_wide = Circuit::new(6);
        too_wide.push(qsyn_gate::Gate::x(5));
        assert!(map_benchmark(&too_wide, &d, false).is_none());
    }

    #[test]
    fn tech_independent_small_function() {
        let f = crate::stg::stg_by_id("3").unwrap();
        let (t, g, cost) = tech_independent_metrics(&f.cascade());
        // #3 is the linear function x0: no T gates at all.
        assert_eq!(t, 0);
        assert!(g <= 3);
        assert!(cost <= 4.0);
    }

    #[test]
    fn average_pct_ignores_na() {
        let cells: Vec<Cell> = vec![
            Some(MappingMetrics {
                unopt: (0, 0, 10.0),
                opt: (0, 0, 5.0),
                pct_decrease: 50.0,
                verified: true,
                seconds: 0.0,
            }),
            None,
        ];
        let rows: Vec<&[Cell]> = vec![&cells];
        let avg = average_pct_per_device(&rows, 2);
        assert_eq!(avg, vec![50.0, 0.0]);
    }

    #[test]
    fn render_table7_lists_all_twenty_gates() {
        let text = render_table7();
        // 2 header lines + 20 gate rows (4 per benchmark, 5 benchmarks).
        assert_eq!(text.lines().count(), 22);
        assert!(text.contains("T6_b"));
        assert!(text.contains("q85"));
    }
}
