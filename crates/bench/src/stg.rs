//! The "Optimal Single-target Gates" benchmark suite (paper Table 3).
//!
//! The original suite \[23\] (quantumlib.stationq.com, now offline) provided
//! proven-optimal Clifford+T `.qc` circuits for single-target gates of 3-6
//! qubits, named by the hexadecimal truth table of their control function.
//! This module regenerates circuits for the *same functions* with the
//! workspace's own ESOP front-end, so the experiment exercises identical
//! code paths; absolute technology-independent gate counts differ from the
//! (optimal) originals, which EXPERIMENTS.md records side by side.

use qsyn_circuit::Circuit;
use qsyn_esop::{synthesize_single_target, TruthTable};

/// One entry of the Table 3 suite: the paper's function id, its qubit
/// count, and the technology-independent reference metrics the paper lists
/// (T-count, gate count, Eqn. 2 cost of the optimal circuit from \[23\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StgFunction {
    /// Paper id, e.g. `"033f"` (printed as `#033f`).
    pub id: &'static str,
    /// Total qubits of the single-target gate (control variables + 1).
    pub qubits: usize,
    /// Paper's technology-independent T-count.
    pub paper_t: usize,
    /// Paper's technology-independent total gate count.
    pub paper_gates: usize,
    /// Paper's technology-independent Eqn. 2 cost.
    pub paper_cost: f64,
}

/// The 24 functions of paper Table 3, in row order.
pub const STG_FUNCTIONS: [StgFunction; 24] = [
    StgFunction { id: "1", qubits: 3, paper_t: 7, paper_gates: 17, paper_cost: 22.25 },
    StgFunction { id: "3", qubits: 3, paper_t: 0, paper_gates: 3, paper_cost: 3.25 },
    StgFunction { id: "01", qubits: 5, paper_t: 15, paper_gates: 51, paper_cost: 63.75 },
    StgFunction { id: "03", qubits: 4, paper_t: 7, paper_gates: 20, paper_cost: 25.25 },
    StgFunction { id: "07", qubits: 5, paper_t: 16, paper_gates: 60, paper_cost: 75.0 },
    StgFunction { id: "0f", qubits: 4, paper_t: 0, paper_gates: 3, paper_cost: 3.25 },
    StgFunction { id: "17", qubits: 4, paper_t: 7, paper_gates: 43, paper_cost: 51.75 },
    StgFunction { id: "0001", qubits: 6, paper_t: 40, paper_gates: 186, paper_cost: 233.0 },
    StgFunction { id: "0003", qubits: 6, paper_t: 15, paper_gates: 66, paper_cost: 83.0 },
    StgFunction { id: "0007", qubits: 6, paper_t: 47, paper_gates: 246, paper_cost: 304.25 },
    StgFunction { id: "000f", qubits: 5, paper_t: 7, paper_gates: 21, paper_cost: 27.5 },
    StgFunction { id: "0017", qubits: 6, paper_t: 23, paper_gates: 129, paper_cost: 159.0 },
    StgFunction { id: "001f", qubits: 6, paper_t: 43, paper_gates: 194, paper_cost: 244.5 },
    StgFunction { id: "003f", qubits: 6, paper_t: 16, paper_gates: 73, paper_cost: 92.25 },
    StgFunction { id: "007f", qubits: 6, paper_t: 40, paper_gates: 189, paper_cost: 238.5 },
    StgFunction { id: "00ff", qubits: 5, paper_t: 0, paper_gates: 3, paper_cost: 3.25 },
    StgFunction { id: "0117", qubits: 6, paper_t: 79, paper_gates: 401, paper_cost: 498.0 },
    StgFunction { id: "011f", qubits: 6, paper_t: 27, paper_gates: 136, paper_cost: 169.5 },
    StgFunction { id: "013f", qubits: 6, paper_t: 48, paper_gates: 240, paper_cost: 299.5 },
    StgFunction { id: "017f", qubits: 6, paper_t: 80, paper_gates: 359, paper_cost: 455.0 },
    StgFunction { id: "033f", qubits: 5, paper_t: 7, paper_gates: 49, paper_cost: 60.75 },
    StgFunction { id: "0356", qubits: 5, paper_t: 12, paper_gates: 42, paper_cost: 54.75 },
    StgFunction { id: "0357", qubits: 6, paper_t: 61, paper_gates: 266, paper_cost: 336.5 },
    StgFunction { id: "035f", qubits: 6, paper_t: 23, paper_gates: 107, paper_cost: 135.5 },
];

impl StgFunction {
    /// The control function's truth table (hex id over `qubits - 1`
    /// variables).
    pub fn truth_table(&self) -> TruthTable {
        TruthTable::from_hex(self.qubits - 1, self.id)
            .expect("table 3 ids are valid hex of the right width")
    }

    /// Synthesizes the technology-independent single-target gate cascade
    /// for this function (NOT / CNOT / Toffoli / generalized Toffoli).
    pub fn cascade(&self) -> Circuit {
        synthesize_single_target(&self.truth_table()).with_name(format!("#{}", self.id))
    }
}

/// Looks up a Table 3 function by paper id.
pub fn stg_by_id(id: &str) -> Option<StgFunction> {
    STG_FUNCTIONS.iter().copied().find(|f| f.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_24_functions_like_table3() {
        assert_eq!(STG_FUNCTIONS.len(), 24);
    }

    #[test]
    fn hex_ids_parse_at_declared_widths() {
        for f in STG_FUNCTIONS {
            let tt = f.truth_table();
            assert_eq!(tt.n_vars(), f.qubits - 1, "#{}", f.id);
        }
    }

    #[test]
    fn hex_id_width_matches_qubit_count() {
        // The id encodes 2^(qubits-1) table bits: 4 hex digits for 5
        // vars... exactly ceil(2^(n-1)/4) digits in the paper's naming.
        for f in STG_FUNCTIONS {
            let rows = 1usize << (f.qubits - 1);
            assert!(f.id.len() * 4 <= rows.max(4), "#{} digits", f.id);
        }
    }

    #[test]
    fn cascades_realize_their_functions() {
        for f in STG_FUNCTIONS.iter().filter(|f| f.qubits <= 5) {
            let tt = f.truth_table();
            let c = f.cascade();
            assert_eq!(c.n_qubits(), f.qubits);
            let n = tt.n_vars();
            for x in 0..(1u64 << n) {
                let out = c.permute_basis(x << 1);
                assert_eq!(out, x << 1 | tt.eval(x) as u64, "#{} at {x}", f.id);
            }
        }
    }

    #[test]
    fn six_qubit_cascades_realize_their_functions() {
        for f in STG_FUNCTIONS.iter().filter(|f| f.qubits == 6).take(4) {
            let tt = f.truth_table();
            let c = f.cascade();
            for x in 0..32u64 {
                let out = c.permute_basis(x << 1);
                assert_eq!(out, x << 1 | tt.eval(x) as u64, "#{}", f.id);
            }
        }
    }

    #[test]
    fn trivial_functions_are_tiny() {
        // #3 is f = !x0 — paper reports 0 T, 3 gates, cost 3.25, and the
        // negative-polarity single-cube cascade gives exactly that.
        let c = stg_by_id("3").unwrap().cascade();
        assert_eq!(c.len(), 3, "X, CNOT, X");
        assert_eq!(c.stats().t_count, 0);
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(stg_by_id("033f").unwrap().qubits, 5);
        assert!(stg_by_id("zzz").is_none());
    }
}
