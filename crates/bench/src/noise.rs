//! Monte-Carlo noise estimation: connect the device's CNOT error
//! annotations to an empirical success rate by Pauli-twirled error
//! injection — the simulation-side companion of [`qsyn_arch::FidelityCost`].

use qsyn_arch::Device;
use qsyn_circuit::Circuit;
use qsyn_gate::{Gate, SingleOp};
use qsyn_core::DEFAULT_CNOT_ERROR;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error probability assumed for one-qubit gates (annotations cover only
/// couplings).
pub const SINGLE_QUBIT_ERROR: f64 = 1e-3;

/// One noisy execution: after each gate, each touched line suffers a
/// uniformly random Pauli (X, Y or Z) with the gate's error probability.
/// Returns the noisy circuit.
pub fn inject_pauli_noise(circuit: &Circuit, device: &Device, rng: &mut StdRng) -> Circuit {
    let mut noisy = Circuit::new(circuit.n_qubits());
    for g in circuit.gates() {
        noisy.push(g.clone());
        let p = match g {
            Gate::Cx { control, target } if device.has_coupling(*control, *target) => device
                .cnot_error(*control, *target)
                .unwrap_or(DEFAULT_CNOT_ERROR),
            Gate::Cx { .. } => DEFAULT_CNOT_ERROR, // unrouted placement
            _ => SINGLE_QUBIT_ERROR,
        };
        for q in g.qubits() {
            if rng.gen_bool(p) {
                let pauli = match rng.gen_range(0..3u8) {
                    0 => SingleOp::X,
                    1 => SingleOp::Y,
                    _ => SingleOp::Z,
                };
                noisy.push(Gate::single(pauli, q));
            }
        }
    }
    noisy
}

/// Estimated probability that a noisy run of a *classical* circuit still
/// produces the correct basis output for the given input, over `shots`
/// Pauli-twirled executions.
///
/// # Panics
///
/// Panics if the circuit is wider than 64 lines or non-classical after
/// noise injection is accounted for (Z errors are phase-only and counted
/// as harmless on classical outputs; X/Y flip bits).
pub fn classical_success_rate(
    circuit: &Circuit,
    device: &Device,
    input: u64,
    shots: usize,
    seed: u64,
) -> f64 {
    assert!(circuit.n_qubits() <= 64, "classical check uses u64 basis");
    let expect = circuit.permute_basis(input);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut good = 0usize;
    for _ in 0..shots {
        let noisy = inject_pauli_noise(circuit, device, &mut rng);
        // Z errors act trivially on basis states; map Y -> X for the
        // classical propagation and drop Z.
        let mut classical = Circuit::new(noisy.n_qubits());
        for g in noisy.gates() {
            match g {
                Gate::Single { op: SingleOp::Y, qubit } => classical.push(Gate::x(*qubit)),
                Gate::Single { op, qubit } if op.is_diagonal() => {
                    let _ = qubit; // phase-only: no classical effect
                }
                other => classical.push(other.clone()),
            }
        }
        if classical.permute_basis(input) == expect {
            good += 1;
        }
    }
    good as f64 / shots as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;

    fn annotated(err: f64) -> Device {
        let mut d = devices::line(4);
        let pairs: Vec<(usize, usize)> = d.couplings().collect();
        for (c, t) in pairs {
            d.set_cnot_error(c, t, err);
        }
        d
    }

    fn chain_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cx(2, 3));
        c
    }

    #[test]
    fn zero_noise_always_succeeds() {
        let d = annotated(0.0);
        // SINGLE_QUBIT_ERROR still applies to 1-qubit gates, so use a
        // CNOT-only circuit and accept the tiny residual.
        let rate = classical_success_rate(&chain_circuit(), &d, 0b1000, 400, 7);
        assert!(rate > 0.99, "rate {rate}");
    }

    #[test]
    fn heavy_noise_mostly_fails() {
        let d = annotated(0.5);
        let rate = classical_success_rate(&chain_circuit(), &d, 0b1000, 400, 7);
        assert!(rate < 0.6, "rate {rate}");
    }

    #[test]
    fn success_rate_decreases_with_noise() {
        let input = 0b1010;
        let mut last = 1.1;
        for err in [0.01, 0.1, 0.3] {
            let rate = classical_success_rate(&chain_circuit(), &annotated(err), input, 600, 42);
            assert!(rate < last, "err {err}: {rate} !< {last}");
            last = rate;
        }
    }

    #[test]
    fn injection_is_seeded_and_deterministic() {
        let d = annotated(0.2);
        let c = chain_circuit();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let a = inject_pauli_noise(&c, &d, &mut r1);
        let b = inject_pauli_noise(&c, &d, &mut r2);
        assert_eq!(a.gates(), b.gates());
        assert!(a.len() >= c.len());
    }

    #[test]
    fn z_errors_do_not_hurt_classical_outputs() {
        // A device with error 1.0 would always inject; but Z injections
        // are filtered as harmless. Construct manually: circuit of only a
        // CNOT and count that pure-Z runs succeed.
        let d = annotated(0.0);
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 1));
        // With zero CNOT error nothing is injected at all: rate 1.
        let rate = classical_success_rate(&c, &d, 0b1000, 100, 1);
        assert!((rate - 1.0).abs() < 1e-9);
    }
}
