//! Differential tests for the sparse [`DistanceOracle`]: routing through
//! the oracle must be byte-identical to routing through the dense
//! [`RoutingTable`] (and the bare uncached search) on every built-in
//! device, under both objectives, for every strategy — the dense/sparse
//! split is a memory-layout decision, never a behavioral one. Plus the
//! large-device paths the oracle exists for: generated-family compiles
//! and streaming.

use qsyn_arch::{devices, Device};
use qsyn_circuit::Circuit;
use qsyn_core::{
    routing_lookup, routing_oracle, routing_table, CacheMode, Compiler, RouteRequest,
    RouteStrategyKind, RoutingLookup, RoutingObjective, Verification, SPARSE_ORACLE_MIN_QUBITS,
};
use qsyn_gate::Gate;

/// A routing workload touching distant pairs, repeats, reversals, and
/// interleaved one-qubit gates, scaled to the device width.
fn mixed_workload(d: &Device) -> Circuit {
    let n = d.n_qubits();
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    c.push(Gate::cx(0, n - 1));
    c.push(Gate::t(n - 1));
    c.push(Gate::cx(0, n - 1));
    c.push(Gate::cx(n - 1, 0));
    c.push(Gate::x(n / 2));
    c.push(Gate::cx(n / 2, 0));
    c.push(Gate::cx(1, 2));
    c
}

#[test]
fn oracle_routing_is_byte_identical_on_every_device_objective_and_strategy() {
    for d in devices::all_devices() {
        let spec = mixed_workload(&d);
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let (table, _) = routing_table(&d, objective);
            let (oracle, _) = routing_oracle(&d, objective);
            for kind in RouteStrategyKind::CONCRETE {
                let strategy = kind.instance();
                let bare = strategy
                    .route(&RouteRequest::new(&spec, &d).with_objective(objective))
                    .unwrap_or_else(|e| panic!("{} {objective:?}: {e}", d.name()));
                let dense = strategy
                    .route(
                        &RouteRequest::new(&spec, &d)
                            .with_objective(objective)
                            .with_table(table.clone()),
                    )
                    .unwrap();
                let sparse = strategy
                    .route(
                        &RouteRequest::new(&spec, &d)
                            .with_objective(objective)
                            .with_oracle(oracle.clone()),
                    )
                    .unwrap();
                assert_eq!(
                    dense.circuit.gates(),
                    bare.circuit.gates(),
                    "table diverged from bare on {} {objective:?} via {}",
                    d.name(),
                    kind.name()
                );
                assert_eq!(
                    sparse.circuit.gates(),
                    dense.circuit.gates(),
                    "oracle diverged from table on {} {objective:?} via {}",
                    d.name(),
                    kind.name()
                );
                assert_eq!(sparse.swaps_inserted, dense.swaps_inserted);
                assert_eq!(sparse.gates_rerouted, dense.gates_rerouted);
                assert_eq!(sparse.restoration_swaps, dense.restoration_swaps);
            }
        }
    }
}

#[test]
fn sparse_compile_matches_the_uncached_legacy_on_a_generated_device() {
    // lnn(n >= threshold) selects the sparse oracle under the default
    // cache mode; CacheMode::Off runs the legacy per-gate search. Both
    // must produce the same bytes — the acceptance bar for swapping the
    // dense table out from under big devices.
    let d = devices::lnn(SPARSE_ORACLE_MIN_QUBITS + 2);
    assert!(matches!(
        routing_lookup(&d, RoutingObjective::FewestSwaps).0,
        RoutingLookup::Sparse(_)
    ));
    let mut spec = Circuit::new(24).with_name("lnn-diff");
    spec.push(Gate::toffoli(0, 10, 20));
    spec.push(Gate::cx(23, 3));
    spec.push(Gate::h(7));
    spec.push(Gate::cx(3, 23));
    for strategy in [RouteStrategyKind::Ctr, RouteStrategyKind::Lookahead] {
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let cached = Compiler::new(d.clone())
                .with_route_strategy(strategy)
                .with_routing(objective)
                .with_verification(Verification::None)
                .compile(&spec)
                .unwrap();
            let off = Compiler::new(d.clone())
                .with_route_strategy(strategy)
                .with_routing(objective)
                .with_verification(Verification::None)
                .with_cache(CacheMode::Off)
                .compile(&spec)
                .unwrap();
            assert_eq!(
                cached.unoptimized.gates(),
                off.unoptimized.gates(),
                "{} {objective:?}",
                strategy.name()
            );
            assert_eq!(cached.optimized.gates(), off.optimized.gates());
            // The route event reports the oracle's activity.
            let route = cached.metrics().pass(qsyn_trace::Pass::Route).unwrap();
            assert!(route.counter("oracle_misses").is_some(), "{}", strategy.name());
        }
    }
}

#[test]
fn generated_grid_compiles_and_verifies_through_the_oracle() {
    let d = devices::grid_calibrated(16, 16); // 256 qubits: sparse territory
    let mut spec = Circuit::new(40).with_name("grid-smoke");
    spec.push(Gate::h(0));
    spec.push(Gate::cx(0, 39));
    spec.push(Gate::toffoli(5, 17, 31));
    spec.push(Gate::cx(39, 0));
    let r = Compiler::new(d)
        .with_route_strategy(RouteStrategyKind::Lookahead)
        .compile(&spec)
        .unwrap();
    assert_eq!(r.verified, Some(true));
    let route = r.metrics().pass(qsyn_trace::Pass::Route).unwrap();
    assert!(route.counter("oracle_misses").unwrap() > 0.0);
}

#[test]
fn streaming_compile_on_a_generated_device_verifies_every_window() {
    let n = SPARSE_ORACLE_MIN_QUBITS + 22;
    let d = devices::lnn(n);
    // A nearest-neighbor-heavy stream with some distant pairs mixed in.
    let gates: Vec<Gate> = (0..400)
        .map(|i| match i % 5 {
            0 => Gate::h(i % n),
            1 => Gate::cx(i % (n - 1), i % (n - 1) + 1),
            2 => Gate::t((i * 7) % n),
            3 => Gate::cx((i * 13) % n, (i * 13 + 9) % n),
            _ => Gate::cx((i + 1) % (n - 1) + 1, (i + 1) % (n - 1)),
        })
        .filter(|g| match g {
            Gate::Cx { control, target } => control != target,
            _ => true,
        })
        .collect();
    let mut emitted = 0usize;
    let summary = Compiler::new(d)
        .with_budget(qsyn_core::CompileBudget::default().with_node_budget(1 << 20))
        .compile_stream(n, 64, gates.iter().cloned(), |_| emitted += 1)
        .unwrap();
    assert_eq!(summary.gates_in, gates.len());
    assert_eq!(summary.gates_out, emitted);
    assert_eq!(summary.windows, gates.len().div_ceil(64));
    assert_eq!(summary.unverified_windows, 0);
    assert_eq!(summary.verified_windows, summary.windows);
    assert!(
        matches!(summary.verdict, qsyn_trace::Verdict::Verified { ref method } if method == "windowed-miter"),
        "{:?}",
        summary.verdict
    );
    assert!(summary.oracle_hits + summary.oracle_misses > 0);
    assert!(summary.peak_resident_gates < summary.gates_out);
}
