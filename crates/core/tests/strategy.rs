//! Differential tests for the pluggable routing strategies: every
//! strategy's output must be QMDD-equivalent to its input on every
//! built-in device under both routing objectives, and the compiler must
//! produce identical results whichever way a strategy is selected.

use qsyn_arch::{devices, CostModel, Device, RouteHint, TransmonCost};
use qsyn_circuit::Circuit;
use qsyn_core::{
    routing_table, CompileBudget, CompileError, Compiler, LazySynthStrategy, LookaheadStrategy,
    RouteRequest, RouteStrategyKind, RoutingObjective, RoutingStrategy, SwapStrategy,
};
use qsyn_gate::Gate;
use qsyn_qmdd::{circuits_equal, equivalent_miter};

/// A routing workload touching distant pairs, repeats, reversals, and
/// interleaved one-qubit gates, scaled to the device width.
fn mixed_workload(d: &Device) -> Circuit {
    let n = d.n_qubits();
    let mut c = Circuit::new(n);
    c.push(Gate::h(0));
    c.push(Gate::cx(0, n - 1)); // maximal-distance pair
    c.push(Gate::t(n - 1));
    c.push(Gate::cx(0, n - 1)); // repeat: rewards a persistent layout
    c.push(Gate::cx(n - 1, 0)); // reversed orientation
    c.push(Gate::x(n / 2));
    c.push(Gate::cx(n / 2, 0));
    c.push(Gate::cx(1, 2));
    c
}

/// QMDD equivalence sized to the register: canonical QMDDs up to 16
/// qubits, the interleaved miter beyond (the qc96 fabric).
fn equivalent_for(d: &Device, spec: &Circuit, routed: &Circuit) -> bool {
    if d.n_qubits() <= 16 {
        circuits_equal(spec, routed)
    } else {
        equivalent_miter(spec, routed).equivalent
    }
}

#[test]
fn lookahead_is_qmdd_equivalent_on_every_device_and_objective() {
    for d in devices::all_devices() {
        let spec = mixed_workload(&d);
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let out = LookaheadStrategy::default()
                .route(&RouteRequest::new(&spec, &d).with_objective(objective))
                .unwrap_or_else(|e| panic!("{} {objective:?}: {e}", d.name()));
            assert!(
                equivalent_for(&d, &spec, &out.circuit),
                "lookahead output diverged on {} under {objective:?}",
                d.name()
            );
            for g in out.circuit.gates() {
                assert!(d.supports(g), "illegal {g} on {}", d.name());
            }
        }
    }
}

#[test]
fn lazy_synth_is_qmdd_equivalent_on_every_device_and_objective() {
    for d in devices::all_devices() {
        let spec = mixed_workload(&d);
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let out = LazySynthStrategy::default()
                .route(&RouteRequest::new(&spec, &d).with_objective(objective))
                .unwrap_or_else(|e| panic!("{} {objective:?}: {e}", d.name()));
            assert!(
                equivalent_for(&d, &spec, &out.circuit),
                "lazy-synth output diverged on {} under {objective:?}",
                d.name()
            );
        }
    }
}

#[test]
fn table_and_tableless_lookahead_agree_everywhere() {
    // The shared routing table only supplies distances; using it must not
    // change what the lookahead emits.
    for d in devices::all_devices() {
        let spec = mixed_workload(&d);
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let bare = LookaheadStrategy::default()
                .route(&RouteRequest::new(&spec, &d).with_objective(objective))
                .unwrap();
            let (table, _) = routing_table(&d, objective);
            let cached = LookaheadStrategy::default()
                .route(
                    &RouteRequest::new(&spec, &d)
                        .with_objective(objective)
                        .with_table(table),
                )
                .unwrap();
            assert_eq!(
                bare.circuit.gates(),
                cached.circuit.gates(),
                "table changed lookahead output on {} under {objective:?}",
                d.name()
            );
        }
    }
}

#[test]
fn compiler_with_every_strategy_verifies() {
    // Full pipeline: each selectable strategy compiles a Toffoli and
    // passes the built-in QMDD verification.
    let mut spec = Circuit::new(3).with_name("tof");
    spec.push(Gate::toffoli(0, 1, 2));
    for kind in [
        RouteStrategyKind::Ctr,
        RouteStrategyKind::Lookahead,
        RouteStrategyKind::LazySynth,
        RouteStrategyKind::Auto,
    ] {
        let r = Compiler::new(devices::ibmqx3())
            .with_route_strategy(kind)
            .compile(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(r.verified, Some(true), "{} failed verification", kind.name());
    }
}

#[test]
fn compiler_route_event_carries_the_strategy_tag() {
    let mut spec = Circuit::new(3).with_name("tag-probe");
    spec.push(Gate::toffoli(2, 1, 0));
    for kind in RouteStrategyKind::CONCRETE {
        let r = Compiler::new(devices::ibmqx4())
            .with_route_strategy(kind)
            .compile(&spec)
            .unwrap();
        let route = r.metrics().pass(qsyn_trace::Pass::Route).unwrap();
        let tag = route.counter("strategy").expect("route events carry a strategy tag");
        assert_eq!(
            qsyn_trace::route_strategy_name(tag),
            Some(kind.name()),
            "wrong tag for {}",
            kind.name()
        );
    }
}

#[test]
fn auto_strategy_follows_the_cost_models_hint() {
    // TransmonCost hints Swaps -> Auto resolves to the lookahead router;
    // the route event's tag records the *resolved* strategy.
    let mut spec = Circuit::new(4).with_name("auto-probe");
    spec.push(Gate::cx(0, 3));
    spec.push(Gate::cx(0, 3));
    let r = Compiler::new(devices::ibmqx5())
        .with_route_strategy(RouteStrategyKind::Auto)
        .compile(&spec)
        .unwrap();
    let route = r.metrics().pass(qsyn_trace::Pass::Route).unwrap();
    assert_eq!(
        qsyn_trace::route_strategy_name(route.counter("strategy").unwrap()),
        Some("lookahead")
    );
    assert_eq!(TransmonCost::default().route_hint(), RouteHint::Swaps);
}

#[test]
fn lookahead_under_the_compiler_respects_swap_caps() {
    let mut spec = Circuit::new(16).with_name("capped-look");
    spec.push(Gate::cx(5, 10));
    spec.push(Gate::cx(0, 14));
    match Compiler::new(devices::ibmqx3())
        .with_route_strategy(RouteStrategyKind::Lookahead)
        .with_budget(CompileBudget::default().with_max_route_swaps(1))
        .compile(&spec)
    {
        Err(CompileError::BudgetExceeded { limit, .. }) => assert_eq!(limit, 1),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    // The cap is recorded on the route event when the compile fits.
    let ok = Compiler::new(devices::ibmqx3())
        .with_route_strategy(RouteStrategyKind::Lookahead)
        .with_budget(CompileBudget::default().with_max_route_swaps(10_000))
        .compile(&spec)
        .unwrap();
    let route = ok.metrics().pass(qsyn_trace::Pass::Route).unwrap();
    assert_eq!(route.counter("swap_cap"), Some(10_000.0));
    let reported = route.counter("swaps_inserted").unwrap()
        + route.counter("restoration_swaps").unwrap_or(0.0);
    assert!(reported <= 10_000.0);
}

#[test]
fn ctr_strategy_selection_is_byte_identical_to_the_default() {
    // `--route-strategy ctr` must not perturb the paper pipeline, under
    // either SwapStrategy.
    let mut spec = Circuit::new(5).with_name("ctr-regress");
    spec.push(Gate::toffoli(0, 2, 4));
    spec.push(Gate::cx(4, 0));
    for swaps in [SwapStrategy::ReturnControl, SwapStrategy::PersistentLayout] {
        let default = Compiler::new(devices::ibmqx4())
            .with_swap_strategy(swaps)
            .compile(&spec)
            .unwrap();
        let explicit = Compiler::new(devices::ibmqx4())
            .with_swap_strategy(swaps)
            .with_route_strategy(RouteStrategyKind::Ctr)
            .compile(&spec)
            .unwrap();
        assert_eq!(default.optimized, explicit.optimized, "{swaps:?}");
        assert_eq!(default.unoptimized, explicit.unoptimized, "{swaps:?}");
    }
}
