//! Cache-key invalidation and differential-routing tests.
//!
//! The compile cache, MCT template memo, and routing-table registry are
//! process-global, so every test here uses a structurally distinct circuit
//! (circuit names do not enter the key): two tests touching the same gate
//! sequence on the same device would otherwise see each other's entries.

use proptest::prelude::*;
use qsyn_arch::{devices, CostModel, Device, TransmonCost, VolumeCost};
use qsyn_circuit::{Circuit, CircuitStats};
use qsyn_core::{
    routing_table, CacheMode, CompileBudget, CompileError, CompileResult, Compiler, CtrStrategy,
    RouteRequest, RoutingObjective, RoutingStrategy,
};
use qsyn_gate::Gate;

/// A memoizing compiler with the given extra configuration.
fn mem_compiler(device: Device, cfg: impl FnOnce(Compiler) -> Compiler) -> Compiler {
    cfg(Compiler::new(device).with_cache(CacheMode::Mem))
}

/// Everything observable about a result except wall-clock timing.
fn assert_results_identical(a: &CompileResult, b: &CompileResult) {
    assert_eq!(a.placement, b.placement);
    assert_eq!(a.placed, b.placed);
    assert_eq!(a.unoptimized, b.unoptimized);
    assert_eq!(a.optimized, b.optimized);
    assert_eq!(a.verified, b.verified);
}

#[test]
fn identical_rerun_hits_bit_identically() {
    // Unique shape for this test: h, cx, toffoli, tdg, cz on 5 lines.
    let mut c = Circuit::new(5);
    c.push(Gate::h(4));
    c.push(Gate::cx(4, 0));
    c.push(Gate::toffoli(0, 1, 2));
    c.push(Gate::tdg(2));
    c.push(Gate::cz(2, 3));

    let compiler = mem_compiler(devices::ibmqx4(), |c| c);
    let cold = compiler.compile(&c).unwrap();
    let warm = compiler.compile(&c).unwrap();
    assert!(!cold.metrics().cache_hit, "first compile must miss");
    assert!(warm.metrics().cache_hit, "identical rerun must hit");
    assert_results_identical(&cold, &warm);
}

#[test]
fn every_config_knob_invalidates_the_key() {
    // Unique shape: x, toffoli, cx, t on 5 lines.
    let mut c = Circuit::new(5);
    c.push(Gate::x(3));
    c.push(Gate::toffoli(2, 3, 4));
    c.push(Gate::cx(4, 1));
    c.push(Gate::t(0));

    // Populate the cache under the baseline configuration.
    let base = mem_compiler(devices::ibmqx4(), |c| c);
    assert!(!base.compile(&c).unwrap().metrics().cache_hit);
    assert!(base.compile(&c).unwrap().metrics().cache_hit);

    // Each variant changes exactly one key ingredient; all must miss even
    // though the baseline entry is resident.
    let variants: Vec<(&str, Compiler)> = vec![
        ("device", mem_compiler(devices::ibmqx2(), |c| c)),
        (
            "cost model",
            mem_compiler(devices::ibmqx4(), |c| c.with_cost_model(Box::new(VolumeCost))),
        ),
        (
            "budget",
            mem_compiler(devices::ibmqx4(), |c| {
                c.with_budget(CompileBudget::unlimited().with_max_route_swaps(10_000))
            }),
        ),
        (
            "routing objective",
            mem_compiler(devices::ibmqx4(), |c| {
                c.with_routing(RoutingObjective::HighestFidelity)
            }),
        ),
        (
            "optimization level",
            mem_compiler(devices::ibmqx4(), |c| c.with_optimization(false)),
        ),
    ];
    for (knob, compiler) in variants {
        let r = compiler.compile(&c).unwrap();
        assert!(!r.metrics().cache_hit, "changed {knob} must miss the cache");
        // And the variant's own entry is now resident.
        assert!(
            compiler.compile(&c).unwrap().metrics().cache_hit,
            "rerun under changed {knob} must hit its own entry"
        );
    }

    // The baseline entry survived all of the above.
    assert!(base.compile(&c).unwrap().metrics().cache_hit);
}

#[test]
fn same_named_cost_model_with_different_weights_misses() {
    // Both models report name() == "transmon-eqn2"; only the weights
    // differ, so only CostModel::cache_params separates the keys.
    let mut c = Circuit::new(4);
    c.push(Gate::h(1));
    c.push(Gate::toffoli(1, 3, 0));
    c.push(Gate::t(2));
    c.push(Gate::cx(0, 2));

    let default_weights = mem_compiler(devices::ibmqx4(), |c| c);
    assert!(!default_weights.compile(&c).unwrap().metrics().cache_hit);
    assert!(default_weights.compile(&c).unwrap().metrics().cache_hit);

    let heavy_cnots = mem_compiler(devices::ibmqx4(), |c| {
        c.with_cost_model(Box::new(TransmonCost::new(0.5, 9.0)))
    });
    let r = heavy_cnots.compile(&c).unwrap();
    assert!(
        !r.metrics().cache_hit,
        "same-named model with different weights must miss"
    );
    assert!(heavy_cnots.compile(&c).unwrap().metrics().cache_hit);
    assert!(default_weights.compile(&c).unwrap().metrics().cache_hit);
}

#[test]
fn opaque_cost_model_bypasses_the_mem_cache() {
    // A user-defined model keeps the default cache_params() == None: its
    // parameters are invisible to the key, so memoization must not engage
    // at all rather than collide on the name.
    struct Opaque;
    impl CostModel for Opaque {
        fn cost(&self, s: &CircuitStats) -> f64 {
            s.volume as f64
        }
        fn name(&self) -> &str {
            "opaque"
        }
    }

    let mut c = Circuit::new(4);
    c.push(Gate::x(0));
    c.push(Gate::toffoli(0, 2, 3));
    c.push(Gate::tdg(1));

    let compiler = mem_compiler(devices::ibmqx4(), |c| c.with_cost_model(Box::new(Opaque)));
    assert!(!compiler.compile(&c).unwrap().metrics().cache_hit);
    assert!(
        !compiler.compile(&c).unwrap().metrics().cache_hit,
        "opaque cost model must never be served from the compile cache"
    );
}

#[test]
fn unverified_verdicts_are_not_memoized() {
    // A node budget too small for any ladder rung degrades the verdict to
    // Unverified — a transient outcome that must be recomputed, never
    // replayed from the cache.
    let mut c = Circuit::new(4);
    c.push(Gate::h(3));
    c.push(Gate::toffoli(3, 0, 1));
    c.push(Gate::cx(1, 2));

    let compiler = mem_compiler(devices::ibmqx4(), |c| {
        c.with_budget(CompileBudget::default().with_node_budget(2))
    });
    let first = compiler.compile(&c).unwrap();
    assert!(first.verdict().is_unverified(), "{:?}", first.verdict());
    let second = compiler.compile(&c).unwrap();
    assert!(
        !second.metrics().cache_hit,
        "an unverified result must not be replayed from the cache"
    );
    assert!(second.verdict().is_unverified());
}

#[test]
fn reversed_coupling_direction_invalidates_the_key() {
    // Same name, same qubit count, same undirected topology — only the
    // direction of the 0-1 edge differs, so only the fingerprint of the
    // coupling set separates the two keys.
    let forward = Device::from_coupling_map("dir-probe", 3, &[(0, &[1]), (1, &[2])]);
    let reversed = Device::from_coupling_map("dir-probe", 3, &[(1, &[0, 2])]);

    let mut c = Circuit::new(3);
    c.push(Gate::cx(0, 1));
    c.push(Gate::h(2));
    c.push(Gate::cx(1, 2));
    c.push(Gate::tdg(0));

    let a = mem_compiler(forward, |c| c);
    let b = mem_compiler(reversed, |c| c);
    assert!(!a.compile(&c).unwrap().metrics().cache_hit);
    assert!(
        !b.compile(&c).unwrap().metrics().cache_hit,
        "reversing a coupling direction must miss"
    );
    assert!(a.compile(&c).unwrap().metrics().cache_hit);
    assert!(b.compile(&c).unwrap().metrics().cache_hit);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any circuit compiled twice under `CacheMode::Mem` replays from the
    /// cache with identical outputs. (No cold-miss assertion: two sampled
    /// cases may legitimately collide on the same structural key.)
    #[test]
    fn random_circuits_replay_identically(
        specs in proptest::collection::vec(
            prop_oneof![
                (0usize..5).prop_map(Gate::h),
                (0usize..5).prop_map(Gate::t),
                (0usize..5, 0usize..5)
                    .prop_filter("distinct", |(a, b)| a != b)
                    .prop_map(|(a, b)| Gate::cx(a, b)),
                (0usize..5, 0usize..5, 0usize..5)
                    .prop_filter("distinct", |(a, b, t)| a != b && a != t && b != t)
                    .prop_map(|(a, b, t)| Gate::toffoli(a, b, t)),
            ],
            1..10,
        ),
    ) {
        let mut c = Circuit::new(5);
        for g in specs {
            c.push(g);
        }
        let compiler = mem_compiler(devices::ibmqx4(), |c| c);
        let first = compiler.compile(&c).unwrap();
        let second = compiler.compile(&c).unwrap();
        prop_assert!(second.metrics().cache_hit, "second compile must replay");
        prop_assert_eq!(&first.optimized, &second.optimized);
        prop_assert_eq!(&first.unoptimized, &second.unoptimized);
        prop_assert_eq!(&first.placed, &second.placed);
        prop_assert_eq!(first.verified, second.verified);
    }
}

/// A two-qubit workload stressing every routed pair: all ordered pairs on
/// the small machines, a strided sample on the 96-qubit fabric.
fn routing_workload(d: &Device) -> Circuit {
    let n = d.n_qubits();
    let mut c = Circuit::new(n);
    if n <= 16 {
        for control in 0..n {
            for target in 0..n {
                if control != target {
                    c.push(Gate::cx(control, target));
                }
            }
        }
    } else {
        for i in 0..n {
            c.push(Gate::cx(i, (i * 37 + 11) % n));
        }
    }
    c
}

#[test]
fn table_routing_matches_legacy_on_every_device() {
    for d in devices::all_devices() {
        let workload = routing_workload(&d);
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let legacy = CtrStrategy
                .route(&RouteRequest::new(&workload, &d).with_objective(objective))
                .unwrap();
            let (shared, _) = routing_table(&d, objective);
            let table = CtrStrategy
                .route(
                    &RouteRequest::new(&workload, &d)
                        .with_objective(objective)
                        .with_table(shared),
                )
                .unwrap();
            assert_eq!(
                legacy.circuit.gates(),
                table.circuit.gates(),
                "table routing diverged from legacy on {} under {objective:?}",
                d.name()
            );
            assert_eq!(legacy.swaps_inserted, table.swaps_inserted);
            assert_eq!(legacy.gates_rerouted, table.gates_rerouted);
        }
    }
}

#[test]
fn disconnected_device_is_route_not_found_on_both_paths() {
    // Two 2-qubit islands; 0 and 2 are in different components.
    let split = Device::from_pairs("split-islands", 4, [(0, 1), (2, 3)]);
    let mut c = Circuit::new(4);
    c.push(Gate::cx(0, 2));

    for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
        let (shared, _) = routing_table(&split, objective);
        for result in [
            CtrStrategy.route(&RouteRequest::new(&c, &split).with_objective(objective)),
            CtrStrategy.route(
                &RouteRequest::new(&c, &split)
                    .with_objective(objective)
                    .with_table(shared),
            ),
        ] {
            match result {
                Err(CompileError::RouteNotFound { control, target }) => {
                    assert_eq!((control, target), (0, 2));
                }
                other => panic!("expected RouteNotFound, got {other:?}"),
            }
        }
    }
}
