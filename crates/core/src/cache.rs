//! Layered, content-addressed compilation caching.
//!
//! Re-running the Fig. 2 pipeline over a benchmark sweep repeats an
//! enormous amount of identical work: every CNOT reroute re-runs the same
//! BFS/Dijkstra against the same handful of coupling maps, every wide
//! Toffoli re-derives the same Barenco cascade, and a repeated
//! (circuit, device, options) pair rebuilds the same QMDDs just to reach
//! the same verdict. This module memoizes all three layers behind global,
//! LRU-bounded registries keyed by *content* — structural hashes and
//! device fingerprints — never by identity:
//!
//! 1. **[`RoutingTable`]** — per `(Device, RoutingObjective)`, the full
//!    [`CtrRoute`] for every ordered qubit pair plus all-pairs hop-count
//!    and negative-log-fidelity distance/next-hop matrices, built once by
//!    running the *legacy* CTR search per pair, so table-driven routing is
//!    byte-identical to per-gate search by construction.
//! 2. **Decomposition memo** — Barenco MCT cascades are purely positional,
//!    so one template per (arity, usable-spare-count, strategy) is
//!    synthesized on canonical line indices and instantiated by qubit
//!    substitution.
//! 3. **Compile cache** — whole [`CompileResult`]s keyed by a 128-bit
//!    structural hash of (circuit, device, cost model, budget, options);
//!    a hit replays the recorded pass events with a `cache_hit` marker.
//!
//! Which layers are active is the compiler's [`CacheMode`]; per-layer
//! hit/miss/insert/evict totals are process-global (see [`stats`]) and
//! surface through `--cache-stats` and `bench perf`.

use crate::decompose::DecomposeStrategy;
use crate::error::CompileError;
use crate::route::{ctr_route_with, CtrRoute, RoutingObjective};
use crate::CompileResult;
use qsyn_arch::Device;
use qsyn_gate::Gate;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Which caching layers a [`Compiler`](crate::Compiler) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// No caching at all: every pass recomputes from scratch (the legacy
    /// per-gate searches; kept reachable for differential tests and
    /// benchmarks).
    Off,
    /// The transparent layers only: shared routing tables and the
    /// decomposition memo. Output is byte-identical to [`CacheMode::Off`],
    /// so this is the default.
    #[default]
    Tables,
    /// [`CacheMode::Tables`] plus the whole-compile memo: a repeated
    /// (circuit, device, cost model, budget, options) tuple returns the
    /// memoized [`CompileResult`] with `cache_hit` markers instead of
    /// re-running the pipeline.
    Mem,
}

impl CacheMode {
    /// Parses the `--cache=MODE` CLI value.
    pub fn parse(s: &str) -> Option<CacheMode> {
        match s {
            "off" => Some(CacheMode::Off),
            "tables" => Some(CacheMode::Tables),
            "mem" => Some(CacheMode::Mem),
            _ => None,
        }
    }

    /// Stable lowercase identifier (the `--cache` value that selects it).
    pub fn name(self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::Tables => "tables",
            CacheMode::Mem => "mem",
        }
    }
}

/// Registry bounds: devices seen concurrently in practice are the built-in
/// library plus per-width simulators, and compile results are bounded so a
/// long-running service cannot grow without limit (the PR-3 budget story).
const ROUTING_TABLE_CAP: usize = 32;
const MCT_TEMPLATE_CAP: usize = 256;
const COMPILE_CACHE_CAP: usize = 64;

/// Approximate byte budget shared by each routing registry (tables and
/// oracles separately). Entry *count* alone is not enough once generated
/// devices reach thousands of qubits: a single dense 4096-qubit table is
/// ~1 GiB of routes, so the LRU also accounts approximate bytes per entry
/// and evicts until the total fits.
const ROUTING_BYTE_BUDGET: usize = 256 << 20;

// ---------------------------------------------------------------------------
// A minimal weight-aware LRU map. Eviction scans for the stalest stamp —
// O(len) per eviction, which is irrelevant at these capacities and keeps
// the structure dependency-free. Entries carry an approximate byte weight;
// inserts evict until both the entry-count cap and the optional byte
// budget hold.
// ---------------------------------------------------------------------------

struct LruMap<K, V> {
    cap: usize,
    byte_budget: Option<usize>,
    tick: u64,
    total_bytes: usize,
    map: HashMap<K, (V, u64, usize)>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruMap<K, V> {
    fn new(cap: usize) -> Self {
        assert!(cap > 0, "LRU capacity must be positive");
        LruMap {
            cap,
            byte_budget: None,
            tick: 0,
            total_bytes: 0,
            map: HashMap::new(),
        }
    }

    /// Additionally bounds the sum of entry weights (approximate bytes).
    fn with_byte_budget(cap: usize, bytes: usize) -> Self {
        let mut map = Self::new(cap);
        map.byte_budget = Some(bytes);
        map
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(v, stamp, _)| {
            *stamp = tick;
            v.clone()
        })
    }

    /// Inserts an entry of negligible weight. Returns the eviction count.
    fn insert(&mut self, key: K, value: V) -> u64 {
        self.insert_weighted(key, value, 0)
    }

    /// Inserts an entry of approximately `bytes` weight, evicting
    /// least-recently-used entries until both the count cap and the byte
    /// budget hold. A single entry heavier than the whole budget is still
    /// admitted (after evicting everything else) — refusing it would just
    /// rebuild it on every use. Returns the number of entries evicted.
    ///
    /// Reinserting a present key never evicts other entries: the old entry
    /// is charged off first, so the count cannot grow, and a same-or-lighter
    /// replacement always fits the budget the old entry satisfied. All byte
    /// accounting is saturating — a drifted weight can never underflow the
    /// total and wedge the budget check.
    fn insert_weighted(&mut self, key: K, value: V, bytes: usize) -> u64 {
        self.tick += 1;
        let replacing = if let Some((_, _, old_bytes)) = self.map.remove(&key) {
            self.total_bytes = self.total_bytes.saturating_sub(old_bytes);
            true
        } else {
            false
        };
        let mut evicted = 0;
        let over = |m: &Self| {
            // `>= cap` only when the key is new: a replacement holds the
            // count constant, so it must not evict a victim on a full map.
            (!replacing && m.map.len() >= m.cap)
                || m.map.len() > m.cap
                || m.byte_budget
                    .is_some_and(|budget| m.total_bytes.saturating_add(bytes) > budget)
        };
        while !self.map.is_empty() && over(self) {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a stalest entry");
            let (_, _, freed) = self.map.remove(&oldest).expect("stalest key resides in map");
            self.total_bytes = self.total_bytes.saturating_sub(freed);
            evicted += 1;
        }
        self.total_bytes = self.total_bytes.saturating_add(bytes);
        self.map.insert(key, (value, self.tick, bytes));
        evicted
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    #[cfg(test)]
    fn total_bytes(&self) -> usize {
        self.total_bytes
    }
}

// ---------------------------------------------------------------------------
// Process-global cache statistics.
// ---------------------------------------------------------------------------

// Every per-layer counter is a named metric in the process-wide
// [`qsyn_trace::metrics`] registry, so cache activity shows up live in
// metrics snapshots (serve `--metrics-file`, `{"cmd":"metrics"}` polls)
// rather than only in end-of-run `--cache-stats` renders. The accessor
// caches the `Arc` handle in a `OnceLock`, keeping the bump sites at the
// cost of two relaxed atomic ops after first use.
macro_rules! stat_counters {
    ($($name:ident => $metric:literal),* $(,)?) => {
        $(
            #[allow(non_snake_case)]
            fn $name() -> &'static qsyn_trace::metrics::Counter {
                static CELL: std::sync::OnceLock<std::sync::Arc<qsyn_trace::metrics::Counter>> =
                    std::sync::OnceLock::new();
                CELL.get_or_init(|| qsyn_trace::metrics::global().counter($metric))
            }
        )*
    };
}

stat_counters!(
    ROUTING_BUILDS => "cache.routing_table.builds",
    ROUTING_HITS => "cache.routing_table.hits",
    ROUTING_EVICTIONS => "cache.routing_table.evictions",
    ORACLE_BUILDS => "cache.oracle.builds",
    ORACLE_HITS => "cache.oracle.hits",
    ORACLE_EVICTIONS => "cache.oracle.evictions",
    DECOMPOSE_LOOKUPS => "cache.decompose.lookups",
    DECOMPOSE_HITS => "cache.decompose.hits",
    DECOMPOSE_MISSES => "cache.decompose.misses",
    DECOMPOSE_EVICTIONS => "cache.decompose.evictions",
    COMPILE_LOOKUPS => "cache.compile.lookups",
    COMPILE_HITS => "cache.compile.hits",
    COMPILE_MISSES => "cache.compile.misses",
    COMPILE_INSERTS => "cache.compile.inserts",
    COMPILE_EVICTIONS => "cache.compile.evictions",
    DISK_LOOKUPS => "cache.disk.lookups",
    DISK_HITS => "cache.disk.hits",
    DISK_MISSES => "cache.disk.misses",
    DISK_WRITES => "cache.disk.writes",
    DISK_QUARANTINES => "cache.disk.quarantines",
    DISK_EVICTED_ENTRIES => "cache.disk.evicted_entries",
    DISK_EVICTED_BYTES => "cache.disk.evicted_bytes",
);

/// Counter bumps for the on-disk persistence tier (`crate::persist`).
/// Every load outcome — hit, miss, or quarantine — also counts one disk
/// lookup, so `hits + misses + quarantines == lookups` holds by
/// construction (`qsyn check-metrics` cross-checks it).
pub(crate) fn note_disk_hit() {
    DISK_LOOKUPS().inc();
    DISK_HITS().inc();
}
pub(crate) fn note_disk_miss() {
    DISK_LOOKUPS().inc();
    DISK_MISSES().inc();
}
pub(crate) fn note_disk_write() {
    DISK_WRITES().inc();
}
pub(crate) fn note_disk_quarantine() {
    DISK_LOOKUPS().inc();
    DISK_QUARANTINES().inc();
}
pub(crate) fn note_disk_eviction(entries: u64, bytes: u64) {
    DISK_EVICTED_ENTRIES().add(entries);
    DISK_EVICTED_BYTES().add(bytes);
}

/// A point-in-time copy of the process-global per-layer cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStatsSnapshot {
    /// Routing tables built from scratch (one legacy search per pair).
    pub routing_tables_built: u64,
    /// Routing-table registry hits (a table was reused).
    pub routing_table_hits: u64,
    /// Routing tables evicted by the LRU bound.
    pub routing_table_evictions: u64,
    /// Sparse distance oracles built from scratch.
    pub routing_oracles_built: u64,
    /// Oracle registry hits (an oracle was reused).
    pub routing_oracle_hits: u64,
    /// Oracles evicted by the LRU bound.
    pub routing_oracle_evictions: u64,
    /// MCT decomposition templates served from the memo.
    pub decompose_memo_hits: u64,
    /// MCT decomposition templates synthesized on a miss.
    pub decompose_memo_misses: u64,
    /// Templates evicted by the LRU bound.
    pub decompose_memo_evictions: u64,
    /// Whole-compile cache hits.
    pub compile_hits: u64,
    /// Whole-compile cache misses (lookups that ran the pipeline).
    pub compile_misses: u64,
    /// Compile results inserted after a miss.
    pub compile_inserts: u64,
    /// Compile results evicted by the LRU bound.
    pub compile_evictions: u64,
    /// Disk-tier hits: compile results loaded and validated from the
    /// on-disk persistence layer (see `qsyn_core::persist`).
    pub disk_hits: u64,
    /// Disk-tier misses: keys with no readable entry on disk.
    pub disk_misses: u64,
    /// Compile results written to the disk tier.
    pub disk_writes: u64,
    /// Corrupted, truncated, stale or mismatched disk entries quarantined
    /// instead of trusted.
    pub disk_quarantines: u64,
    /// Disk entries deleted by directory eviction (`--cache-max-bytes` /
    /// `--cache-max-age`).
    pub disk_evicted_entries: u64,
    /// Bytes reclaimed by directory eviction.
    pub disk_evicted_bytes: u64,
}

impl CacheStatsSnapshot {
    /// Counter deltas relative to an earlier snapshot (saturating, so a
    /// mismatched pair never underflows).
    pub fn since(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            routing_tables_built: self
                .routing_tables_built
                .saturating_sub(earlier.routing_tables_built),
            routing_table_hits: self
                .routing_table_hits
                .saturating_sub(earlier.routing_table_hits),
            routing_table_evictions: self
                .routing_table_evictions
                .saturating_sub(earlier.routing_table_evictions),
            routing_oracles_built: self
                .routing_oracles_built
                .saturating_sub(earlier.routing_oracles_built),
            routing_oracle_hits: self
                .routing_oracle_hits
                .saturating_sub(earlier.routing_oracle_hits),
            routing_oracle_evictions: self
                .routing_oracle_evictions
                .saturating_sub(earlier.routing_oracle_evictions),
            decompose_memo_hits: self
                .decompose_memo_hits
                .saturating_sub(earlier.decompose_memo_hits),
            decompose_memo_misses: self
                .decompose_memo_misses
                .saturating_sub(earlier.decompose_memo_misses),
            decompose_memo_evictions: self
                .decompose_memo_evictions
                .saturating_sub(earlier.decompose_memo_evictions),
            compile_hits: self.compile_hits.saturating_sub(earlier.compile_hits),
            compile_misses: self.compile_misses.saturating_sub(earlier.compile_misses),
            compile_inserts: self.compile_inserts.saturating_sub(earlier.compile_inserts),
            compile_evictions: self
                .compile_evictions
                .saturating_sub(earlier.compile_evictions),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            disk_misses: self.disk_misses.saturating_sub(earlier.disk_misses),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            disk_quarantines: self.disk_quarantines.saturating_sub(earlier.disk_quarantines),
            disk_evicted_entries: self
                .disk_evicted_entries
                .saturating_sub(earlier.disk_evicted_entries),
            disk_evicted_bytes: self
                .disk_evicted_bytes
                .saturating_sub(earlier.disk_evicted_bytes),
        }
    }

    /// Hit rate of a (hits, misses) pair; 0 when nothing was looked up.
    fn rate(hits: u64, misses: u64) -> f64 {
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Decomposition-memo hit rate in `[0, 1]`.
    pub fn decompose_hit_rate(&self) -> f64 {
        Self::rate(self.decompose_memo_hits, self.decompose_memo_misses)
    }

    /// Compile-cache hit rate in `[0, 1]`.
    pub fn compile_hit_rate(&self) -> f64 {
        Self::rate(self.compile_hits, self.compile_misses)
    }

    /// One-line-per-layer human-readable rendering (the `--cache-stats`
    /// output). Every layer's full counter set — including all four disk
    /// counters and the eviction totals — is printed unconditionally,
    /// even when the counters are all zero (a cold directory), so log
    /// consumers can grep for a stable shape.
    pub fn render(&self) -> String {
        format!(
            "cache stats:\n  routing tables: {} built, {} reused, {} evicted\n  \
             sparse oracles: {} built, {} reused, {} evicted\n  \
             decompose memo: {} hits, {} misses ({:.0}% hit rate), {} evicted\n  \
             compile cache : {} hits, {} misses ({:.0}% hit rate), {} inserted, {} evicted\n  \
             disk tier     : {} hits, {} misses, {} written, {} quarantined, \
             {} evicted ({} bytes reclaimed)",
            self.routing_tables_built,
            self.routing_table_hits,
            self.routing_table_evictions,
            self.routing_oracles_built,
            self.routing_oracle_hits,
            self.routing_oracle_evictions,
            self.decompose_memo_hits,
            self.decompose_memo_misses,
            self.decompose_hit_rate() * 100.0,
            self.decompose_memo_evictions,
            self.compile_hits,
            self.compile_misses,
            self.compile_hit_rate() * 100.0,
            self.compile_inserts,
            self.compile_evictions,
            self.disk_hits,
            self.disk_misses,
            self.disk_writes,
            self.disk_quarantines,
            self.disk_evicted_entries,
            self.disk_evicted_bytes,
        )
    }
}

/// Reads the process-global per-layer cache counters (a typed view over
/// the `cache.*` metrics in [`qsyn_trace::metrics::global`]).
pub fn stats() -> CacheStatsSnapshot {
    CacheStatsSnapshot {
        routing_tables_built: ROUTING_BUILDS().get(),
        routing_table_hits: ROUTING_HITS().get(),
        routing_table_evictions: ROUTING_EVICTIONS().get(),
        routing_oracles_built: ORACLE_BUILDS().get(),
        routing_oracle_hits: ORACLE_HITS().get(),
        routing_oracle_evictions: ORACLE_EVICTIONS().get(),
        decompose_memo_hits: DECOMPOSE_HITS().get(),
        decompose_memo_misses: DECOMPOSE_MISSES().get(),
        decompose_memo_evictions: DECOMPOSE_EVICTIONS().get(),
        compile_hits: COMPILE_HITS().get(),
        compile_misses: COMPILE_MISSES().get(),
        compile_inserts: COMPILE_INSERTS().get(),
        compile_evictions: COMPILE_EVICTIONS().get(),
        disk_hits: DISK_HITS().get(),
        disk_misses: DISK_MISSES().get(),
        disk_writes: DISK_WRITES().get(),
        disk_quarantines: DISK_QUARANTINES().get(),
        disk_evicted_entries: DISK_EVICTED_ENTRIES().get(),
        disk_evicted_bytes: DISK_EVICTED_BYTES().get(),
    }
}

// ---------------------------------------------------------------------------
// Layer 1: per-device routing tables.
// ---------------------------------------------------------------------------

/// Sentinel for "no next hop" in [`RoutingTable::next_hop`].
const NO_HOP: usize = usize::MAX;

/// Precomputed routing structure for one `(Device, RoutingObjective)` pair.
///
/// Holds the full [`CtrRoute`] (or the exact [`CompileError`] the legacy
/// search would report) for every ordered `(control, target)` pair, plus
/// the all-pairs distance and next-hop matrices in both metrics:
/// undirected hop count, and the negative-log-fidelity SWAP metric the
/// Dijkstra objective minimizes (uncharacterized couplings price at
/// [`DEFAULT_CNOT_ERROR`](crate::route::DEFAULT_CNOT_ERROR)).
///
/// Because every per-pair answer is produced by the *same* search the
/// per-gate router would run, routing through a table is byte-identical to
/// the legacy path — a property the differential tests in
/// `crates/core/tests/cache.rs` check gate-for-gate on every built-in
/// device.
pub struct RoutingTable {
    n: usize,
    objective: RoutingObjective,
    routes: Vec<Result<CtrRoute, CompileError>>,
    dist_hops: Vec<u32>,
    dist_neglog: Vec<f64>,
    next_hop: Vec<usize>,
}

impl RoutingTable {
    /// Builds the table by running the legacy CTR search once per ordered
    /// pair, plus one BFS and one Dijkstra per source for the distance /
    /// next-hop matrices.
    pub fn build(device: &Device, objective: RoutingObjective) -> RoutingTable {
        let n = device.n_qubits();
        let mut routes = Vec::with_capacity(n * n);
        for control in 0..n {
            for target in 0..n {
                routes.push(ctr_route_with(device, control, target, objective));
            }
        }
        let mut dist_hops = Vec::with_capacity(n * n);
        let mut next_hop = Vec::with_capacity(n * n);
        for src in 0..n {
            // `distances_from` marks unreachable qubits with u32::MAX / 2;
            // normalize to u32::MAX for an unambiguous sentinel. The
            // per-source rows are shared with the sparse oracle, so both
            // paths answer identically.
            let hops = hop_row(device, src);
            next_hop.extend(next_hop_row(device, src, &hops));
            dist_hops.extend(hops);
        }
        let dist_neglog = neglog_distances(device, n);
        RoutingTable {
            n,
            objective,
            routes,
            dist_hops,
            dist_neglog,
            next_hop,
        }
    }

    /// Register width the table was built for.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The objective the per-pair routes minimize.
    pub fn objective(&self) -> RoutingObjective {
        self.objective
    }

    /// The precomputed CTR route for an ordered pair — exactly what
    /// [`ctr_route_with`] returns, including its error cases (degenerate
    /// pair, disconnected map).
    ///
    /// # Errors
    ///
    /// The stored [`CompileError`] of the legacy search, cloned.
    pub fn route(&self, control: usize, target: usize) -> Result<&CtrRoute, CompileError> {
        match &self.routes[control * self.n + target] {
            Ok(route) => Ok(route),
            Err(e) => Err(e.clone()),
        }
    }

    /// Undirected hop-count distance, or `None` when disconnected.
    pub fn hop_distance(&self, a: usize, b: usize) -> Option<u32> {
        match self.dist_hops[a * self.n + b] {
            u32::MAX => None,
            d => Some(d),
        }
    }

    /// Negative-log-fidelity SWAP-path distance, or `None` when
    /// disconnected.
    pub fn neglog_distance(&self, a: usize, b: usize) -> Option<f64> {
        let d = self.dist_neglog[a * self.n + b];
        if d.is_finite() {
            Some(d)
        } else {
            None
        }
    }

    /// First step of a shortest hop path `a -> b` (ascending-neighbor
    /// tie-break), or `None` for `a == b` and disconnected pairs.
    pub fn next_hop(&self, a: usize, b: usize) -> Option<usize> {
        match self.next_hop[a * self.n + b] {
            NO_HOP => None,
            q => Some(q),
        }
    }

    /// Approximate resident bytes of this table: the three dense matrices
    /// plus every stored route's path. This is what the registry's byte
    /// budget accounts and what the scaling bench reports.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let route_heap: usize = self
            .routes
            .iter()
            .map(|r| match r {
                Ok(route) => route.path.capacity() * size_of::<usize>(),
                Err(_) => 0,
            })
            .sum();
        size_of::<Self>()
            + self.routes.capacity() * size_of::<Result<CtrRoute, CompileError>>()
            + route_heap
            + self.dist_hops.capacity() * size_of::<u32>()
            + self.dist_neglog.capacity() * size_of::<f64>()
            + self.next_hop.capacity() * size_of::<usize>()
    }
}

/// All-pairs negative-log-fidelity distances over the SWAP metric
/// (Dijkstra per source; deterministic ascending-index tie-break).
pub(crate) fn neglog_distances(device: &Device, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n * n);
    for src in 0..n {
        out.extend(neglog_row(device, src));
    }
    out
}

/// One source's negative-log-fidelity distance row (the exact Dijkstra the
/// dense table runs per source — the sparse oracle memoizes these rows on
/// demand, so both paths see bit-identical values by construction).
fn neglog_row(device: &Device, src: usize) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = device.n_qubits();
    let mut dist = vec![f64::INFINITY; n];
    dist[src] = 0.0;
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let key = |d: f64, q: usize| ((d * 1e9) as u64, q);
    heap.push(Reverse(key(0.0, src)));
    let mut settled = vec![false; n];
    while let Some(Reverse((_, q))) = heap.pop() {
        if settled[q] {
            continue;
        }
        settled[q] = true;
        for &nb in device.neighbors(q) {
            let nd = dist[q] + crate::route::swap_log_cost(device, q, nb);
            if nd < dist[nb] {
                dist[nb] = nd;
                heap.push(Reverse(key(nd, nb)));
            }
        }
    }
    dist
}

/// One source's normalized hop-distance row (BFS, `u32::MAX` sentinel —
/// the same normalization [`RoutingTable::build`] applies).
fn hop_row(device: &Device, src: usize) -> Vec<u32> {
    device
        .distances_from(src)
        .into_iter()
        .map(|d| if d >= u32::MAX / 2 { u32::MAX } else { d })
        .collect()
}

/// One source's next-hop row derived from its hop row: the first step of a
/// shortest path `src -> q` under the ascending-neighbor tie-break (the
/// same descent [`RoutingTable::build`] runs).
fn next_hop_row(device: &Device, src: usize, hops: &[u32]) -> Vec<usize> {
    let mut row = vec![NO_HOP; hops.len()];
    for (q, slot) in row.iter_mut().enumerate() {
        if q == src || hops[q] == u32::MAX {
            continue;
        }
        let mut cur = q;
        while hops[cur] > 1 {
            cur = *device
                .neighbors(cur)
                .iter()
                .find(|&&nb| hops[nb] == hops[cur] - 1)
                .expect("BFS distances admit a descending neighbor");
        }
        *slot = cur;
    }
    row
}

type RoutingKey = (u128, u8);

/// The registry maps keys to per-key build cells rather than finished
/// tables: the mutex only guards the (cheap) map operations, while the
/// O(n²)-search build runs inside the cell's own `OnceLock`, so the
/// first-touch build of one device never blocks workers that need a
/// different device's table.
type RoutingCell = Arc<OnceLock<Arc<RoutingTable>>>;

static ROUTING_TABLES: OnceLock<Mutex<LruMap<RoutingKey, RoutingCell>>> = OnceLock::new();

fn objective_tag(objective: RoutingObjective) -> u8 {
    match objective {
        RoutingObjective::FewestSwaps => 0,
        RoutingObjective::HighestFidelity => 1,
    }
}

/// Approximate bytes a dense table for an `n`-qubit device will occupy,
/// used as the LRU weight at registration time (before the build runs):
/// three `n x n` matrices plus a short route per pair average out to
/// roughly 64 bytes per ordered pair on the devices we generate.
fn dense_bytes_estimate(n: usize) -> usize {
    n * n * 64
}

/// The shared routing table for a device and objective, building it on
/// first use. Returns the table and whether it came from the registry
/// (`true`) or was built by this call (`false`).
pub fn routing_table(device: &Device, objective: RoutingObjective) -> (Arc<RoutingTable>, bool) {
    let key = (device.fingerprint(), objective_tag(objective));
    let registry = ROUTING_TABLES
        .get_or_init(|| Mutex::new(LruMap::with_byte_budget(ROUTING_TABLE_CAP, ROUTING_BYTE_BUDGET)));
    let cell = {
        let mut map = registry.lock().expect("routing-table registry poisoned");
        match map.get(&key) {
            Some(cell) => cell,
            None => {
                let cell: RoutingCell = Arc::new(OnceLock::new());
                let evicted =
                    map.insert_weighted(key, cell.clone(), dense_bytes_estimate(device.n_qubits()));
                ROUTING_EVICTIONS().add(evicted);
                cell
            }
        }
    };
    // Same-key racers block on this cell until the winner finishes; other
    // keys are untouched. An evicted cell stays alive for builders still
    // holding its Arc.
    let mut built = false;
    let table = cell
        .get_or_init(|| {
            built = true;
            ROUTING_BUILDS().inc();
            Arc::new(RoutingTable::build(device, objective))
        })
        .clone();
    if !built {
        ROUTING_HITS().inc();
    }
    (table, !built)
}

// ---------------------------------------------------------------------------
// Layer 1b: sparse distance oracles.
// ---------------------------------------------------------------------------

/// Number of landmark qubits a [`DistanceOracle`] precomputes (farthest-
/// point sampling; capped at the register width).
const ORACLE_LANDMARKS: usize = 8;

/// Devices at or above this width route through the sparse
/// [`DistanceOracle`] instead of a dense [`RoutingTable`] (see
/// [`routing_lookup`]). Every built-in device is below the threshold, so
/// the paper pipeline's dense fast path is unchanged.
pub const SPARSE_ORACLE_MIN_QUBITS: usize = 128;

/// Per-source memoization state of a [`DistanceOracle`].
#[derive(Default)]
struct OracleState {
    hop_rows: HashMap<usize, Arc<Vec<u32>>>,
    next_hop_rows: HashMap<usize, Arc<Vec<usize>>>,
    neglog_rows: HashMap<usize, Arc<Vec<f64>>>,
    routes: HashMap<(usize, usize), Result<Arc<CtrRoute>, CompileError>>,
}

/// Sparse replacement for the dense [`RoutingTable`]: answers the same
/// `route` / `hop_distance` / `neglog_distance` / `next_hop` queries
/// without ever materializing `n²` state.
///
/// Per-source shortest-path rows (BFS hops, Dijkstra negative-log-fidelity,
/// and the derived next-hop row) are computed on first touch and memoized,
/// and per-pair [`CtrRoute`]s run the *same* legacy search the dense table
/// stores — so every answer is bit-identical to the table's by
/// construction, a property the differential suite checks on every
/// built-in device. On top of that, a handful of landmark rows
/// (farthest-point sampled) provide ALT-style triangle-inequality lower
/// bounds that let lookahead scoring reject candidate SWAPs without
/// touching a fresh source row.
///
/// Memory is `O(landmarks · n + touched_sources · n)` instead of `O(n²)`:
/// routing a circuit that touches `k` distinct qubits costs `O(k · n)`.
pub struct DistanceOracle {
    device: Device,
    objective: RoutingObjective,
    n: usize,
    landmarks: Vec<usize>,
    landmark_hops: Vec<Vec<u32>>,
    landmark_neglog: Vec<Vec<f64>>,
    state: Mutex<OracleState>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl DistanceOracle {
    /// Builds the oracle: landmark selection plus one BFS (and, under the
    /// fidelity objective with characterization data, one Dijkstra) per
    /// landmark — `O(landmarks · (V + E))`, never `O(n²)`.
    pub fn build(device: &Device, objective: RoutingObjective) -> DistanceOracle {
        let n = device.n_qubits();
        // Farthest-point sampling from qubit 0: each landmark maximizes
        // its hop distance to the chosen set (smallest index on ties),
        // spreading the landmarks toward the graph periphery where ALT
        // bounds are tightest.
        let mut landmarks: Vec<usize> = Vec::new();
        if n > 0 {
            landmarks.push(0);
            while landmarks.len() < ORACLE_LANDMARKS.min(n) {
                let dist = device.distances_from_set(&landmarks);
                let next = (0..n)
                    .filter(|q| !landmarks.contains(q))
                    .max_by_key(|&q| (dist[q].min(u32::MAX / 2 - 1), std::cmp::Reverse(q)));
                match next {
                    Some(q) if dist[q] > 0 => landmarks.push(q),
                    _ => break,
                }
            }
        }
        let landmark_hops: Vec<Vec<u32>> =
            landmarks.iter().map(|&l| device.distances_from(l)).collect();
        let landmark_neglog: Vec<Vec<f64>> =
            if objective == RoutingObjective::HighestFidelity && device.has_error_data() {
                landmarks.iter().map(|&l| neglog_row(device, l)).collect()
            } else {
                Vec::new()
            };
        DistanceOracle {
            device: device.clone(),
            objective,
            n,
            landmarks,
            landmark_hops,
            landmark_neglog,
            state: Mutex::new(OracleState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Register width the oracle serves.
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// The objective per-pair routes minimize.
    pub fn objective(&self) -> RoutingObjective {
        self.objective
    }

    /// The landmark qubits backing the ALT lower bounds.
    pub fn landmarks(&self) -> &[usize] {
        &self.landmarks
    }

    /// Memoized-answer reuses since construction.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fresh computations (rows or routes) since construction.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn hop_row_for(&self, src: usize) -> Arc<Vec<u32>> {
        let mut state = self.state.lock().expect("oracle state poisoned");
        if let Some(row) = state.hop_rows.get(&src) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return row.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let row = Arc::new(hop_row(&self.device, src));
        state.hop_rows.insert(src, row.clone());
        row
    }

    fn neglog_row_for(&self, src: usize) -> Arc<Vec<f64>> {
        let mut state = self.state.lock().expect("oracle state poisoned");
        if let Some(row) = state.neglog_rows.get(&src) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return row.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let row = Arc::new(neglog_row(&self.device, src));
        state.neglog_rows.insert(src, row.clone());
        row
    }

    /// The exact CTR route the legacy per-gate search (and hence the dense
    /// table) produces for this ordered pair, memoized per pair.
    ///
    /// # Errors
    ///
    /// The [`CompileError`] of the legacy search, cloned.
    pub fn route(&self, control: usize, target: usize) -> Result<Arc<CtrRoute>, CompileError> {
        {
            let state = self.state.lock().expect("oracle state poisoned");
            if let Some(cached) = state.routes.get(&(control, target)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return cached.clone();
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        // The search runs outside the lock (it can be O(V) on big maps).
        let result = ctr_route_with(&self.device, control, target, self.objective).map(Arc::new);
        let mut state = self.state.lock().expect("oracle state poisoned");
        state.routes.insert((control, target), result.clone());
        result
    }

    /// Undirected hop-count distance, or `None` when disconnected —
    /// identical to [`RoutingTable::hop_distance`].
    pub fn hop_distance(&self, a: usize, b: usize) -> Option<u32> {
        match self.hop_row_for(a)[b] {
            u32::MAX => None,
            d => Some(d),
        }
    }

    /// Negative-log-fidelity SWAP-path distance, or `None` when
    /// disconnected — identical to [`RoutingTable::neglog_distance`].
    pub fn neglog_distance(&self, a: usize, b: usize) -> Option<f64> {
        let d = self.neglog_row_for(a)[b];
        d.is_finite().then_some(d)
    }

    /// First step of a shortest hop path `a -> b` (ascending-neighbor
    /// tie-break) — identical to [`RoutingTable::next_hop`].
    pub fn next_hop(&self, a: usize, b: usize) -> Option<usize> {
        let row = {
            let state = self.state.lock().expect("oracle state poisoned");
            match state.next_hop_rows.get(&a) {
                Some(row) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    row.clone()
                }
                None => {
                    drop(state);
                    let hops = self.hop_row_for(a);
                    let row = Arc::new(next_hop_row(&self.device, a, &hops));
                    let mut state = self.state.lock().expect("oracle state poisoned");
                    state.next_hop_rows.insert(a, row.clone());
                    row
                }
            }
        };
        match row[b] {
            NO_HOP => None,
            q => Some(q),
        }
    }

    /// ALT triangle-inequality lower bound on the hop distance `a -> b`:
    /// `max_L |d(L, a) - d(L, b)|`. Always `<=` the true distance, so a
    /// candidate whose bound already exceeds a known score can be rejected
    /// without materializing a fresh BFS row.
    pub fn hop_lower_bound(&self, a: usize, b: usize) -> u32 {
        self.landmark_hops
            .iter()
            .map(|row| {
                let (da, db) = (row[a], row[b]);
                match (da < u32::MAX / 2, db < u32::MAX / 2) {
                    (true, true) => da.abs_diff(db),
                    (false, false) => 0,
                    _ => u32::MAX, // one side unreachable: truly infinite
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// ALT lower bound in the negative-log-fidelity metric, or `None` when
    /// the oracle carries no fidelity landmark rows (swap metric unused).
    ///
    /// The SWAP metric is a *quasi*-metric (orientation surcharges make
    /// `cost(a, b) != cost(b, a)`), so only the one-sided triangle bound
    /// `d(a, b) >= d(L, b) - d(L, a)` is valid — never the absolute
    /// difference the symmetric hop bound uses.
    pub fn neglog_lower_bound(&self, a: usize, b: usize) -> Option<f64> {
        if self.landmark_neglog.is_empty() {
            return None;
        }
        let mut best = 0.0f64;
        for row in &self.landmark_neglog {
            let (da, db) = (row[a], row[b]);
            let bound = match (da.is_finite(), db.is_finite()) {
                (true, true) => (db - da).max(0.0),
                // b unreachable from L while a is: a -> b is disconnected.
                (true, false) => f64::INFINITY,
                _ => 0.0,
            };
            best = best.max(bound);
        }
        Some(best)
    }

    /// Approximate resident bytes: landmark rows plus every memoized
    /// per-source row and per-pair route currently held.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let state = self.state.lock().expect("oracle state poisoned");
        size_of::<Self>()
            + self.landmark_hops.len() * self.n * size_of::<u32>()
            + self.landmark_neglog.len() * self.n * size_of::<f64>()
            + state.hop_rows.len() * self.n * size_of::<u32>()
            + state.next_hop_rows.len() * self.n * size_of::<usize>()
            + state.neglog_rows.len() * self.n * size_of::<f64>()
            + state
                .routes
                .values()
                .map(|r| match r {
                    Ok(route) => size_of::<CtrRoute>() + route.path.capacity() * size_of::<usize>(),
                    Err(_) => size_of::<CompileError>(),
                })
                .sum::<usize>()
    }
}

type OracleCell = Arc<OnceLock<Arc<DistanceOracle>>>;

static ROUTING_ORACLES: OnceLock<Mutex<LruMap<RoutingKey, OracleCell>>> = OnceLock::new();

/// Approximate LRU weight of an oracle at registration time: the landmark
/// rows it builds eagerly (memoized rows grow it later; the estimate is
/// deliberately the floor, not the ceiling).
fn oracle_bytes_estimate(n: usize) -> usize {
    ORACLE_LANDMARKS * n * (std::mem::size_of::<u32>() + std::mem::size_of::<f64>()) + 4096
}

/// The shared sparse oracle for a device and objective, building it on
/// first use. Returns the oracle and whether it was reused from the
/// registry (`true`) or built by this call (`false`).
pub fn routing_oracle(device: &Device, objective: RoutingObjective) -> (Arc<DistanceOracle>, bool) {
    let key = (device.fingerprint(), objective_tag(objective));
    let registry = ROUTING_ORACLES
        .get_or_init(|| Mutex::new(LruMap::with_byte_budget(ROUTING_TABLE_CAP, ROUTING_BYTE_BUDGET)));
    let cell = {
        let mut map = registry.lock().expect("oracle registry poisoned");
        match map.get(&key) {
            Some(cell) => cell,
            None => {
                let cell: OracleCell = Arc::new(OnceLock::new());
                let evicted =
                    map.insert_weighted(key, cell.clone(), oracle_bytes_estimate(device.n_qubits()));
                ORACLE_EVICTIONS().add(evicted);
                cell
            }
        }
    };
    let mut built = false;
    let oracle = cell
        .get_or_init(|| {
            built = true;
            ORACLE_BUILDS().inc();
            Arc::new(DistanceOracle::build(device, objective))
        })
        .clone();
    if !built {
        ORACLE_HITS().inc();
    }
    (oracle, !built)
}

/// Either routing backend behind one handle: the dense table (small
/// devices) or the sparse oracle (large ones). Both answer identically;
/// only build cost and memory differ.
#[derive(Clone)]
pub enum RoutingLookup {
    /// Dense all-pairs table — `O(n²)` build, `O(1)` queries.
    Dense(Arc<RoutingTable>),
    /// Sparse per-source oracle — `O(landmarks · n)` build, memoized rows.
    Sparse(Arc<DistanceOracle>),
}

/// The routing backend for a device: dense below
/// [`SPARSE_ORACLE_MIN_QUBITS`], sparse at or above it. Returns the
/// backend and whether it was reused from its registry.
pub fn routing_lookup(device: &Device, objective: RoutingObjective) -> (RoutingLookup, bool) {
    if device.n_qubits() < SPARSE_ORACLE_MIN_QUBITS {
        let (table, reused) = routing_table(device, objective);
        (RoutingLookup::Dense(table), reused)
    } else {
        let (oracle, reused) = routing_oracle(device, objective);
        (RoutingLookup::Sparse(oracle), reused)
    }
}

// ---------------------------------------------------------------------------
// Layer 2: the decomposition memo.
// ---------------------------------------------------------------------------

type MctKey = (usize, usize, u8);

static MCT_TEMPLATES: OnceLock<Mutex<LruMap<MctKey, Arc<Vec<Gate>>>>> = OnceLock::new();

fn strategy_tag(strategy: DecomposeStrategy) -> u8 {
    match strategy {
        DecomposeStrategy::Exact => 0,
        DecomposeStrategy::RelativePhase => 1,
    }
}

/// The Barenco cascade for an `m`-control MCT with `spare_len` usable
/// spare lines, synthesized on canonical indices (controls `0..m`, target
/// `m`, spares `m+1..`): [`mct_decompose`](crate::decompose::mct_decompose)
/// is purely positional, so the cascade depends only on this shape.
/// Returns the template and whether it was served from the memo.
///
/// `spare_len` must already be clamped to the count the decomposition
/// uses (`min(spare.len(), m - 2)` — the V-chain never borrows more).
///
/// # Errors
///
/// [`CompileError::NoAncilla`] when `spare_len` is zero and `m >= 3`
/// (errors are not memoized; they are cheap to rediscover).
pub fn mct_template(
    m: usize,
    spare_len: usize,
    strategy: DecomposeStrategy,
) -> Result<(Arc<Vec<Gate>>, bool), CompileError> {
    let key = (m, spare_len, strategy_tag(strategy));
    let registry = MCT_TEMPLATES.get_or_init(|| Mutex::new(LruMap::new(MCT_TEMPLATE_CAP)));
    let mut map = registry.lock().expect("MCT template registry poisoned");
    DECOMPOSE_LOOKUPS().inc();
    if let Some(template) = map.get(&key) {
        DECOMPOSE_HITS().inc();
        return Ok((template, true));
    }
    let controls: Vec<usize> = (0..m).collect();
    let spare: Vec<usize> = (m + 1..m + 1 + spare_len).collect();
    let gates = crate::decompose::mct_decompose(&controls, m, &spare, strategy)?;
    let template = Arc::new(gates);
    DECOMPOSE_MISSES().inc();
    let evicted = map.insert(key, template.clone());
    DECOMPOSE_EVICTIONS().add(evicted);
    Ok((template, false))
}

/// Instantiates a canonical MCT template onto concrete lines: canonical
/// index `i < controls.len()` maps to `controls[i]`, `controls.len()` to
/// `target`, and higher indices to `spare` in order. `Gate` constructors
/// re-normalize control order, so the result is identical to decomposing
/// on the concrete lines directly.
pub fn instantiate_mct_template(
    template: &[Gate],
    controls: &[usize],
    target: usize,
    spare: &[usize],
) -> Vec<Gate> {
    let m = controls.len();
    let map = |q: usize| -> usize {
        if q < m {
            controls[q]
        } else if q == m {
            target
        } else {
            spare[q - m - 1]
        }
    };
    template
        .iter()
        .map(|g| match g {
            Gate::Single { op, qubit } => Gate::single(*op, map(*qubit)),
            Gate::Cx { control, target } => Gate::cx(map(*control), map(*target)),
            Gate::Cz { control, target } => Gate::cz(map(*control), map(*target)),
            Gate::Swap { a, b } => Gate::swap(map(*a), map(*b)),
            Gate::Mct { controls, target } => {
                Gate::mct(controls.iter().map(|&c| map(c)).collect(), map(*target))
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Layer 3: the whole-compile cache.
// ---------------------------------------------------------------------------

static COMPILE_CACHE: OnceLock<Mutex<LruMap<u128, Arc<CompileResult>>>> = OnceLock::new();

fn compile_cache() -> &'static Mutex<LruMap<u128, Arc<CompileResult>>> {
    COMPILE_CACHE.get_or_init(|| Mutex::new(LruMap::new(COMPILE_CACHE_CAP)))
}

/// Looks up a memoized compile by its 128-bit content key, recording a
/// hit or miss in the global stats.
pub(crate) fn compile_cache_get(key: u128) -> Option<Arc<CompileResult>> {
    let mut map = compile_cache().lock().expect("compile cache poisoned");
    COMPILE_LOOKUPS().inc();
    match map.get(&key) {
        Some(hit) => {
            COMPILE_HITS().inc();
            Some(hit)
        }
        None => {
            COMPILE_MISSES().inc();
            None
        }
    }
}

/// Memoizes a successful compile under its content key.
pub(crate) fn compile_cache_insert(key: u128, result: Arc<CompileResult>) {
    let mut map = compile_cache().lock().expect("compile cache poisoned");
    COMPILE_INSERTS().inc();
    let evicted = map.insert(key, result);
    COMPILE_EVICTIONS().add(evicted);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;

    #[test]
    fn cache_mode_parses_and_names_round_trip() {
        for mode in [CacheMode::Off, CacheMode::Tables, CacheMode::Mem] {
            assert_eq!(CacheMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(CacheMode::parse("disk"), None);
        assert_eq!(CacheMode::default(), CacheMode::Tables);
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let mut lru: LruMap<u8, u8> = LruMap::new(2);
        assert_eq!(lru.insert(1, 10), 0);
        assert_eq!(lru.insert(2, 20), 0);
        assert_eq!(lru.get(&1), Some(10)); // refresh 1; 2 is now stalest
        assert_eq!(lru.insert(3, 30), 1);
        assert_eq!(lru.get(&2), None, "2 was evicted");
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        // Overwriting an existing key never evicts.
        assert_eq!(lru.insert(1, 11), 0);
        assert_eq!(lru.get(&1), Some(11));
    }

    #[test]
    fn weighted_lru_evicts_until_the_byte_budget_holds() {
        // Count cap 8 but only 100 "bytes": three 40-byte entries never
        // coexist, and one oversized entry flushes everything else.
        let mut lru: LruMap<u8, u8> = LruMap::with_byte_budget(8, 100);
        assert_eq!(lru.insert_weighted(1, 10, 40), 0);
        assert_eq!(lru.insert_weighted(2, 20, 40), 0);
        assert_eq!(lru.insert_weighted(3, 30, 40), 1, "120 > 100 evicts one");
        assert_eq!(lru.get(&1), None, "1 was the stalest");
        assert_eq!(lru.get(&2), Some(20));
        // A single entry heavier than the whole budget is still admitted,
        // after evicting everything resident.
        assert_eq!(lru.insert_weighted(4, 40, 500), 2);
        assert_eq!(lru.get(&4), Some(40));
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&3), None);
        // Re-inserting an existing key replaces its weight, no eviction.
        assert_eq!(lru.insert_weighted(4, 41, 90), 0);
        assert_eq!(lru.insert_weighted(5, 50, 5), 0, "90 + 5 fits");
        assert_eq!(lru.get(&4), Some(41));
    }

    #[test]
    fn zero_weight_flood_still_respects_the_count_cap() {
        // Zero-weight entries never trip the byte budget; the count cap is
        // the only thing bounding them, and it must hold exactly.
        let mut lru: LruMap<u32, u32> = LruMap::with_byte_budget(16, 100);
        for k in 0..1000 {
            lru.insert_weighted(k, k, 0);
        }
        assert_eq!(lru.len(), 16);
        assert_eq!(lru.total_bytes(), 0);
        // The 16 most recent survive.
        for k in 984..1000 {
            assert_eq!(lru.get(&k), Some(k));
        }
    }

    #[test]
    fn duplicate_key_reinsert_never_evicts_and_keeps_bytes_consistent() {
        let mut lru: LruMap<u8, u8> = LruMap::with_byte_budget(4, 100);
        lru.insert_weighted(1, 10, 30);
        lru.insert_weighted(2, 20, 30);
        lru.insert_weighted(3, 30, 30);
        assert_eq!(lru.total_bytes(), 90);
        // Reinsert key 2 at the same weight, many times: the map is at
        // neither cap, totals must not drift, and nothing may be evicted.
        for _ in 0..100 {
            assert_eq!(lru.insert_weighted(2, 21, 30), 0);
        }
        assert_eq!(lru.total_bytes(), 90);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        // Reinsert at exactly the budget remainder: old weight is charged
        // off first, so 30 -> 40 fits (90 - 30 + 40 = 100) without eviction.
        assert_eq!(lru.insert_weighted(2, 22, 40), 0);
        assert_eq!(lru.total_bytes(), 100);
        assert_eq!(lru.len(), 3);
    }

    #[test]
    fn reinsert_on_a_count_full_map_does_not_evict() {
        let mut lru: LruMap<u8, u8> = LruMap::new(2);
        lru.insert(1, 10);
        lru.insert(2, 20);
        // Map is at cap; replacing a resident key holds the count constant
        // and must not pick a victim.
        assert_eq!(lru.insert(1, 11), 0);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.get(&2), Some(20));
    }

    #[test]
    fn weight_shrink_on_reinsert_frees_budget_for_others() {
        let mut lru: LruMap<u8, u8> = LruMap::with_byte_budget(8, 100);
        lru.insert_weighted(1, 10, 90);
        // Shrink key 1 from 90 to 10 bytes; the freed 80 admit key 2.
        assert_eq!(lru.insert_weighted(1, 11, 10), 0);
        assert_eq!(lru.total_bytes(), 10);
        assert_eq!(lru.insert_weighted(2, 20, 80), 0);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.total_bytes(), 90);
    }

    #[test]
    fn oversized_reinsert_evicts_others_but_admits_the_entry() {
        let mut lru: LruMap<u8, u8> = LruMap::with_byte_budget(8, 100);
        lru.insert_weighted(1, 10, 40);
        lru.insert_weighted(2, 20, 40);
        // Growing key 1 past the whole budget evicts key 2 but still
        // admits the heavy replacement (same policy as fresh inserts).
        assert_eq!(lru.insert_weighted(1, 11, 500), 1);
        assert_eq!(lru.get(&1), Some(11));
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.total_bytes(), 500);
    }

    #[test]
    fn oracle_answers_match_the_dense_table_on_every_builtin() {
        for d in devices::all_devices() {
            for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
                let table = RoutingTable::build(&d, objective);
                let oracle = DistanceOracle::build(&d, objective);
                let n = d.n_qubits();
                // Sample every pair on small machines, a stride on qc96.
                let stride = if n <= 16 { 1 } else { 7 };
                for a in (0..n).step_by(stride) {
                    for b in (0..n).step_by(stride) {
                        assert_eq!(
                            table.hop_distance(a, b),
                            oracle.hop_distance(a, b),
                            "{}: hop {a}->{b}",
                            d.name()
                        );
                        assert_eq!(
                            table.next_hop(a, b),
                            oracle.next_hop(a, b),
                            "{}: next_hop {a}->{b}",
                            d.name()
                        );
                        assert_eq!(
                            table.neglog_distance(a, b),
                            oracle.neglog_distance(a, b),
                            "{}: neglog {a}->{b}",
                            d.name()
                        );
                        match (table.route(a, b), oracle.route(a, b)) {
                            (Ok(x), Ok(y)) => assert_eq!(*x, *y, "{}: route {a}->{b}", d.name()),
                            (Err(x), Err(y)) => assert_eq!(x, y, "{}: route {a}->{b}", d.name()),
                            (x, y) => panic!("{}: {a}->{b}: {x:?} vs {y:?}", d.name()),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_landmark_bounds_are_admissible() {
        for d in [devices::qc96(), devices::ibmqx3()] {
            let oracle = DistanceOracle::build(&d, RoutingObjective::HighestFidelity);
            assert!(!oracle.landmarks().is_empty());
            let n = d.n_qubits();
            for a in 0..n {
                for b in 0..n {
                    let lb = oracle.hop_lower_bound(a, b);
                    let exact = oracle.hop_distance(a, b).unwrap();
                    assert!(lb <= exact, "{}: hop lb {lb} > {exact} for {a}->{b}", d.name());
                }
            }
        }
        // Fidelity landmark rows exist only with characterization data.
        let plain = DistanceOracle::build(&devices::qc96(), RoutingObjective::HighestFidelity);
        assert_eq!(plain.neglog_lower_bound(0, 5), None);
        let calibrated = qsyn_arch::devices::lnn(64);
        let o = DistanceOracle::build(&calibrated, RoutingObjective::HighestFidelity);
        for a in 0..64 {
            let lb = o.neglog_lower_bound(a, 63 - a).unwrap();
            let exact = o.neglog_distance(a, 63 - a).unwrap_or(f64::INFINITY);
            assert!(lb <= exact + 1e-12, "neglog lb {lb} > {exact}");
        }
    }

    #[test]
    fn oracle_memoizes_rows_and_counts_hits() {
        let d = devices::ibmqx5();
        let oracle = DistanceOracle::build(&d, RoutingObjective::FewestSwaps);
        assert_eq!(oracle.hit_count(), 0);
        let _ = oracle.hop_distance(3, 9);
        let misses = oracle.miss_count();
        assert!(misses >= 1);
        let _ = oracle.hop_distance(3, 12); // same source row
        assert_eq!(oracle.miss_count(), misses, "row was memoized");
        assert!(oracle.hit_count() >= 1);
        assert!(oracle.approx_bytes() > 0);
    }

    #[test]
    fn routing_lookup_picks_dense_below_the_threshold_and_sparse_above() {
        let small = devices::qc96();
        assert!(small.n_qubits() < SPARSE_ORACLE_MIN_QUBITS);
        match routing_lookup(&small, RoutingObjective::FewestSwaps).0 {
            RoutingLookup::Dense(t) => assert_eq!(t.n_qubits(), 96),
            RoutingLookup::Sparse(_) => panic!("qc96 must stay on the dense fast path"),
        }
        let big = qsyn_arch::devices::lnn(SPARSE_ORACLE_MIN_QUBITS);
        match routing_lookup(&big, RoutingObjective::FewestSwaps).0 {
            RoutingLookup::Sparse(o) => assert_eq!(o.n_qubits(), SPARSE_ORACLE_MIN_QUBITS),
            RoutingLookup::Dense(_) => panic!("128-qubit device must route sparsely"),
        }
        // Second lookup reuses the registry entry.
        let (_, reused) = routing_lookup(&big, RoutingObjective::FewestSwaps);
        assert!(reused);
    }

    #[test]
    fn routing_table_matches_the_legacy_search_per_pair() {
        let d = devices::ibmqx4();
        let table = RoutingTable::build(&d, RoutingObjective::FewestSwaps);
        for c in 0..d.n_qubits() {
            for t in 0..d.n_qubits() {
                let legacy = ctr_route_with(&d, c, t, RoutingObjective::FewestSwaps);
                match (table.route(c, t), legacy) {
                    (Ok(a), Ok(b)) => assert_eq!(*a, b, "{c}->{t}"),
                    (Err(a), Err(b)) => assert_eq!(a, b, "{c}->{t}"),
                    (a, b) => panic!("{c}->{t}: table {a:?} vs legacy {b:?}"),
                }
            }
        }
    }

    #[test]
    fn routing_table_distance_matrices_are_consistent() {
        let d = devices::ibmqx3();
        let table = RoutingTable::build(&d, RoutingObjective::FewestSwaps);
        let n = d.n_qubits();
        for a in 0..n {
            assert_eq!(table.hop_distance(a, a), Some(0));
            assert_eq!(table.next_hop(a, a), None);
            assert_eq!(table.neglog_distance(a, a), Some(0.0));
            for b in 0..n {
                if a == b {
                    continue;
                }
                let hops = table.hop_distance(a, b).expect("ibmqx3 is connected");
                assert_eq!(hops, d.distance(a, b).unwrap());
                let step = table.next_hop(a, b).expect("connected pair has a hop");
                assert!(d.are_adjacent(a, step), "{a}->{b} via {step}");
                assert_eq!(table.hop_distance(step, b), Some(hops - 1));
                assert!(table.neglog_distance(a, b).unwrap() > 0.0);
            }
        }
    }

    #[test]
    fn disconnected_pairs_have_no_distance() {
        let d = Device::from_coupling_map("disc", 4, &[(0, &[1]), (2, &[3])]);
        let table = RoutingTable::build(&d, RoutingObjective::FewestSwaps);
        assert_eq!(table.hop_distance(0, 3), None);
        assert_eq!(table.next_hop(0, 3), None);
        assert_eq!(table.neglog_distance(0, 3), None);
        assert_eq!(
            table.route(0, 3).unwrap_err(),
            CompileError::RouteNotFound {
                control: 0,
                target: 3
            }
        );
    }

    #[test]
    fn routing_registry_shares_one_table_per_device_and_objective() {
        let d = devices::ibmqx2();
        let (a, _) = routing_table(&d, RoutingObjective::FewestSwaps);
        let (b, reused) = routing_table(&d, RoutingObjective::FewestSwaps);
        assert!(Arc::ptr_eq(&a, &b), "same device, same table");
        assert!(reused, "second lookup is a registry hit");
        let (c, _) = routing_table(&d, RoutingObjective::HighestFidelity);
        assert!(!Arc::ptr_eq(&a, &c), "objectives get distinct tables");
    }

    #[test]
    fn mct_template_instantiation_equals_direct_decomposition() {
        // Scattered, unsorted operand layouts across both strategies and
        // both the V-chain and the split (scarce-ancilla) branch.
        let cases: [(&[usize], usize, &[usize]); 4] = [
            (&[7, 2, 5], 0, &[4]),            // m=3, split path
            (&[9, 1, 4, 6], 2, &[8, 0]),      // m=4, full V-chain
            (&[3, 8, 0, 5, 1], 9, &[2]),      // m=5, scarce
            (&[6, 0, 3, 9, 2], 4, &[8, 7, 1]) // m=5, full chain
        ];
        for strategy in [DecomposeStrategy::Exact, DecomposeStrategy::RelativePhase] {
            for (controls, target, spare) in cases {
                let m = controls.len();
                let eff = spare.len().min(m - 2);
                let direct =
                    crate::decompose::mct_decompose(controls, target, &spare[..eff], strategy)
                        .unwrap();
                let (template, _) = mct_template(m, eff, strategy).unwrap();
                let inst = instantiate_mct_template(&template, controls, target, &spare[..eff]);
                assert_eq!(inst, direct, "{controls:?} -> {target} ({strategy:?})");
            }
        }
    }

    #[test]
    fn mct_template_memo_hits_on_repeat() {
        // A deliberately unusual shape so parallel tests cannot have
        // pre-populated the key.
        let (_, hit_first) = mct_template(11, 2, DecomposeStrategy::Exact).unwrap();
        assert!(!hit_first, "first synthesis is a miss");
        let (_, hit_second) = mct_template(11, 2, DecomposeStrategy::Exact).unwrap();
        assert!(hit_second, "repeat shape is served from the memo");
    }

    #[test]
    fn mct_template_propagates_no_ancilla() {
        assert_eq!(
            mct_template(5, 0, DecomposeStrategy::Exact).unwrap_err(),
            CompileError::NoAncilla { controls: 5 }
        );
    }
}
