//! The request/response model and per-request execution of `qsyn serve`.
//!
//! The daemon front-end (the `qsyn serve` subcommand) reads one JSON
//! request per line, schedules it on a worker pool, and writes one JSON
//! response per request — *always* one, in completion order, whatever the
//! request did: parsed garbage, blew its budget, panicked the compiler,
//! or compiled cleanly. This module owns everything about a single
//! request that is independent of the daemon's threading:
//!
//! * [`parse_request`] — a strict, structured parser over the hand-rolled
//!   trace JSON model. Every malformed input (truncated line, wrong type,
//!   duplicate key, unknown field, oversized circuit source, unknown
//!   device/cost/strategy) maps to a typed [`RequestError`] that becomes
//!   a structured error response; nothing in here can panic on hostile
//!   input.
//! * [`execute`] — runs one parsed request to completion under
//!   `catch_unwind`: deadline accounting from *accept* time (queue wait
//!   counts against the request), node-budget admission through
//!   [`NodeBudgetGate`], one automatic retry at a doubled node budget
//!   before an `Unverified` verdict is reported, and structured error
//!   rows for panics and compile errors.
//! * [`ServeResponse`] — the response row and its JSON rendering.
//!
//! With the `fault-injection` cargo feature, requests may carry an
//! `inject` field that arms service-boundary faults: `pass:kind` compile
//! faults (PR 3), `slow:MS` worker stalls, and `poison-disk`, which
//! corrupts the request's own disk-cache entry after compiling so the
//! next lookup exercises the quarantine path.

use crate::budget::{CompileBudget, VerifyMode};
use crate::cache::CacheMode;
use crate::persist::DiskCache;
use crate::place::PlacementStrategy;
use crate::strategy::RouteStrategyKind;
use crate::{Compiler, Verification};
use qsyn_arch::{devices, CostModel, Device, FidelityCost, TransmonCost, VolumeCost};
use qsyn_circuit::Circuit;
use qsyn_trace::json::{self, Value};
use qsyn_trace::TraceSink;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Daemon-level defaults applied to fields a request leaves unset.
#[derive(Debug, Clone)]
pub struct ServeDefaults {
    /// Default per-request deadline, measured from accept time.
    pub deadline: Option<Duration>,
    /// Default QMDD node budget per request.
    pub node_budget: Option<usize>,
    /// Default routing SWAP cap per request.
    pub max_swaps: Option<usize>,
    /// Default cache mode (the daemon runs `mem` so repeated traffic
    /// hits the compile cache).
    pub cache: CacheMode,
    /// Hard cap on the circuit-source field of one request, in bytes.
    pub max_source_bytes: usize,
    /// Whether responses carry the compiled QASM by default.
    pub emit_qasm: bool,
    /// Whether an `Unverified` verdict earns one automatic retry at a
    /// doubled node budget before being reported.
    pub retry: bool,
    /// Default verification strictness (requests may override).
    pub strict_verify: bool,
}

impl Default for ServeDefaults {
    fn default() -> Self {
        ServeDefaults {
            deadline: None,
            node_budget: None,
            max_swaps: None,
            cache: CacheMode::Mem,
            max_source_bytes: 1 << 20,
            emit_qasm: true,
            retry: true,
            strict_verify: false,
        }
    }
}

/// Everything [`execute`] needs besides the request itself. Shared across
/// worker threads behind an `Arc`.
pub struct ServeContext {
    /// Daemon defaults.
    pub defaults: ServeDefaults,
    /// The persistent cache tier, when the daemon was started with one.
    pub disk: Option<Arc<DiskCache>>,
    /// Trace sink receiving every request's pass events (stamped with the
    /// request's job id).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Global in-flight node-budget ceiling, when configured.
    pub gate: Option<Arc<NodeBudgetGate>>,
}

/// Which cost model a request selected (cost models are not `Clone`, so
/// the request stores the selector and builds a fresh model per compile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostKind {
    /// The paper's Eqn. 2 transmon cost (the default).
    Eqn2,
    /// Gate-count/volume cost.
    Volume,
    /// Calibration-driven fidelity cost.
    Fidelity,
}

impl CostKind {
    fn parse(s: &str) -> Option<CostKind> {
        match s {
            "eqn2" => Some(CostKind::Eqn2),
            "volume" => Some(CostKind::Volume),
            "fidelity" => Some(CostKind::Fidelity),
            _ => None,
        }
    }

    /// Builds the selected cost model.
    pub fn build(self) -> Box<dyn CostModel> {
        match self {
            CostKind::Eqn2 => Box::new(TransmonCost::default()),
            CostKind::Volume => Box::new(VolumeCost),
            CostKind::Fidelity => Box::new(FidelityCost::default()),
        }
    }
}

/// A service-boundary fault a request may arm (test/CI builds only).
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeFault {
    /// A PR-3 compile fault (`pass:kind`), run through the normal
    /// injection machinery.
    Compile(crate::budget::FaultSpec),
    /// Stall the worker for this many milliseconds before compiling
    /// (exercises deadline enforcement and queue backpressure).
    Slow(u64),
    /// After compiling, flip a byte in this request's own disk-cache
    /// entry, so the next lookup of the same key must quarantine and
    /// recompute.
    PoisonDisk,
}

/// One parsed, validated compile request.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Client-chosen request id, echoed verbatim on the response.
    pub id: String,
    /// The parsed circuit.
    pub circuit: Circuit,
    /// The resolved target device.
    pub device: Device,
    /// Cost-model selector.
    pub cost: CostKind,
    /// Placement strategy.
    pub placement: PlacementStrategy,
    /// Routing strategy.
    pub strategy: RouteStrategyKind,
    /// Whether local optimization runs.
    pub optimize: bool,
    /// Whether QMDD verification runs.
    pub verify: bool,
    /// Strict verification: a budget blow mid-verify fails the request
    /// instead of degrading to `Unverified`.
    pub strict_verify: bool,
    /// Cache mode for this request.
    pub cache: CacheMode,
    /// Per-request deadline from accept time (overrides the default).
    pub deadline: Option<Duration>,
    /// Per-request QMDD node budget (overrides the default).
    pub node_budget: Option<usize>,
    /// Per-request routing SWAP cap (overrides the default).
    pub max_swaps: Option<usize>,
    /// Whether the response carries the compiled QASM.
    pub emit_qasm: bool,
    /// Armed service fault, if any.
    #[cfg(feature = "fault-injection")]
    pub fault: Option<ServeFault>,
}

/// Machine-readable category of a request rejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestErrorKind {
    /// The line is not valid JSON.
    Parse,
    /// The JSON does not match the request schema (wrong type, missing
    /// or unknown or duplicate field).
    Schema,
    /// A field exceeds the daemon's size cap.
    TooLarge,
    /// A field has the right type but an unknown value (device, cost
    /// model, strategy, unparsable circuit source, ...).
    BadValue,
}

impl RequestErrorKind {
    /// Stable identifier used in the response `kind` field.
    pub fn name(self) -> &'static str {
        match self {
            RequestErrorKind::Parse => "parse",
            RequestErrorKind::Schema => "schema",
            RequestErrorKind::TooLarge => "too-large",
            RequestErrorKind::BadValue => "bad-value",
        }
    }
}

/// A structured request rejection: category plus a human-readable message
/// naming the offending field or value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Rejection category.
    pub kind: RequestErrorKind,
    /// What exactly was wrong.
    pub message: String,
    /// The request id, when the line was parseable enough to extract it
    /// (so even rejections can be correlated by the client).
    pub id: Option<String>,
}

impl RequestError {
    fn new(kind: RequestErrorKind, message: impl Into<String>) -> RequestError {
        RequestError {
            kind,
            message: message.into(),
            id: None,
        }
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// A [`RequestError`] naming the first problem found; the error carries
/// the request `id` whenever one was recoverable from the line.
pub fn parse_request(line: &str, defaults: &ServeDefaults) -> Result<ServeRequest, RequestError> {
    let value = json::parse(line.trim())
        .map_err(|e| RequestError::new(RequestErrorKind::Parse, format!("invalid JSON: {e}")))?;
    let Value::Obj(pairs) = &value else {
        return Err(RequestError::new(
            RequestErrorKind::Schema,
            "request must be a JSON object",
        ));
    };
    // Recover the id early so later rejections still correlate.
    let id = value.get("id").and_then(Value::as_str).map(str::to_string);
    let fail = |kind: RequestErrorKind, message: String| RequestError {
        kind,
        message,
        id: id.clone(),
    };
    if let Some(key) = first_duplicate_key(&value) {
        return Err(fail(
            RequestErrorKind::Schema,
            format!("duplicate key `{key}`"),
        ));
    }

    let mut source: Option<&str> = None;
    let mut format = "qasm";
    let mut device: Option<&str> = None;
    let mut cost = CostKind::Eqn2;
    let mut placement = PlacementStrategy::Identity;
    let mut strategy = RouteStrategyKind::Ctr;
    let mut optimize = true;
    let mut verify = true;
    let mut strict_verify = defaults.strict_verify;
    let mut cache = defaults.cache;
    let mut deadline = defaults.deadline;
    let mut node_budget = defaults.node_budget;
    let mut max_swaps = defaults.max_swaps;
    let mut emit_qasm = defaults.emit_qasm;
    #[cfg(feature = "fault-injection")]
    let mut fault: Option<ServeFault> = None;

    let want_str = |key: &str, v: &Value| -> Result<String, RequestError> {
        v.as_str().map(str::to_string).ok_or_else(|| {
            fail(
                RequestErrorKind::Schema,
                format!("field `{key}` must be a string"),
            )
        })
    };
    let want_bool = |key: &str, v: &Value| -> Result<bool, RequestError> {
        v.as_bool().ok_or_else(|| {
            fail(
                RequestErrorKind::Schema,
                format!("field `{key}` must be a boolean"),
            )
        })
    };
    let want_uint = |key: &str, v: &Value| -> Result<u64, RequestError> {
        match v.as_f64() {
            Some(n) if n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Ok(n as u64)
            }
            _ => Err(fail(
                RequestErrorKind::Schema,
                format!("field `{key}` must be a non-negative integer"),
            )),
        }
    };

    for (key, v) in pairs {
        match key.as_str() {
            "id" => {
                want_str("id", v)?;
            }
            "circuit" => {
                let s = v.as_str().ok_or_else(|| {
                    fail(
                        RequestErrorKind::Schema,
                        "field `circuit` must be a string of circuit source".to_string(),
                    )
                })?;
                if s.len() > defaults.max_source_bytes {
                    return Err(fail(
                        RequestErrorKind::TooLarge,
                        format!(
                            "circuit source is {} bytes; the daemon caps requests at {}",
                            s.len(),
                            defaults.max_source_bytes
                        ),
                    ));
                }
                source = Some(s);
            }
            "format" => {
                let s = want_str("format", v)?;
                match s.as_str() {
                    "qasm" => format = "qasm",
                    "qc" => format = "qc",
                    "real" => format = "real",
                    other => {
                        return Err(fail(
                            RequestErrorKind::BadValue,
                            format!("unknown circuit format `{other}` (want qasm, qc or real)"),
                        ))
                    }
                }
            }
            "device" => device = Some(v.as_str().ok_or_else(|| {
                fail(
                    RequestErrorKind::Schema,
                    "field `device` must be a string".to_string(),
                )
            })?),
            "cost" => {
                let s = want_str("cost", v)?;
                cost = CostKind::parse(&s).ok_or_else(|| {
                    fail(
                        RequestErrorKind::BadValue,
                        format!("unknown cost model `{s}` (want eqn2, volume or fidelity)"),
                    )
                })?;
            }
            "placement" => {
                let s = want_str("placement", v)?;
                placement = match s.as_str() {
                    "identity" => PlacementStrategy::Identity,
                    "greedy" => PlacementStrategy::Greedy,
                    "annealed" => PlacementStrategy::Annealed,
                    other => {
                        return Err(fail(
                            RequestErrorKind::BadValue,
                            format!(
                                "unknown placement `{other}` (want identity, greedy or annealed)"
                            ),
                        ))
                    }
                };
            }
            "route_strategy" => {
                let s = want_str("route_strategy", v)?;
                strategy = RouteStrategyKind::parse(&s).ok_or_else(|| {
                    fail(
                        RequestErrorKind::BadValue,
                        format!(
                            "unknown route strategy `{s}` (want ctr, lookahead, lazy-synth or auto)"
                        ),
                    )
                })?;
            }
            "optimize" => optimize = want_bool("optimize", v)?,
            "verify" => verify = want_bool("verify", v)?,
            "strict_verify" => strict_verify = want_bool("strict_verify", v)?,
            "cache" => {
                let s = want_str("cache", v)?;
                cache = CacheMode::parse(&s).ok_or_else(|| {
                    fail(
                        RequestErrorKind::BadValue,
                        format!("unknown cache mode `{s}` (want off, tables or mem)"),
                    )
                })?;
            }
            "deadline_ms" => {
                let ms = want_uint("deadline_ms", v)?;
                if ms == 0 {
                    return Err(fail(
                        RequestErrorKind::Schema,
                        "field `deadline_ms` must be positive".to_string(),
                    ));
                }
                deadline = Some(Duration::from_millis(ms));
            }
            "node_budget" => {
                let n = want_uint("node_budget", v)?;
                if n == 0 {
                    return Err(fail(
                        RequestErrorKind::Schema,
                        "field `node_budget` must be positive".to_string(),
                    ));
                }
                node_budget = Some(n as usize);
            }
            "max_swaps" => max_swaps = Some(want_uint("max_swaps", v)? as usize),
            "emit" => emit_qasm = want_bool("emit", v)?,
            "inject" => {
                let s = want_str("inject", v)?;
                #[cfg(feature = "fault-injection")]
                {
                    fault = Some(parse_fault(&s).map_err(|e| {
                        fail(RequestErrorKind::BadValue, format!("bad `inject`: {e}"))
                    })?);
                }
                #[cfg(not(feature = "fault-injection"))]
                {
                    let _ = s;
                    return Err(fail(
                        RequestErrorKind::BadValue,
                        "fault injection is not compiled into this build".to_string(),
                    ));
                }
            }
            other => {
                return Err(fail(
                    RequestErrorKind::Schema,
                    format!("unknown field `{other}`"),
                ))
            }
        }
    }

    let id = id.ok_or_else(|| {
        RequestError::new(RequestErrorKind::Schema, "missing required field `id`")
    })?;
    let fail = |kind: RequestErrorKind, message: String| RequestError {
        kind,
        message,
        id: Some(id.clone()),
    };
    let source = source.ok_or_else(|| {
        fail(
            RequestErrorKind::Schema,
            "missing required field `circuit`".to_string(),
        )
    })?;
    let device_name = device.ok_or_else(|| {
        fail(
            RequestErrorKind::Schema,
            "missing required field `device`".to_string(),
        )
    })?;
    // The daemon resolves library/generated names only: a network-facing
    // service must not read arbitrary filesystem paths from requests.
    let device = devices::device_by_name(device_name).ok_or_else(|| {
        fail(
            RequestErrorKind::BadValue,
            format!("unknown device `{device_name}`"),
        )
    })?;
    let circuit = match format {
        "qc" => Circuit::from_qc(source).map_err(|e| e.to_string()),
        "real" => Circuit::from_real(source).map_err(|e| e.to_string()),
        _ => Circuit::from_qasm(source).map_err(|e| e.to_string()),
    }
    .map_err(|e| fail(RequestErrorKind::BadValue, format!("unparsable circuit: {e}")))?;

    Ok(ServeRequest {
        id,
        circuit,
        device,
        cost,
        placement,
        strategy,
        optimize,
        verify,
        strict_verify,
        cache,
        deadline,
        node_budget,
        max_swaps,
        emit_qasm,
        #[cfg(feature = "fault-injection")]
        fault,
    })
}

/// Finds the first duplicated object key anywhere in the value tree.
/// Duplicate keys are a classic request-smuggling vector (two parsers
/// disagreeing on which copy wins), so the daemon rejects them outright.
fn first_duplicate_key(v: &Value) -> Option<&str> {
    match v {
        Value::Obj(pairs) => {
            for (i, (k, _)) in pairs.iter().enumerate() {
                if pairs[..i].iter().any(|(prev, _)| prev == k) {
                    return Some(k);
                }
            }
            pairs.iter().find_map(|(_, v)| first_duplicate_key(v))
        }
        Value::Arr(items) => items.iter().find_map(first_duplicate_key),
        _ => None,
    }
}

/// Parses the `inject` request field.
#[cfg(feature = "fault-injection")]
fn parse_fault(s: &str) -> Result<ServeFault, String> {
    if s == "poison-disk" {
        return Ok(ServeFault::PoisonDisk);
    }
    if let Some(ms) = s.strip_prefix("slow:") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad slow duration `{ms}`"))?;
        return Ok(ServeFault::Slow(ms));
    }
    crate::budget::FaultSpec::parse(s).map(ServeFault::Compile)
}

// ---------------------------------------------------------------------------
// Global in-flight node-budget admission.
// ---------------------------------------------------------------------------

/// A counting semaphore over QMDD node budget: the daemon-wide ceiling on
/// the *sum* of node budgets of concurrently compiling requests, so a
/// burst of wide verifications cannot multiply per-request budgets into
/// an out-of-memory condition.
///
/// Requests acquire their node budget before compiling and release it on
/// drop (panic-safe). A request without a node budget of its own is
/// charged the full ceiling — it is unbounded, so it runs exclusively
/// with respect to the gate.
pub struct NodeBudgetGate {
    ceiling: usize,
    available: Mutex<usize>,
    freed: Condvar,
}

impl NodeBudgetGate {
    /// A gate with the given ceiling (clamped to at least 1).
    pub fn new(ceiling: usize) -> NodeBudgetGate {
        let ceiling = ceiling.max(1);
        NodeBudgetGate {
            ceiling,
            available: Mutex::new(ceiling),
            freed: Condvar::new(),
        }
    }

    /// The configured ceiling.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Blocks until `want` nodes (clamped to the ceiling, so any single
    /// request can always eventually run) are free, or the deadline
    /// passes. Returns `None` on deadline expiry.
    pub fn acquire(&self, want: usize, deadline: Option<Instant>) -> Option<NodeBudgetPermit<'_>> {
        let want = want.clamp(1, self.ceiling);
        let mut available = self.available.lock().expect("node gate poisoned");
        while *available < want {
            match deadline {
                None => {
                    available = self.freed.wait(available).expect("node gate poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    let (guard, _) = self
                        .freed
                        .wait_timeout(available, deadline - now)
                        .expect("node gate poisoned");
                    available = guard;
                }
            }
        }
        *available -= want;
        Some(NodeBudgetPermit { gate: self, want })
    }
}

/// An acquired slice of the node-budget ceiling; returns it on drop.
pub struct NodeBudgetPermit<'a> {
    gate: &'a NodeBudgetGate,
    want: usize,
}

impl Drop for NodeBudgetPermit<'_> {
    fn drop(&mut self) {
        let mut available = self.gate.available.lock().expect("node gate poisoned");
        *available += self.want;
        self.gate.freed.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// One response row: the outcome of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// The request id, echoed back; `None` only when the line was too
    /// broken to recover one.
    pub id: Option<String>,
    /// The daemon-assigned job number (matches the `job` field of this
    /// request's trace events).
    pub job: u64,
    /// Outcome.
    pub body: ResponseBody,
}

/// The outcome payload of a response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// The request compiled.
    Ok {
        /// Human-readable verdict (`verified (miter)`, `skipped`, ...).
        verdict: String,
        /// The boolean verdict view (`None` for skipped/unverified).
        verified: Option<bool>,
        /// Whether the result came from a cache tier.
        cache_hit: bool,
        /// Whether the degradation retry ran.
        retried: bool,
        /// Output gate count.
        gates: usize,
        /// Wall-clock seconds (the last attempt).
        seconds: f64,
        /// The compiled OpenQASM, when the request asked for it.
        qasm: Option<String>,
    },
    /// The request failed; the daemon is fine.
    Err {
        /// Stable machine-readable category: `parse`, `schema`,
        /// `too-large`, `bad-value`, `overloaded`, `deadline`, `panic`,
        /// `compile`, or `shutting-down`.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl ServeResponse {
    /// A structured error row.
    pub fn error(id: Option<String>, job: u64, kind: &str, message: impl Into<String>) -> Self {
        ServeResponse {
            id,
            job,
            body: ResponseBody::Err {
                kind: kind.to_string(),
                message: message.into(),
            },
        }
    }

    /// A request-rejection row.
    pub fn rejection(job: u64, e: &RequestError) -> Self {
        Self::error(e.id.clone(), job, e.kind.name(), e.message.clone())
    }

    /// Whether this row reports success.
    pub fn is_ok(&self) -> bool {
        matches!(self.body, ResponseBody::Ok { .. })
    }

    /// The JSON object for this row.
    pub fn to_json(&self) -> Value {
        let id = match &self.id {
            Some(id) => Value::Str(id.clone()),
            None => Value::Null,
        };
        let mut fields = vec![
            ("id".to_string(), id),
            ("job".to_string(), Value::Num(self.job as f64)),
        ];
        match &self.body {
            ResponseBody::Ok {
                verdict,
                verified,
                cache_hit,
                retried,
                gates,
                seconds,
                qasm,
            } => {
                fields.push(("status".to_string(), Value::Str("ok".to_string())));
                fields.push(("verdict".to_string(), Value::Str(verdict.clone())));
                fields.push((
                    "verified".to_string(),
                    match verified {
                        Some(b) => Value::Bool(*b),
                        None => Value::Null,
                    },
                ));
                fields.push(("cache_hit".to_string(), Value::Bool(*cache_hit)));
                fields.push(("retried".to_string(), Value::Bool(*retried)));
                fields.push(("gates".to_string(), Value::Num(*gates as f64)));
                fields.push(("seconds".to_string(), Value::Num(*seconds)));
                if let Some(qasm) = qasm {
                    fields.push(("qasm".to_string(), Value::Str(qasm.clone())));
                }
            }
            ResponseBody::Err { kind, message } => {
                fields.push(("status".to_string(), Value::Str("error".to_string())));
                fields.push(("kind".to_string(), Value::Str(kind.clone())));
                fields.push(("error".to_string(), Value::Str(message.clone())));
            }
        }
        Value::Obj(fields)
    }

    /// The single-line JSONL rendering.
    pub fn render(&self) -> String {
        self.to_json().to_string()
    }
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

// Per-request live metrics: registered once in the process-wide registry
// (`qsyn_trace::metrics::global`), with the `Arc` handle cached behind a
// `OnceLock` so the hot path is a couple of relaxed atomic adds.
macro_rules! serve_metric {
    ($fn_name:ident, $kind:ident, $name:literal) => {
        fn $fn_name() -> &'static qsyn_trace::metrics::$kind {
            static CELL: std::sync::OnceLock<Arc<qsyn_trace::metrics::$kind>> =
                std::sync::OnceLock::new();
            CELL.get_or_init(|| {
                let reg = qsyn_trace::metrics::global();
                serve_metric!(@get reg, $kind, $name)
            })
        }
    };
    (@get $reg:ident, Counter, $name:literal) => {
        $reg.counter($name)
    };
    (@get $reg:ident, Histogram, $name:literal) => {
        $reg.histogram($name)
    };
}

serve_metric!(m_queue_wait, Histogram, "serve.queue_wait_us");
serve_metric!(m_gate_wait, Histogram, "serve.gate_wait_us");
serve_metric!(m_compile, Histogram, "serve.compile_us");
serve_metric!(m_latency, Histogram, "serve.latency_us");
serve_metric!(m_deadline_expired, Counter, "serve.deadline_expired");
serve_metric!(m_panics, Counter, "serve.panics");
serve_metric!(m_retries, Counter, "serve.retries");
serve_metric!(m_cache_hits, Counter, "serve.cache_hits");

/// Runs one parsed request to a response. Never panics: the compile runs
/// under `catch_unwind`, and every failure mode (deadline in queue,
/// deadline mid-compile, budget blow, panic) maps to a structured error
/// row.
///
/// `accepted` is the instant the daemon read the request off the wire;
/// deadlines are measured from there, so time spent queued behind other
/// requests counts against the request — a request that waited out its
/// deadline is answered without burning a worker on it.
///
/// Execution feeds the live metrics registry: `serve.queue_wait_us`
/// (accept → worker pickup), `serve.gate_wait_us` (node-ceiling wait),
/// `serve.compile_us` (compile attempts incl. the degradation retry),
/// `serve.latency_us` (accept → response ready), and the
/// `serve.deadline_expired` / `serve.panics` / `serve.retries` /
/// `serve.cache_hits` counters.
pub fn execute(
    req: &ServeRequest,
    job: u64,
    accepted: Instant,
    ctx: &ServeContext,
) -> ServeResponse {
    m_queue_wait().record_duration(accepted.elapsed());
    let resp = execute_inner(req, job, accepted, ctx);
    if matches!(resp.body, ResponseBody::Ok { cache_hit: true, .. }) {
        m_cache_hits().inc();
    }
    m_latency().record_duration(accepted.elapsed());
    resp
}

fn execute_inner(
    req: &ServeRequest,
    job: u64,
    accepted: Instant,
    ctx: &ServeContext,
) -> ServeResponse {
    let id = Some(req.id.clone());
    #[cfg(feature = "fault-injection")]
    if let Some(ServeFault::Slow(ms)) = &req.fault {
        std::thread::sleep(Duration::from_millis(*ms));
    }

    let deadline = req
        .deadline
        .or(ctx.defaults.deadline)
        .map(|d| accepted + d);

    // Node-budget admission: hold a permit for the whole compile.
    let _permit = match &ctx.gate {
        Some(gate) => {
            let want = req.node_budget.unwrap_or(gate.ceiling());
            let wait_started = Instant::now();
            let acquired = gate.acquire(want, deadline);
            m_gate_wait().record_duration(wait_started.elapsed());
            match acquired {
                Some(permit) => Some(permit),
                None => {
                    m_deadline_expired().inc();
                    return ServeResponse::error(
                        id,
                        job,
                        "deadline",
                        "deadline expired while queued for the node-budget ceiling",
                    );
                }
            }
        }
        None => None,
    };

    let remaining = match deadline {
        Some(deadline) => {
            let now = Instant::now();
            if now >= deadline {
                m_deadline_expired().inc();
                return ServeResponse::error(
                    id,
                    job,
                    "deadline",
                    "deadline expired before compilation started",
                );
            }
            Some(deadline - now)
        }
        None => None,
    };

    let attempt = |node_budget: Option<usize>| -> Result<
        Result<crate::CompileResult, crate::CompileError>,
        String,
    > {
        let budget = CompileBudget {
            deadline: remaining,
            qmdd_node_budget: node_budget,
            max_optimize_rounds: None,
            max_route_swaps: req.max_swaps,
            verify_mode: if req.strict_verify {
                VerifyMode::Strict
            } else {
                VerifyMode::Degrade
            },
        };
        let mut compiler = Compiler::new(req.device.clone())
            .with_cost_model(req.cost.build())
            .with_placement(req.placement)
            .with_route_strategy(req.strategy)
            .with_optimization(req.optimize)
            .with_verification(if req.verify {
                Verification::Auto
            } else {
                Verification::None
            })
            .with_budget(budget)
            .with_cache(req.cache)
            .with_job_id(job);
        if let Some(disk) = &ctx.disk {
            compiler = compiler.with_disk_cache(disk.clone());
        }
        if let Some(sink) = &ctx.trace {
            compiler = compiler.with_trace(sink.clone());
        }
        #[cfg(feature = "fault-injection")]
        if let Some(ServeFault::Compile(spec)) = &req.fault {
            compiler = compiler.with_fault_injection(*spec);
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compiler.compile(&req.circuit)
        }))
        .map_err(|payload| panic_message(payload.as_ref()));
        #[cfg(feature = "fault-injection")]
        if let (Some(ServeFault::PoisonDisk), Some(disk)) = (&req.fault, &ctx.disk) {
            if let Some(key) = compiler.compile_key(&req.circuit) {
                let _ = disk.poison(key);
            }
        }
        outcome
    };

    let mut retried = false;
    let compile_started = Instant::now();
    let mut outcome = attempt(req.node_budget);
    // Retry-with-degradation: an Unverified verdict earns one automatic
    // retry at the next ladder rung — double the node budget — before the
    // daemon reports it. Only a finite budget can be doubled, and an
    // expired deadline makes a retry pointless.
    if ctx.defaults.retry {
        if let (Ok(Ok(result)), Some(nb)) = (&outcome, req.node_budget) {
            let deadline_left = deadline.is_none_or(|d| Instant::now() < d);
            if result.verdict().is_unverified() && deadline_left {
                retried = true;
                m_retries().inc();
                let second = attempt(Some(nb.saturating_mul(2)));
                // Keep the retry only when it improved on Unverified; the
                // original (explicitly unverified) result is still the
                // honest answer otherwise.
                match &second {
                    Ok(Ok(r)) if !r.verdict().is_unverified() => outcome = second,
                    _ => {}
                }
            }
        }
    }

    m_compile().record_duration(compile_started.elapsed());

    match outcome {
        Err(panic) => {
            m_panics().inc();
            ServeResponse::error(id, job, "panic", panic)
        }
        Ok(Err(e)) => ServeResponse::error(id, job, "compile", e.to_string()),
        Ok(Ok(result)) => {
            let qasm = if req.emit_qasm {
                match result.optimized.to_qasm() {
                    Ok(qasm) => Some(qasm),
                    Err(e) => {
                        return ServeResponse::error(
                            id,
                            job,
                            "compile",
                            format!("emitting QASM failed: {e}"),
                        )
                    }
                }
            } else {
                None
            };
            ServeResponse {
                id,
                job,
                body: ResponseBody::Ok {
                    verdict: result.verdict().to_string(),
                    verified: result.verified,
                    cache_hit: result.metrics().cache_hit,
                    retried,
                    gates: result.optimized.len(),
                    seconds: result.metrics().total_seconds,
                    qasm,
                },
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> ServeDefaults {
        ServeDefaults::default()
    }

    const TOFFOLI_QASM: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nccx q[0],q[1],q[2];\n";

    fn request_line(extra: &str) -> String {
        format!(
            "{{\"id\":\"r1\",\"circuit\":\"OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[3];\\nccx q[0],q[1],q[2];\\n\",\"device\":\"ibmqx4\"{extra}}}"
        )
    }

    #[test]
    fn minimal_request_parses() {
        let req = parse_request(&request_line(""), &defaults()).expect("valid request");
        assert_eq!(req.id, "r1");
        assert_eq!(req.circuit.n_qubits(), 3);
        assert_eq!(req.device.n_qubits(), 5);
        assert_eq!(req.cost, CostKind::Eqn2);
        assert!(req.optimize && req.verify && !req.strict_verify);
    }

    #[test]
    fn options_override_defaults() {
        let line = request_line(
            ",\"cost\":\"volume\",\"placement\":\"greedy\",\"route_strategy\":\"lookahead\",\
             \"optimize\":false,\"deadline_ms\":500,\"node_budget\":4096,\"emit\":false",
        );
        let req = parse_request(&line, &defaults()).expect("valid request");
        assert_eq!(req.cost, CostKind::Volume);
        assert_eq!(req.placement, PlacementStrategy::Greedy);
        assert_eq!(req.strategy, RouteStrategyKind::Lookahead);
        assert!(!req.optimize);
        assert_eq!(req.deadline, Some(Duration::from_millis(500)));
        assert_eq!(req.node_budget, Some(4096));
        assert!(!req.emit_qasm);
    }

    #[test]
    fn execute_compiles_a_toffoli() {
        let req = parse_request(&request_line(""), &defaults()).expect("valid request");
        let ctx = ServeContext {
            defaults: defaults(),
            disk: None,
            trace: None,
            gate: None,
        };
        let resp = execute(&req, 7, Instant::now(), &ctx);
        assert_eq!(resp.job, 7);
        match &resp.body {
            ResponseBody::Ok {
                verified, qasm, ..
            } => {
                assert_eq!(*verified, Some(true));
                assert!(qasm.as_deref().expect("qasm emitted").starts_with("OPENQASM 2.0;"));
            }
            other => panic!("want ok, got {other:?}"),
        }
        let rendered = resp.render();
        assert!(rendered.contains("\"id\":\"r1\""), "{rendered}");
        let _ = TOFFOLI_QASM;
    }

    #[test]
    fn node_gate_admits_and_blocks() {
        let gate = NodeBudgetGate::new(100);
        let a = gate.acquire(60, None).expect("fits");
        let deadline = Some(Instant::now() + Duration::from_millis(20));
        assert!(gate.acquire(60, deadline).is_none(), "over ceiling while held");
        drop(a);
        assert!(gate.acquire(100, None).is_some(), "freed on drop");
    }

    #[test]
    fn oversized_want_is_clamped_to_ceiling() {
        let gate = NodeBudgetGate::new(10);
        let permit = gate.acquire(usize::MAX, None).expect("clamped, admits");
        drop(permit);
    }

    #[test]
    fn malformed_request_corpus_yields_structured_errors_never_panics() {
        let d = defaults();
        // (line, expected kind, message fragment) — every entry must come
        // back as a structured rejection of the right category.
        let corpus: Vec<(String, RequestErrorKind, &str)> = vec![
            // Truncated / non-JSON lines.
            ("".to_string(), RequestErrorKind::Parse, "invalid JSON"),
            ("{".to_string(), RequestErrorKind::Parse, "invalid JSON"),
            (
                request_line("")[..40].to_string(),
                RequestErrorKind::Parse,
                "invalid JSON",
            ),
            (
                "{\"id\":\"x\",\"circuit\":\"abc".to_string(),
                RequestErrorKind::Parse,
                "invalid JSON",
            ),
            // Wrong top-level type.
            ("[1,2,3]".to_string(), RequestErrorKind::Schema, "object"),
            ("\"hello\"".to_string(), RequestErrorKind::Schema, "object"),
            ("42".to_string(), RequestErrorKind::Schema, "object"),
            // Wrong field types.
            (
                r#"{"id":7,"circuit":"x","device":"ibmqx4"}"#.to_string(),
                RequestErrorKind::Schema,
                "`id` must be a string",
            ),
            (
                r#"{"id":"x","circuit":[1],"device":"ibmqx4"}"#.to_string(),
                RequestErrorKind::Schema,
                "`circuit` must be a string",
            ),
            (
                r#"{"id":"x","circuit":"c","device":4}"#.to_string(),
                RequestErrorKind::Schema,
                "`device` must be a string",
            ),
            (
                request_line(",\"optimize\":\"yes\""),
                RequestErrorKind::Schema,
                "`optimize` must be a boolean",
            ),
            (
                request_line(",\"deadline_ms\":-5"),
                RequestErrorKind::Schema,
                "non-negative integer",
            ),
            (
                request_line(",\"deadline_ms\":1.5"),
                RequestErrorKind::Schema,
                "non-negative integer",
            ),
            (
                request_line(",\"node_budget\":0"),
                RequestErrorKind::Schema,
                "must be positive",
            ),
            // Missing required fields.
            (
                r#"{"circuit":"c","device":"ibmqx4"}"#.to_string(),
                RequestErrorKind::Schema,
                "missing required field `id`",
            ),
            (
                r#"{"id":"x","device":"ibmqx4"}"#.to_string(),
                RequestErrorKind::Schema,
                "missing required field `circuit`",
            ),
            (
                r#"{"id":"x","circuit":"c"}"#.to_string(),
                RequestErrorKind::Schema,
                "missing required field `device`",
            ),
            // Unknown fields are rejected, not ignored.
            (
                request_line(",\"frobnicate\":true"),
                RequestErrorKind::Schema,
                "unknown field `frobnicate`",
            ),
            // Duplicate keys anywhere are rejected outright.
            (
                request_line(",\"optimize\":true,\"optimize\":false"),
                RequestErrorKind::Schema,
                "duplicate key",
            ),
            // Huge fields hit the size cap with a structured error.
            (
                format!(
                    "{{\"id\":\"big\",\"circuit\":\"{}\",\"device\":\"ibmqx4\"}}",
                    "x".repeat(d.max_source_bytes + 1)
                ),
                RequestErrorKind::TooLarge,
                "caps requests",
            ),
            // Well-typed but meaningless values.
            (
                request_line(",\"cost\":\"cheapest\""),
                RequestErrorKind::BadValue,
                "unknown cost model",
            ),
            (
                request_line(",\"format\":\"quipper\""),
                RequestErrorKind::BadValue,
                "unknown circuit format",
            ),
            (
                request_line(",\"cache\":\"disk\""),
                RequestErrorKind::BadValue,
                "unknown cache mode",
            ),
            (
                r#"{"id":"x","circuit":"not qasm","device":"ibmqx4"}"#.to_string(),
                RequestErrorKind::BadValue,
                "unparsable circuit",
            ),
            (
                r#"{"id":"x","circuit":"c","device":"enterprise"}"#.to_string(),
                RequestErrorKind::BadValue,
                "unknown device",
            ),
        ];
        for (line, kind, fragment) in corpus {
            let err = parse_request(&line, &d).expect_err(&format!("must reject: {line:.80}"));
            assert_eq!(err.kind, kind, "line {line:.80}: {}", err.message);
            assert!(
                err.message.contains(fragment),
                "line {:.80}: message `{}` lacks `{fragment}`",
                line,
                err.message
            );
        }
    }

    #[test]
    fn rejections_keep_the_request_id_when_recoverable() {
        let err = parse_request(
            &request_line(",\"cost\":\"bogus\""),
            &defaults(),
        )
        .unwrap_err();
        assert_eq!(err.id.as_deref(), Some("r1"));
    }

    #[test]
    fn duplicate_keys_are_rejected_with_id() {
        let line = r#"{"id":"dup","circuit":"x","device":"ibmqx4","verify":true,"verify":false}"#;
        let err = parse_request(&line.replace('x', "OPENQASM 2.0;"), &defaults()).unwrap_err();
        assert_eq!(err.kind, RequestErrorKind::Schema);
        assert!(err.message.contains("duplicate key `verify`"), "{}", err.message);
        assert_eq!(err.id.as_deref(), Some("dup"));
    }
}
