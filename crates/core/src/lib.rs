//! Technology-dependent quantum logic synthesis — the primary contribution
//! of Smith & Thornton, "A Quantum Computational Compiler and Design Tool
//! for Technology-Specific Targets" (ISCA 2019).
//!
//! The [`Compiler`] maps technology-independent quantum circuits onto real
//! coupling-map-constrained devices:
//!
//! * [`decompose`] — generalized-Toffoli cascades (Barenco et al.) and the
//!   exact 15-gate Clifford+T Toffoli network;
//! * [`route`] — CNOT orientation reversal (paper Fig. 6) and the
//!   connectivity-tree reroute CTR (paper Figs. 4-5);
//! * [`optimize`](mod@crate::optimize) — recursive identity removal and circuit-identity
//!   rewrites driven by a pluggable cost function (paper Eqn. 2);
//! * [`place`](mod@crate::place) — identity placement (as in the paper) plus the greedy
//!   interaction-aware placement the paper lists as future work;
//! * built-in QMDD formal verification of every output.
//!
//! # Examples
//!
//! ```
//! use qsyn_arch::devices;
//! use qsyn_circuit::Circuit;
//! use qsyn_core::Compiler;
//! use qsyn_gate::Gate;
//!
//! // A Toffoli is not native on IBM Q; compile it for ibmqx4.
//! let mut spec = Circuit::new(3);
//! spec.push(Gate::toffoli(0, 1, 2));
//! let result = Compiler::new(devices::ibmqx4()).compile(&spec)?;
//! assert!(result.optimized.is_technology_ready());
//! assert_eq!(result.verified, Some(true));
//! println!("{}", result.optimized.to_qasm().unwrap());
//! # Ok::<(), qsyn_core::CompileError>(())
//! ```

#![warn(missing_docs)]

pub mod budget;
pub mod cache;
mod compiler;
pub mod decompose;
mod error;
pub mod library;
pub mod optimize;
pub mod persist;
pub mod place;
pub mod pool;
pub mod remap;
pub mod route;
pub mod serve;
pub mod sk;
pub mod strategy;

pub use budget::{BudgetResource, CompileBudget, VerifyMode};
pub use cache::{
    routing_lookup, routing_oracle, routing_table, CacheMode, CacheStatsSnapshot, DistanceOracle,
    RoutingLookup, RoutingTable, SPARSE_ORACLE_MIN_QUBITS,
};
#[cfg(feature = "fault-injection")]
pub use budget::{FaultKind, FaultSpec};
pub use compiler::{
    CompileResult, Compiler, Optimization, StreamSummary, StreamVerifyConfig, Verification,
};
pub use error::CompileError;
pub use decompose::{
    decompose_circuit, decompose_circuit_for, decompose_circuit_with, mct_decompose,
    mct_to_toffolis, rccx, rccx_dagger, DecomposeStrategy,
};
pub use optimize::{
    optimize, optimize_bounded, optimize_traced, optimize_with, OptimizeConfig, OptimizeCounters,
};
pub use persist::{DiskCache, DiskLoad, EvictionSummary};
pub use place::{place, Placement, PlacementStrategy};
pub use remap::{
    route_circuit_persistent, route_circuit_persistent_traced, PersistentRouteCounters,
    SwapStrategy,
};
pub use sk::{approximate_rz, approximate_rz_to_accuracy, approximate_unitary, SkApproximation};
pub use route::{
    ctr_route, ctr_route_with, emit_cnot, emit_cnot_with, route_circuit, CtrRoute, RouteCounters,
    RoutingObjective, DEFAULT_CNOT_ERROR,
};
#[allow(deprecated)]
pub use route::{route_circuit_bounded, route_circuit_bounded_uncached, route_circuit_bounded_via};
pub use strategy::{
    CtrStrategy, LazySynthStrategy, LookaheadStrategy, RouteOutcome, RouteRequest,
    RouteStrategyKind, RoutingStrategy,
};
