//! Pluggable routing strategies: the trait behind every router, the
//! paper-exact [`CtrStrategy`], the SABRE-style [`LookaheadStrategy`], and
//! the lazy-resynthesis skeleton [`LazySynthStrategy`].
//!
//! The paper's CTR router (Figs. 4 and 5) legalizes one CNOT at a time:
//! SWAP the control out along a BFS tree path, execute, SWAP back. That is
//! correct and simple, but second-generation routers do markedly better by
//! looking *ahead*: a SWAP that helps the next gate often helps the ten
//! gates after it too. This module turns routing into a first-class
//! extension point:
//!
//! * [`RoutingStrategy`] — the trait: one [`RouteRequest`] in (circuit,
//!   device, objective, SWAP cap, shared routing table, trace sink), one
//!   [`RouteOutcome`] out (routed circuit plus SWAP/depth counters);
//! * [`CtrStrategy`] — the paper's router re-homed behind the trait,
//!   byte-identical to the historical `route_circuit*` free functions;
//! * [`LookaheadStrategy`] — a bidirectional SABRE-style search
//!   (Li/Ding/Xie): SWAPs persist, candidates are scored against a
//!   decaying window of future two-qubit gates using the precomputed
//!   hop / negative-log-fidelity distance matrices of the shared
//!   [`RoutingTable`], and one restoration network at the end returns
//!   every line home so the result stays QMDD-verifiable;
//! * [`LazySynthStrategy`] — a skeleton of lazy CNOT/phase resynthesis
//!   (Martiel & Goubault de Brugière): it already segments the circuit
//!   into resynthesizable runs and reports them, delegating legalization
//!   to the lookahead machinery until full run resynthesis lands;
//! * [`RouteStrategyKind`] — the registry the compiler and CLI select
//!   strategies through (`--route-strategy ctr|lookahead|lazy-synth|auto`),
//!   with `auto` resolved from the cost model's
//!   [`RouteHint`].

use crate::cache::{DistanceOracle, RoutingTable};
use crate::error::CompileError;
use crate::remap::{restoration_swaps, Layout};
use crate::route::{
    emit_adjacent_cnot, emit_adjacent_cz, emit_adjacent_swap, RoutingObjective,
};
use qsyn_arch::{Device, RouteHint, TwoQubitNative};
use qsyn_circuit::Circuit;
use qsyn_gate::{Gate, SingleOp};
use qsyn_trace::TraceSink;
use std::sync::Arc;

/// Everything a [`RoutingStrategy`] needs to legalize one circuit.
///
/// Built with [`RouteRequest::new`] plus the `with_*` setters; the
/// defaults are the paper's (fewest-SWAPs objective, no cap, no shared
/// table, no trace).
pub struct RouteRequest<'a> {
    /// The technology-ready circuit to legalize (CNOT/CZ + one-qubit
    /// gates; run decomposition first).
    pub circuit: &'a Circuit,
    /// The target coupling map.
    pub device: &'a Device,
    /// What SWAP chains should minimize.
    pub objective: RoutingObjective,
    /// Abort with [`CompileError::BudgetExceeded`] when more than this
    /// many adjacent SWAPs would be inserted (`None` = unbounded); the cap
    /// a [`CompileBudget`](crate::CompileBudget) sets.
    pub max_swaps: Option<usize>,
    /// The shared precomputed routing table for `(device, objective)`,
    /// when caching is on. `None` makes strategies recompute distances
    /// locally (the `CacheMode::Off` differential path).
    pub table: Option<Arc<RoutingTable>>,
    /// The shared sparse [`DistanceOracle`] for `(device, objective)`,
    /// the large-device alternative to `table`: distances are answered
    /// from memoized per-source rows instead of a dense matrix. When both
    /// a table and an oracle are set the oracle wins (the compiler sets
    /// exactly one, per the [`routing_lookup`](crate::routing_lookup)
    /// size threshold).
    pub oracle: Option<Arc<DistanceOracle>>,
    /// An optional sink for fine-grained strategy events. The compiler
    /// emits the per-pass route event itself; strategies may additionally
    /// stream their own diagnostics here (the built-in strategies
    /// currently do not).
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl<'a> RouteRequest<'a> {
    /// A request with the paper's defaults: fewest SWAPs, no cap, no
    /// shared table, no trace sink.
    pub fn new(circuit: &'a Circuit, device: &'a Device) -> Self {
        RouteRequest {
            circuit,
            device,
            objective: RoutingObjective::FewestSwaps,
            max_swaps: None,
            table: None,
            oracle: None,
            trace: None,
        }
    }

    /// Sets the routing objective.
    pub fn with_objective(mut self, objective: RoutingObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Caps the total number of inserted SWAPs.
    pub fn with_max_swaps(mut self, max_swaps: Option<usize>) -> Self {
        self.max_swaps = max_swaps;
        self
    }

    /// Routes through a shared precomputed [`RoutingTable`].
    pub fn with_table(mut self, table: Arc<RoutingTable>) -> Self {
        self.table = Some(table);
        self
    }

    /// Routes through a shared sparse [`DistanceOracle`] (the large-device
    /// counterpart of [`with_table`](Self::with_table)).
    pub fn with_oracle(mut self, oracle: Arc<DistanceOracle>) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Streams strategy diagnostics to a sink.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }
}

/// What a [`RoutingStrategy`] produced: the legalized circuit plus the
/// counters the trace layer reports on the route pass event.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// The legalized circuit (every two-qubit gate native and adjacent).
    pub circuit: Circuit,
    /// Adjacent SWAPs inserted while bringing operands together.
    pub swaps_inserted: usize,
    /// Two-qubit gates that needed at least one SWAP.
    pub gates_rerouted: usize,
    /// Adjacent SWAPs of a final restoration network (zero for strategies
    /// that restore per gate, like CTR).
    pub restoration_swaps: usize,
    /// Depth of the routed circuit.
    pub depth: usize,
    /// Strategy-specific extra counters, merged into the route pass event
    /// (e.g. `lazy_runs` for [`LazySynthStrategy`]).
    pub extra: Vec<(String, f64)>,
}

impl RouteOutcome {
    fn of(circuit: Circuit, swaps: usize, rerouted: usize, restoration: usize) -> Self {
        RouteOutcome {
            depth: qsyn_circuit::depth(&circuit),
            circuit,
            swaps_inserted: swaps,
            gates_rerouted: rerouted,
            restoration_swaps: restoration,
            extra: Vec::new(),
        }
    }

    /// All SWAPs this routing cost, including restoration.
    pub fn total_swaps(&self) -> usize {
        self.swaps_inserted + self.restoration_swaps
    }
}

/// A coupling-map router. Implementations take a whole technology-ready
/// circuit and return it legalized, counting the SWAPs that took; every
/// strategy's output must equal the input circuit as a unitary (the
/// compiler QMDD-verifies it like any other pass).
pub trait RoutingStrategy {
    /// Stable lowercase identifier (the `--route-strategy` value and the
    /// trace-event strategy tag name).
    fn name(&self) -> &'static str;

    /// Legalizes `req.circuit` against `req.device`.
    ///
    /// # Errors
    ///
    /// [`CompileError::UnmappedGate`] for multi-qubit gates the device
    /// library cannot express (run decomposition first),
    /// [`CompileError::RouteNotFound`] on disconnected coupling maps, and
    /// [`CompileError::BudgetExceeded`] when `req.max_swaps` is blown.
    fn route(&self, req: &RouteRequest<'_>) -> Result<RouteOutcome, CompileError>;
}

// ---------------------------------------------------------------------------
// CTR behind the trait.
// ---------------------------------------------------------------------------

/// The paper's connectivity-tree reroute (Figs. 4 and 5) behind the
/// [`RoutingStrategy`] trait: SWAP the control out, execute, SWAP back.
///
/// Byte-identical to the historical `route_circuit*` free functions — with
/// a table in the request it routes through the table, without one it runs
/// the legacy per-gate search, and the two are identical by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct CtrStrategy;

impl RoutingStrategy for CtrStrategy {
    fn name(&self) -> &'static str {
        "ctr"
    }

    fn route(&self, req: &RouteRequest<'_>) -> Result<RouteOutcome, CompileError> {
        let (circuit, k) = if let Some(oracle) = &req.oracle {
            crate::route::route_bounded_via_oracle(
                req.circuit,
                req.device,
                oracle,
                req.max_swaps,
            )?
        } else if let Some(table) = &req.table {
            crate::route::route_bounded_via(req.circuit, req.device, table, req.max_swaps)?
        } else {
            crate::route::route_bounded_uncached(
                req.circuit,
                req.device,
                req.objective,
                req.max_swaps,
            )?
        };
        Ok(RouteOutcome::of(circuit, k.swaps_inserted, k.gates_rerouted, 0))
    }
}

// ---------------------------------------------------------------------------
// Distance field: the metric the lookahead scores against.
// ---------------------------------------------------------------------------

/// All-pairs distances under the active objective, served from the shared
/// [`RoutingTable`] when one is in the request and recomputed locally
/// otherwise (so `CacheMode::Off` stays a true no-cache differential path).
struct DistanceField {
    n: usize,
    /// Hop-count matrix (`u32::MAX` = disconnected). Always present: it is
    /// both the fewest-SWAPs metric and the termination fallback.
    hops: HopSource,
    /// Negative-log-fidelity matrix, only materialized under the fidelity
    /// objective on characterized devices (mirrors `ctr_route_with`'s
    /// fallback to BFS on uncharacterized hardware).
    neglog: Option<NeglogSource>,
}

enum HopSource {
    Table(Arc<RoutingTable>),
    Oracle(Arc<DistanceOracle>),
    Local(Vec<u32>),
}

enum NeglogSource {
    Table(Arc<RoutingTable>),
    Oracle(Arc<DistanceOracle>),
    Local(Vec<f64>),
}

impl DistanceField {
    fn build(
        device: &Device,
        objective: RoutingObjective,
        table: Option<&Arc<RoutingTable>>,
        oracle: Option<&Arc<DistanceOracle>>,
    ) -> Self {
        let n = device.n_qubits();
        let fidelity =
            objective == RoutingObjective::HighestFidelity && device.has_error_data();
        let hops = match (oracle, table) {
            (Some(o), _) => HopSource::Oracle(o.clone()),
            (None, Some(t)) => HopSource::Table(t.clone()),
            (None, None) => {
                let mut m = vec![u32::MAX; n * n];
                for src in 0..n {
                    for (q, &d) in device.distances_from(src).iter().enumerate() {
                        m[src * n + q] = if d >= u32::MAX / 2 { u32::MAX } else { d };
                    }
                }
                HopSource::Local(m)
            }
        };
        let neglog = fidelity.then(|| match (oracle, table) {
            (Some(o), _) => NeglogSource::Oracle(o.clone()),
            (None, Some(t)) => NeglogSource::Table(t.clone()),
            (None, None) => NeglogSource::Local(crate::cache::neglog_distances(device, n)),
        });
        DistanceField { n, hops, neglog }
    }

    fn hop(&self, a: usize, b: usize) -> Option<u32> {
        match &self.hops {
            HopSource::Table(t) => t.hop_distance(a, b),
            HopSource::Oracle(o) => o.hop_distance(a, b),
            HopSource::Local(m) => match m[a * self.n + b] {
                u32::MAX => None,
                d => Some(d),
            },
        }
    }

    /// Distance under the active metric; `None` when disconnected.
    fn dist(&self, a: usize, b: usize) -> Option<f64> {
        match &self.neglog {
            Some(NeglogSource::Table(t)) => t.neglog_distance(a, b),
            Some(NeglogSource::Oracle(o)) => o.neglog_distance(a, b),
            Some(NeglogSource::Local(m)) => {
                let d = m[a * self.n + b];
                d.is_finite().then_some(d)
            }
            None => self.hop(a, b).map(f64::from),
        }
    }

    /// An ALT (landmark) lower bound on `dist(a, b)` under the active
    /// metric, cheap to evaluate (no per-source row is materialized). Only
    /// oracle-backed fields can bound; the others return `0.0`, which is
    /// trivially admissible and disables pruning.
    fn lower_bound(&self, a: usize, b: usize) -> f64 {
        match (&self.neglog, &self.hops) {
            (Some(NeglogSource::Oracle(o)), _) => o.neglog_lower_bound(a, b).unwrap_or(0.0),
            (Some(_), _) => 0.0,
            (None, HopSource::Oracle(o)) => match o.hop_lower_bound(a, b) {
                u32::MAX => f64::INFINITY,
                lb => f64::from(lb),
            },
            (None, _) => 0.0,
        }
    }
}

// ---------------------------------------------------------------------------
// The SABRE-style lookahead router.
// ---------------------------------------------------------------------------

/// Bidirectional lookahead routing in the SABRE family (Li, Ding, Xie):
/// SWAPs persist (the layout drifts), each candidate SWAP is drawn from
/// the neighborhoods of *both* operands of the front gate, and candidates
/// are scored against the front gate plus an exponentially decaying window
/// of upcoming two-qubit gates. One restoration network at the end returns
/// every logical line to its home position, so the routed circuit equals
/// the specification exactly and stays QMDD-verifiable.
///
/// Distances come from the precomputed hop / negative-log-fidelity
/// matrices of the shared [`RoutingTable`] when the request carries one;
/// under the fidelity objective on characterized devices the
/// negative-log-fidelity metric is scored, otherwise hop counts (the same
/// fallback rule the CTR search applies).
#[derive(Debug, Clone, Copy)]
pub struct LookaheadStrategy {
    /// How many upcoming two-qubit gates each candidate SWAP is scored
    /// against (beyond the front gate).
    pub window: usize,
    /// Per-gate decay of the window weight, in `(0, 1)`: the `k`-th future
    /// gate contributes `decay^k` of its distance change.
    pub decay: f64,
}

impl Default for LookaheadStrategy {
    fn default() -> Self {
        LookaheadStrategy {
            window: 20,
            decay: 0.7,
        }
    }
}

impl LookaheadStrategy {
    /// A lookahead router with a custom scoring window.
    pub fn new(window: usize, decay: f64) -> Self {
        LookaheadStrategy { window, decay }
    }
}

impl RoutingStrategy for LookaheadStrategy {
    fn name(&self) -> &'static str {
        "lookahead"
    }

    fn route(&self, req: &RouteRequest<'_>) -> Result<RouteOutcome, CompileError> {
        let device = req.device;
        let n = device.n_qubits();
        let field = DistanceField::build(
            device,
            req.objective,
            req.table.as_ref(),
            req.oracle.as_ref(),
        );

        // The logical operand pairs of every two-qubit gate, in order; the
        // scoring window walks this list past the front gate.
        let cz_native = device.native() == TwoQubitNative::Cz;
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for g in req.circuit.gates() {
            match g {
                Gate::Single { .. } => {}
                Gate::Cx { control, target } => pairs.push((*control, *target)),
                Gate::Cz { control, target } if cz_native => pairs.push((*control, *target)),
                other => return Err(CompileError::UnmappedGate(other.to_string())),
            }
        }

        let mut out = Circuit::new(n);
        if let Some(name) = req.circuit.name() {
            out.set_name(name.to_string());
        }
        let mut layout = Layout::identity(n);
        let mut swaps_inserted = 0usize;
        let mut gates_rerouted = 0usize;
        let check_cap = |used: usize, max: Option<usize>| -> Result<(), CompileError> {
            match max {
                Some(cap) if used > cap => Err(CompileError::BudgetExceeded {
                    pass: qsyn_trace::Pass::Route,
                    resource: crate::budget::BudgetResource::RouteSwaps,
                    limit: cap as u64,
                    used: used as u64,
                }),
                _ => Ok(()),
            }
        };

        let mut next_pair = 0usize; // index into `pairs` of the front gate
        for g in req.circuit.gates() {
            match g {
                Gate::Single { op, qubit } => {
                    out.push(Gate::single(*op, layout.phys_of[*qubit]));
                }
                Gate::Cx { .. } | Gate::Cz { .. } => {
                    let (lc, lt) = pairs[next_pair];
                    next_pair += 1;
                    let mut moved = false;
                    loop {
                        let (pc, pt) = (layout.phys_of[lc], layout.phys_of[lt]);
                        if device.are_adjacent(pc, pt) {
                            break;
                        }
                        let (a, b) = self.best_swap(
                            device, &field, &layout, (pc, pt), &pairs[next_pair..],
                        )?;
                        emit_adjacent_swap(device, a, b, &mut out)?;
                        layout.swap_physical(a, b);
                        moved = true;
                        swaps_inserted += 1;
                        check_cap(swaps_inserted, req.max_swaps)?;
                    }
                    gates_rerouted += usize::from(moved);
                    let (pc, pt) = (layout.phys_of[lc], layout.phys_of[lt]);
                    if matches!(g, Gate::Cx { .. }) {
                        emit_adjacent_cnot(device, pc, pt, &mut out)?;
                    } else {
                        emit_adjacent_cz(device, pc, pt, &mut out)?;
                    }
                }
                other => return Err(CompileError::UnmappedGate(other.to_string())),
            }
        }

        // Return every logical line home with one sorting network.
        let mut restoration = 0usize;
        if !layout.is_identity() {
            for (a, b) in restoration_swaps(device, &mut layout) {
                emit_adjacent_swap(device, a, b, &mut out)?;
                restoration += 1;
            }
            check_cap(swaps_inserted + restoration, req.max_swaps)?;
        }
        Ok(RouteOutcome::of(out, swaps_inserted, gates_rerouted, restoration))
    }
}

impl LookaheadStrategy {
    /// Picks the SWAP to insert for a non-adjacent front gate at physical
    /// positions `(pc, pt)`.
    ///
    /// Candidates are the coupling-map edges incident to either operand
    /// that *strictly reduce* the front gate's distance — a set that is
    /// never empty on a connected map (the first hop of a shortest path
    /// always qualifies), which is what guarantees termination. Among
    /// them, the minimizer of `front + Σ decay^k · dist(future_k)` over
    /// the scoring window wins; ties break toward the smallest `(a, b)`
    /// pair, keeping the search deterministic.
    fn best_swap(
        &self,
        device: &Device,
        field: &DistanceField,
        layout: &Layout,
        (pc, pt): (usize, usize),
        future: &[(usize, usize)],
    ) -> Result<(usize, usize), CompileError> {
        if field.dist(pc, pt).is_none() {
            return Err(CompileError::RouteNotFound {
                control: pc,
                target: pt,
            });
        }
        let admissible = |metric: &dyn Fn(usize, usize) -> Option<f64>| {
            let front = metric(pc, pt).unwrap_or(f64::INFINITY);
            let mut found: Vec<(usize, usize)> = Vec::new();
            for &p in &[pc, pt] {
                for &nb in device.neighbors(p) {
                    let (a, b) = (p.min(nb), p.max(nb));
                    let reloc = |q: usize| {
                        if q == a {
                            b
                        } else if q == b {
                            a
                        } else {
                            q
                        }
                    };
                    let after = metric(reloc(pc), reloc(pt)).unwrap_or(f64::INFINITY);
                    if after < front && !found.contains(&(a, b)) {
                        found.push((a, b));
                    }
                }
            }
            found
        };
        // Admission under the active metric; hop-count fallback covers
        // degenerate metrics (e.g. all-zero error annotations), where the
        // first hop of a shortest hop path always strictly descends.
        let mut candidates = admissible(&|a, b| field.dist(a, b));
        if candidates.is_empty() {
            candidates = admissible(&|a, b| field.hop(a, b).map(f64::from));
        }
        debug_assert!(!candidates.is_empty(), "connected map admits a descent");
        if candidates.is_empty() {
            return Err(CompileError::RouteNotFound {
                control: pc,
                target: pt,
            });
        }

        let mut best: Option<(f64, (usize, usize))> = None;
        for (a, b) in candidates {
            let reloc = |q: usize| {
                if q == a {
                    b
                } else if q == b {
                    a
                } else {
                    q
                }
            };
            // ALT pruning (oracle-backed fields only): the exact score is
            // `dist(front after swap) + Σ decay^k·dist(future_k) ≥
            // lower_bound(front after swap)` because every term is
            // non-negative, so a landmark bound *strictly above* the
            // incumbent score can never win — not even on the `(a, b)`
            // tie-break, which requires score equality. Skipping here is
            // therefore byte-identical to full evaluation while avoiding
            // materializing the candidate's per-source distance rows.
            if let Some((incumbent, _)) = best {
                if field.lower_bound(reloc(pc), reloc(pt)) > incumbent {
                    continue;
                }
            }
            let mut score = field
                .dist(reloc(pc), reloc(pt))
                .unwrap_or(f64::INFINITY);
            let mut weight = 1.0;
            for &(la, lb) in future.iter().take(self.window) {
                weight *= self.decay;
                let (fa, fb) = (layout.phys_of[la], layout.phys_of[lb]);
                if let Some(d) = field.dist(reloc(fa), reloc(fb)) {
                    score += weight * d;
                }
            }
            let better = match best {
                None => true,
                Some((s, pair)) => score < s || (score == s && (a, b) < pair),
            };
            if better {
                best = Some((score, (a, b)));
            }
        }
        Ok(best.expect("non-empty candidate set").1)
    }
}

// ---------------------------------------------------------------------------
// Lazy-synthesis skeleton.
// ---------------------------------------------------------------------------

/// Skeleton of architecture-aware lazy synthesis (Martiel & Goubault de
/// Brugière): instead of legalizing CNOTs one by one, accumulate maximal
/// runs of CNOT and Z-basis phase gates — each run implements a phase
/// polynomial over a linear reversible function — and resynthesize each
/// run directly onto the coupling map.
///
/// **Status:** the run accumulator ships now (run boundaries and counts
/// are reported as `lazy_runs` / `lazy_max_run` on the route event);
/// per-run resynthesis is follow-up work, so legalization currently
/// delegates to the [`LookaheadStrategy`] machinery. The strategy is
/// registered and selectable so traces, benches, and CLI plumbing are
/// already in place when resynthesis lands.
#[derive(Debug, Clone, Copy, Default)]
pub struct LazySynthStrategy {
    inner: LookaheadStrategy,
}

/// Gates a CNOT/phase run absorbs: CNOTs plus diagonal Z-basis phase
/// gates (the run then implements a phase polynomial over a linear
/// reversible function, the object lazy synthesis re-expresses).
fn absorbs_into_run(g: &Gate) -> bool {
    match g {
        Gate::Cx { .. } => true,
        Gate::Single { op, .. } => matches!(
            op,
            SingleOp::Z | SingleOp::S | SingleOp::Sdg | SingleOp::T | SingleOp::Tdg
        ),
        _ => false,
    }
}

/// Maximal CNOT/phase runs of a circuit as `(start, len)` gate-index
/// spans; gates outside every span are barriers (H, X, Y, CZ, ...).
pub(crate) fn cnot_phase_runs(circuit: &Circuit) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut start: Option<usize> = None;
    for (i, g) in circuit.gates().iter().enumerate() {
        if absorbs_into_run(g) {
            start.get_or_insert(i);
        } else if let Some(s) = start.take() {
            runs.push((s, i - s));
        }
    }
    if let Some(s) = start {
        runs.push((s, circuit.gates().len() - s));
    }
    runs
}

impl RoutingStrategy for LazySynthStrategy {
    fn name(&self) -> &'static str {
        "lazy-synth"
    }

    fn route(&self, req: &RouteRequest<'_>) -> Result<RouteOutcome, CompileError> {
        let runs = cnot_phase_runs(req.circuit);
        let mut outcome = self.inner.route(req)?;
        outcome.extra.push(("lazy_runs".to_string(), runs.len() as f64));
        outcome.extra.push((
            "lazy_max_run".to_string(),
            runs.iter().map(|&(_, len)| len).max().unwrap_or(0) as f64,
        ));
        Ok(outcome)
    }
}

// ---------------------------------------------------------------------------
// The strategy registry.
// ---------------------------------------------------------------------------

/// The built-in routing strategies a [`Compiler`](crate::Compiler) can be
/// configured with (`--route-strategy` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteStrategyKind {
    /// The paper's CTR router ([`CtrStrategy`]); the default, and the only
    /// kind that also honors the compiler's
    /// [`SwapStrategy`](crate::SwapStrategy) setting.
    #[default]
    Ctr,
    /// SABRE-style lookahead ([`LookaheadStrategy`]).
    Lookahead,
    /// Lazy CNOT/phase resynthesis skeleton ([`LazySynthStrategy`]).
    LazySynth,
    /// Pick per compile from the cost model's
    /// [`route_hint`](qsyn_arch::CostModel::route_hint): SWAP- and
    /// fidelity-dominated models get the lookahead router, opaque models
    /// keep the paper's CTR.
    Auto,
}

impl RouteStrategyKind {
    /// Every concrete (non-`Auto`) kind, in trace-tag order.
    pub const CONCRETE: [RouteStrategyKind; 3] = [
        RouteStrategyKind::Ctr,
        RouteStrategyKind::Lookahead,
        RouteStrategyKind::LazySynth,
    ];

    /// Parses the `--route-strategy=NAME` CLI value.
    pub fn parse(s: &str) -> Option<RouteStrategyKind> {
        match s {
            "ctr" => Some(RouteStrategyKind::Ctr),
            "lookahead" => Some(RouteStrategyKind::Lookahead),
            "lazy-synth" => Some(RouteStrategyKind::LazySynth),
            "auto" => Some(RouteStrategyKind::Auto),
            _ => None,
        }
    }

    /// Stable lowercase identifier (the `--route-strategy` value).
    pub fn name(self) -> &'static str {
        match self {
            RouteStrategyKind::Ctr => "ctr",
            RouteStrategyKind::Lookahead => "lookahead",
            RouteStrategyKind::LazySynth => "lazy-synth",
            RouteStrategyKind::Auto => "auto",
        }
    }

    /// Resolves `Auto` against a cost model's [`RouteHint`]; concrete
    /// kinds return themselves.
    pub fn resolve(self, hint: RouteHint) -> RouteStrategyKind {
        match self {
            RouteStrategyKind::Auto => match hint {
                RouteHint::Swaps | RouteHint::Fidelity => RouteStrategyKind::Lookahead,
                RouteHint::Conservative => RouteStrategyKind::Ctr,
            },
            concrete => concrete,
        }
    }

    /// Instantiates the strategy with its default parameters. `Auto`
    /// resolves conservatively (CTR); resolve against a
    /// [`RouteHint`] first to honor the cost model.
    pub fn instance(self) -> Box<dyn RoutingStrategy> {
        match self {
            RouteStrategyKind::Ctr | RouteStrategyKind::Auto => Box::new(CtrStrategy),
            RouteStrategyKind::Lookahead => Box::new(LookaheadStrategy::default()),
            RouteStrategyKind::LazySynth => Box::new(LazySynthStrategy::default()),
        }
    }

    /// The numeric tag route events record this strategy under (see
    /// [`qsyn_trace::route_strategy_name`]); `None` for `Auto`, which
    /// always resolves to a concrete kind before routing.
    pub fn tag(self) -> Option<f64> {
        qsyn_trace::route_strategy_tag(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::route_circuit;
    use qsyn_arch::devices;
    use qsyn_qmdd::circuits_equal;

    fn workload() -> Circuit {
        let mut c = Circuit::new(16);
        c.push(Gate::h(0));
        for _ in 0..3 {
            c.push(Gate::cx(5, 10)); // the Fig. 5 distant pair
        }
        c.push(Gate::t(10));
        c.push(Gate::cx(0, 1)); // adjacent
        c.push(Gate::cx(10, 5)); // reversed orientation
        c
    }

    #[test]
    fn kind_parse_name_round_trips() {
        for kind in [
            RouteStrategyKind::Ctr,
            RouteStrategyKind::Lookahead,
            RouteStrategyKind::LazySynth,
            RouteStrategyKind::Auto,
        ] {
            assert_eq!(RouteStrategyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(RouteStrategyKind::parse("sabre"), None);
        assert_eq!(RouteStrategyKind::default(), RouteStrategyKind::Ctr);
    }

    #[test]
    fn auto_resolves_from_the_cost_hint() {
        let auto = RouteStrategyKind::Auto;
        assert_eq!(auto.resolve(RouteHint::Swaps), RouteStrategyKind::Lookahead);
        assert_eq!(auto.resolve(RouteHint::Fidelity), RouteStrategyKind::Lookahead);
        assert_eq!(auto.resolve(RouteHint::Conservative), RouteStrategyKind::Ctr);
        // Concrete kinds ignore the hint.
        assert_eq!(
            RouteStrategyKind::Ctr.resolve(RouteHint::Swaps),
            RouteStrategyKind::Ctr
        );
    }

    #[test]
    fn tags_match_the_trace_registry() {
        for kind in RouteStrategyKind::CONCRETE {
            let tag = kind.tag().expect("concrete kinds have tags");
            assert_eq!(qsyn_trace::route_strategy_name(tag), Some(kind.name()));
            assert_eq!(kind.instance().name(), kind.name());
        }
        assert_eq!(RouteStrategyKind::Auto.tag(), None);
    }

    #[test]
    fn ctr_strategy_matches_the_free_function() {
        let d = devices::ibmqx3();
        let c = workload();
        let via_trait = CtrStrategy
            .route(&RouteRequest::new(&c, &d))
            .unwrap();
        let via_free = route_circuit(&c, &d).unwrap();
        assert_eq!(via_trait.circuit.gates(), via_free.gates());
        assert_eq!(via_trait.restoration_swaps, 0);
        assert!(via_trait.depth > 0);
        // And the table path is identical to the uncached one.
        let (table, _) = crate::cache::routing_table(&d, RoutingObjective::FewestSwaps);
        let via_table = CtrStrategy
            .route(&RouteRequest::new(&c, &d).with_table(table))
            .unwrap();
        assert_eq!(via_table.circuit.gates(), via_free.gates());
    }

    #[test]
    fn lookahead_is_equivalent_and_legal() {
        let d = devices::ibmqx3();
        let c = workload();
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let out = LookaheadStrategy::default()
                .route(&RouteRequest::new(&c, &d).with_objective(objective))
                .unwrap();
            assert!(circuits_equal(&c, &out.circuit), "{objective:?}");
            for g in out.circuit.gates() {
                if let Gate::Cx { control, target } = g {
                    assert!(d.has_coupling(*control, *target), "illegal {g}");
                }
            }
        }
    }

    #[test]
    fn lookahead_beats_ctr_on_repeated_distant_gates() {
        // CTR pays the 5<->10 chain out and back per gate; the lookahead
        // pays it once and amortizes across the repeats.
        let d = devices::ibmqx3();
        let c = workload();
        let ctr = CtrStrategy.route(&RouteRequest::new(&c, &d)).unwrap();
        let look = LookaheadStrategy::default()
            .route(&RouteRequest::new(&c, &d))
            .unwrap();
        assert!(
            look.total_swaps() < ctr.total_swaps(),
            "lookahead {} vs ctr {}",
            look.total_swaps(),
            ctr.total_swaps()
        );
    }

    #[test]
    fn lookahead_with_and_without_table_agree() {
        let d = devices::ibmqx5();
        let c = workload();
        let (table, _) = crate::cache::routing_table(&d, RoutingObjective::FewestSwaps);
        let cached = LookaheadStrategy::default()
            .route(&RouteRequest::new(&c, &d).with_table(table))
            .unwrap();
        let uncached = LookaheadStrategy::default()
            .route(&RouteRequest::new(&c, &d))
            .unwrap();
        assert_eq!(cached.circuit.gates(), uncached.circuit.gates());
        assert_eq!(cached.swaps_inserted, uncached.swaps_inserted);
    }

    #[test]
    fn oracle_backed_routing_matches_the_table_path() {
        let d = devices::ibmqx5();
        let c = workload();
        for objective in [RoutingObjective::FewestSwaps, RoutingObjective::HighestFidelity] {
            let (table, _) = crate::cache::routing_table(&d, objective);
            let (oracle, _) = crate::cache::routing_oracle(&d, objective);
            for kind in RouteStrategyKind::CONCRETE {
                let strategy = kind.instance();
                let via_table = strategy
                    .route(
                        &RouteRequest::new(&c, &d)
                            .with_objective(objective)
                            .with_table(table.clone()),
                    )
                    .unwrap();
                let via_oracle = strategy
                    .route(
                        &RouteRequest::new(&c, &d)
                            .with_objective(objective)
                            .with_oracle(oracle.clone()),
                    )
                    .unwrap();
                assert_eq!(
                    via_table.circuit.gates(),
                    via_oracle.circuit.gates(),
                    "{objective:?} via {}",
                    kind.name()
                );
                assert_eq!(via_table.swaps_inserted, via_oracle.swaps_inserted);
                assert_eq!(via_table.restoration_swaps, via_oracle.restoration_swaps);
            }
        }
    }

    #[test]
    fn lookahead_respects_the_swap_cap() {
        let d = devices::ibmqx3();
        let c = workload();
        match LookaheadStrategy::default()
            .route(&RouteRequest::new(&c, &d).with_max_swaps(Some(1)))
        {
            Err(CompileError::BudgetExceeded {
                pass,
                resource,
                limit,
                ..
            }) => {
                assert_eq!(pass, qsyn_trace::Pass::Route);
                assert_eq!(resource, crate::budget::BudgetResource::RouteSwaps);
                assert_eq!(limit, 1);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // A generous cap changes nothing.
        let capped = LookaheadStrategy::default()
            .route(&RouteRequest::new(&c, &d).with_max_swaps(Some(10_000)))
            .unwrap();
        let free = LookaheadStrategy::default()
            .route(&RouteRequest::new(&c, &d))
            .unwrap();
        assert_eq!(capped.circuit.gates(), free.circuit.gates());
    }

    #[test]
    fn lookahead_cz_native_stays_equivalent() {
        let d = devices::ring(6).with_native(TwoQubitNative::Cz);
        let mut c = Circuit::new(6);
        c.push(Gate::cz(0, 3));
        c.push(Gate::cx(1, 4));
        c.push(Gate::h(2));
        let out = LookaheadStrategy::default()
            .route(&RouteRequest::new(&c, &d))
            .unwrap();
        assert!(circuits_equal(&c, &out.circuit));
        for g in out.circuit.gates() {
            assert!(d.supports(g), "unsupported {g}");
        }
    }

    #[test]
    fn lookahead_disconnected_map_is_route_not_found() {
        let d = Device::from_pairs("split", 4, [(0, 1), (2, 3)]);
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 2));
        assert!(matches!(
            LookaheadStrategy::default().route(&RouteRequest::new(&c, &d)),
            Err(CompileError::RouteNotFound { .. })
        ));
    }

    #[test]
    fn lookahead_rejects_unmapped_gates() {
        let d = devices::ibmqx2();
        let mut c = Circuit::new(5);
        c.push(Gate::toffoli(0, 1, 2));
        assert!(matches!(
            LookaheadStrategy::default().route(&RouteRequest::new(&c, &d)),
            Err(CompileError::UnmappedGate(_))
        ));
    }

    #[test]
    fn lazy_synth_reports_runs_and_stays_equivalent() {
        let d = devices::ibmqx4();
        let mut c = Circuit::new(5);
        c.push(Gate::cx(0, 4));
        c.push(Gate::t(4)); // same run: phase gate
        c.push(Gate::cx(4, 1));
        c.push(Gate::h(2)); // barrier
        c.push(Gate::cx(2, 3));
        assert_eq!(cnot_phase_runs(&c), vec![(0, 3), (4, 1)]);
        let out = LazySynthStrategy::default()
            .route(&RouteRequest::new(&c, &d))
            .unwrap();
        assert!(circuits_equal(&c, &out.circuit));
        assert!(out.extra.contains(&("lazy_runs".to_string(), 2.0)));
        assert!(out.extra.contains(&("lazy_max_run".to_string(), 3.0)));
    }

    #[test]
    fn run_segmentation_edge_cases() {
        let empty = Circuit::new(2);
        assert!(cnot_phase_runs(&empty).is_empty());
        let mut all_barrier = Circuit::new(2);
        all_barrier.push(Gate::h(0));
        all_barrier.push(Gate::x(1));
        assert!(cnot_phase_runs(&all_barrier).is_empty());
        let mut one_run = Circuit::new(2);
        one_run.push(Gate::cx(0, 1));
        one_run.push(Gate::single(SingleOp::S, 1));
        assert_eq!(cnot_phase_runs(&one_run), vec![(0, 2)]);
    }
}
