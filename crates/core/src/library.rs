//! Extended controlled-gate decompositions — the paper's future work
//! ("additional decompositions for other controlled gates will be included
//! in the tool"), realized as exact Clifford+T/CNOT expansions.
//!
//! Everything here is *exact* (equal as matrices, no global-phase slack),
//! so compiled results still pass QMDD verification. Controlled phases
//! whose angle is an odd multiple of `pi/4` (e.g. controlled-T) have no
//! exact ancilla-free Clifford+T realization and are reported as such.

use qsyn_gate::{Gate, SingleOp};

/// Controlled-S: `diag(1, 1, 1, i)` as a 5-gate phase gadget
/// (2 CNOTs, 3 T-family gates).
pub fn controlled_s(control: usize, target: usize) -> Vec<Gate> {
    vec![
        Gate::t(control),
        Gate::t(target),
        Gate::cx(control, target),
        Gate::tdg(target),
        Gate::cx(control, target),
    ]
}

/// Controlled-S†: `diag(1, 1, 1, -i)`.
pub fn controlled_sdg(control: usize, target: usize) -> Vec<Gate> {
    vec![
        Gate::tdg(control),
        Gate::tdg(target),
        Gate::cx(control, target),
        Gate::t(target),
        Gate::cx(control, target),
    ]
}

/// Controlled `diag(1, e^{i k pi/4})` for even `k`; `None` for odd `k`,
/// which is not exactly realizable in ancilla-free Clifford+T (the
/// controlled-T case).
pub fn controlled_phase_steps(k: u8, control: usize, target: usize) -> Option<Vec<Gate>> {
    match k % 8 {
        0 => Some(vec![]),
        2 => Some(controlled_s(control, target)),
        4 => Some(vec![
            Gate::h(target),
            Gate::cx(control, target),
            Gate::h(target),
        ]),
        6 => Some(controlled_sdg(control, target)),
        _ => None,
    }
}

/// Controlled-Hadamard, exact 7-gate network
/// (`S t; H t; T t; CX; T† t; H t; S† t`).
pub fn controlled_h(control: usize, target: usize) -> Vec<Gate> {
    vec![
        Gate::single(SingleOp::S, target),
        Gate::h(target),
        Gate::t(target),
        Gate::cx(control, target),
        Gate::tdg(target),
        Gate::h(target),
        Gate::single(SingleOp::Sdg, target),
    ]
}

/// Controlled-Y via `S† t; CX; S t` (Y = S X S†).
pub fn controlled_y(control: usize, target: usize) -> Vec<Gate> {
    vec![
        Gate::single(SingleOp::Sdg, target),
        Gate::cx(control, target),
        Gate::single(SingleOp::S, target),
    ]
}

/// Multi-controlled Z: `MCT` conjugated by Hadamards on the target
/// (technology-independent; the back-end decomposes the inner MCT).
/// The gate is symmetric in all of its lines, so any line may serve as
/// the nominal target.
pub fn multi_controlled_z(controls: Vec<usize>, target: usize) -> Vec<Gate> {
    vec![
        Gate::h(target),
        Gate::mct(controls, target),
        Gate::h(target),
    ]
}

/// Fredkin (controlled-SWAP) as CNOT-Toffoli-CNOT.
pub fn fredkin(control: usize, a: usize, b: usize) -> Vec<Gate> {
    vec![
        Gate::cx(b, a),
        Gate::toffoli(control, a, b),
        Gate::cx(b, a),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_circuit::Circuit;
    use qsyn_gate::{Matrix, C64};

    fn matrix_of(gates: Vec<Gate>, n: usize) -> Matrix {
        let mut c = Circuit::new(n);
        c.extend(gates);
        c.to_matrix()
    }

    fn controlled(u: &Matrix, n: usize, control: usize, target: usize) -> Matrix {
        // Build the expected controlled-U dense matrix directly.
        let dim = 1usize << n;
        let mut m = Matrix::identity(dim);
        let cb = 1usize << (n - 1 - control);
        let tb = 1usize << (n - 1 - target);
        for col in 0..dim {
            if col & cb == 0 {
                continue;
            }
            let t_in = (col & tb != 0) as usize;
            m[(col, col)] = u[(t_in, t_in)];
            m[(col ^ tb, col)] = u[(t_in ^ 1, t_in)];
        }
        m
    }

    #[test]
    fn controlled_s_is_exact() {
        let s = SingleOp::S.matrix();
        for (c, t) in [(0usize, 1usize), (1, 0)] {
            let got = matrix_of(controlled_s(c, t), 2);
            assert!(got.approx_eq(&controlled(&s, 2, c, t)), "c={c} t={t}");
        }
    }

    #[test]
    fn controlled_sdg_is_exact_and_inverse() {
        let sdg = SingleOp::Sdg.matrix();
        let got = matrix_of(controlled_sdg(0, 1), 2);
        assert!(got.approx_eq(&controlled(&sdg, 2, 0, 1)));
        let mut both = Circuit::new(2);
        both.extend(controlled_s(0, 1));
        both.extend(controlled_sdg(0, 1));
        assert!(both.to_matrix().approx_eq(&Matrix::identity(4)));
    }

    #[test]
    fn controlled_phase_steps_even_cases() {
        for k in [0u8, 2, 4, 6] {
            let gates = controlled_phase_steps(k, 0, 1).unwrap();
            let phase = C64::cis(std::f64::consts::FRAC_PI_4 * k as f64);
            let u = Matrix::from_rows(&[[C64::ONE, C64::ZERO], [C64::ZERO, phase]]);
            let got = matrix_of(gates, 2);
            assert!(got.approx_eq(&controlled(&u, 2, 0, 1)), "k={k}");
        }
    }

    #[test]
    fn controlled_phase_odd_steps_are_unrealizable() {
        for k in [1u8, 3, 5, 7] {
            assert!(controlled_phase_steps(k, 0, 1).is_none(), "k={k}");
        }
    }

    #[test]
    fn controlled_h_is_exact() {
        let h = SingleOp::H.matrix();
        let got = matrix_of(controlled_h(0, 1), 2);
        assert!(
            got.approx_eq(&controlled(&h, 2, 0, 1)),
            "CH mismatch:\n{got}"
        );
    }

    #[test]
    fn controlled_y_is_exact() {
        let y = SingleOp::Y.matrix();
        let got = matrix_of(controlled_y(1, 0), 2);
        assert!(got.approx_eq(&controlled(&y, 2, 1, 0)));
    }

    #[test]
    fn fredkin_is_controlled_swap() {
        let mut c = Circuit::new(3);
        c.extend(fredkin(0, 1, 2));
        assert_eq!(c.permute_basis(0b110), 0b101);
        assert_eq!(c.permute_basis(0b101), 0b110);
        assert_eq!(c.permute_basis(0b011), 0b011);
        assert_eq!(c.permute_basis(0b000), 0b000);
        // And as a full matrix on an embedding with a spectator line.
        let mut wide = Circuit::new(4);
        wide.extend(fredkin(3, 0, 2));
        assert!(wide.to_matrix().is_permutation());
    }

    #[test]
    fn multi_controlled_z_is_symmetric_phase() {
        // CCZ flips the sign of |111> only, regardless of which line is
        // the nominal target.
        for target in 0..3usize {
            let controls: Vec<usize> = (0..3).filter(|&q| q != target).collect();
            let mut c = Circuit::new(3);
            c.extend(multi_controlled_z(controls, target));
            let m = c.to_matrix();
            for b in 0..8usize {
                for r in 0..8usize {
                    let expect = if r == b {
                        if b == 7 { -C64::ONE } else { C64::ONE }
                    } else {
                        C64::ZERO
                    };
                    assert!(m[(r, b)].approx_eq(expect), "target {target} ({r},{b})");
                }
            }
        }
    }

    #[test]
    fn library_gates_compile_on_devices() {
        // The expansions are plain Clifford+T + CNOT, so the full pipeline
        // maps and verifies them.
        let mut spec = Circuit::new(3);
        spec.extend(controlled_s(0, 2));
        spec.extend(controlled_h(1, 0));
        spec.extend(fredkin(2, 0, 1));
        let r = crate::Compiler::new(qsyn_arch::devices::ibmqx4())
            .compile(&spec)
            .unwrap();
        assert_eq!(r.verified, Some(true));
    }
}
