//! Gate decomposition into the transmon library (paper Section 4, steps
//! 3-4).
//!
//! * Generalized Toffoli gates become Toffoli cascades via the dirty-ancilla
//!   constructions of Barenco et al. (Lemmas 7.2 / 7.3).
//! * Toffoli gates become the standard 15-gate Clifford+T network of
//!   Nielsen & Chuang (7 T/T†, 6 CNOT, 2 H) — the `t = 7` per Toffoli that
//!   the paper's Table 5 and Table 8 T-counts are built from.
//! * CZ and SWAP expand through their CNOT identities.

use crate::error::CompileError;
use qsyn_arch::Device;
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;

/// How generalized Toffolis are lowered to the gate library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecomposeStrategy {
    /// Every Toffoli in the Barenco chain is the exact 15-gate Clifford+T
    /// network (7 T each) — the paper's arithmetic, reproducing its
    /// T-counts exactly.
    #[default]
    Exact,
    /// The inner chain Toffolis are *relative-phase* Toffolis (4 T each),
    /// paired so their control-dependent phases cancel across the V-chain;
    /// only the two target-facing Toffolis stay exact. Cuts the T-count of
    /// wide MCT gates roughly in half while the overall unitary remains
    /// exactly equal (QMDD-verified).
    RelativePhase,
}

/// The 9-gate relative-phase Toffoli: a Toffoli multiplied by a diagonal
/// relative phase (`diag(1,1,1,-1,1,1,-i,i)` on the `|c0 c1 t>` basis),
/// with 4 T gates instead of 7. Usable wherever the phase later cancels
/// against [`rccx_dagger`] along every computational trajectory.
pub fn rccx(c0: usize, c1: usize, target: usize) -> Vec<Gate> {
    vec![
        Gate::h(target),
        Gate::t(target),
        Gate::cx(c0, target),
        Gate::tdg(target),
        Gate::cx(c1, target),
        Gate::t(target),
        Gate::cx(c0, target),
        Gate::tdg(target),
        Gate::h(target),
    ]
}

/// The adjoint of [`rccx`] (`+i X` on the all-ones control subspace).
pub fn rccx_dagger(c0: usize, c1: usize, target: usize) -> Vec<Gate> {
    let mut gates = rccx(c0, c1, target);
    gates.reverse();
    for g in &mut gates {
        *g = g.inverse();
    }
    gates
}

/// Decomposes a Toffoli into the standard exact Clifford+T network.
///
/// The sequence uses 7 T/T† gates, 6 CNOTs and 2 Hadamards and equals the
/// Toffoli exactly (no residual global phase), so QMDD verification accepts
/// it.
pub fn toffoli_clifford_t(c0: usize, c1: usize, target: usize) -> Vec<Gate> {
    let (a, b, t) = (c0, c1, target);
    vec![
        Gate::h(t),
        Gate::cx(b, t),
        Gate::tdg(t),
        Gate::cx(a, t),
        Gate::t(t),
        Gate::cx(b, t),
        Gate::tdg(t),
        Gate::cx(a, t),
        Gate::t(b),
        Gate::t(t),
        Gate::h(t),
        Gate::cx(a, b),
        Gate::t(a),
        Gate::tdg(b),
        Gate::cx(a, b),
    ]
}

/// Decomposes a CZ through `H(t) CX H(t)`.
pub fn cz_to_cx(control: usize, target: usize) -> Vec<Gate> {
    vec![Gate::h(target), Gate::cx(control, target), Gate::h(target)]
}

/// Decomposes a SWAP into three CNOTs (paper Fig. 3). Direction legality is
/// the router's concern.
pub fn swap_to_cx(a: usize, b: usize) -> Vec<Gate> {
    vec![Gate::cx(a, b), Gate::cx(b, a), Gate::cx(a, b)]
}

/// Decomposes a generalized Toffoli with `controls.len() >= 3` controls
/// into a cascade of ordinary Toffoli gates using lines outside the gate's
/// support as *dirty* ancillas (their state is arbitrary and restored).
///
/// Strategy (Barenco et al.):
/// * with at least `m - 2` spare lines, the V-chain of Lemma 7.2 uses
///   exactly `4(m - 2)` Toffolis;
/// * with at least one spare line, Lemma 7.3 splits the controls in half
///   and recurses, each half finding its dirty ancillas in the other half;
/// * with no spare line the gate is not synthesizable on this register.
///
/// # Errors
///
/// Returns [`CompileError::NoAncilla`] when `spare` is empty.
pub fn mct_to_toffolis(
    controls: &[usize],
    target: usize,
    spare: &[usize],
) -> Result<Vec<Gate>, CompileError> {
    mct_decompose(controls, target, spare, DecomposeStrategy::Exact)
}

/// [`mct_to_toffolis`] under a configurable [`DecomposeStrategy`]. With
/// [`DecomposeStrategy::RelativePhase`] the result mixes ordinary Toffoli
/// gates with already-expanded relative-phase networks; either way the
/// gate list equals the generalized Toffoli *exactly* (the relative phases
/// cancel pairwise across the chain).
///
/// # Errors
///
/// Returns [`CompileError::NoAncilla`] when `spare` is empty and the gate
/// has three or more controls.
pub fn mct_decompose(
    controls: &[usize],
    target: usize,
    spare: &[usize],
    strategy: DecomposeStrategy,
) -> Result<Vec<Gate>, CompileError> {
    let m = controls.len();
    match m {
        0 => return Ok(vec![Gate::x(target)]),
        1 => return Ok(vec![Gate::cx(controls[0], target)]),
        2 => return Ok(vec![Gate::toffoli(controls[0], controls[1], target)]),
        _ => {}
    }
    debug_assert!(
        spare.iter().all(|s| !controls.contains(s) && *s != target),
        "spare lines must be outside the gate support"
    );
    if spare.len() >= m - 2 {
        Ok(match strategy {
            DecomposeStrategy::Exact => v_chain(controls, target, &spare[..m - 2]),
            DecomposeStrategy::RelativePhase => {
                v_chain_relative_phase(controls, target, &spare[..m - 2])
            }
        })
    } else if !spare.is_empty() {
        split_with_one_ancilla(controls, target, spare, strategy)
    } else {
        Err(CompileError::NoAncilla { controls: m })
    }
}

/// The V-chain with relative-phase inner gates: the target-facing Toffoli
/// pair stays exact (its operand values differ between occurrences, so a
/// relative phase would survive), while every `A`/`B` chain gate appears in
/// `R ... R†` pairings whose operand values repeat in the mirror pattern
/// `v, w, w, v` — the diagonal phases cancel trajectory-by-trajectory,
/// which the decomposition tests certify by QMDD equality.
fn v_chain_relative_phase(controls: &[usize], target: usize, anc: &[usize]) -> Vec<Gate> {
    let m = controls.len();
    debug_assert_eq!(anc.len(), m - 2);
    let mut gates: Vec<Gate> = Vec::new();
    for half in 0..2 {
        // Top gate: exact Toffoli (real) in both halves.
        gates.push(Gate::toffoli(controls[m - 1], anc[m - 3], target));
        // Descend with relative-phase gates.
        for i in (1..=m - 3).rev() {
            gates.extend(rccx(controls[i + 1], anc[i - 1], anc[i]));
        }
        // Peak: R in the first half, R† in the second (identical control
        // values at both occurrences).
        if half == 0 {
            gates.extend(rccx(controls[0], controls[1], anc[0]));
        } else {
            gates.extend(rccx_dagger(controls[0], controls[1], anc[0]));
        }
        // Ascend with the adjoints.
        for i in 1..=m - 3 {
            gates.extend(rccx_dagger(controls[i + 1], anc[i - 1], anc[i]));
        }
    }
    gates
}

/// Lemma 7.2: the dirty-ancilla V-chain, `4(m-2)` Toffolis for `m >= 3`
/// controls. Two identical halves; the second undoes every ancilla side
/// effect of the first while doubling the target contribution into the
/// full product of controls.
fn v_chain(controls: &[usize], target: usize, anc: &[usize]) -> Vec<Gate> {
    let m = controls.len();
    debug_assert_eq!(anc.len(), m - 2);
    let mut half: Vec<Gate> = Vec::with_capacity(2 * (m - 2));
    // Top gate: target ^= c_{m-1} & a_{m-3}.
    half.push(Gate::toffoli(controls[m - 1], anc[m - 3], target));
    // Descend the chain: a_i ^= c_{i+1} & a_{i-1}.
    for i in (1..=m - 3).rev() {
        half.push(Gate::toffoli(controls[i + 1], anc[i - 1], anc[i]));
    }
    // Peak: a_0 ^= c_0 & c_1.
    half.push(Gate::toffoli(controls[0], controls[1], anc[0]));
    // Ascend back.
    for i in 1..=m - 3 {
        half.push(Gate::toffoli(controls[i + 1], anc[i - 1], anc[i]));
    }
    let mut gates = half.clone();
    gates.extend(half);
    gates
}

/// Lemma 7.3: split the control set across one borrowed line; each half's
/// MCT finds its dirty ancillas among the other half's lines.
fn split_with_one_ancilla(
    controls: &[usize],
    target: usize,
    spare: &[usize],
    strategy: DecomposeStrategy,
) -> Result<Vec<Gate>, CompileError> {
    let m = controls.len();
    let a = spare[0];
    let k = m.div_ceil(2);
    let (c1, c2) = controls.split_at(k);
    // First sub-gate: a ^= AND(c1); dirty ancillas: c2, target, extra spare.
    // Each sub-gate decomposes to an *exact* equal (relative phases cancel
    // within it), so the composition stays exact under either strategy.
    let mut spare1: Vec<usize> = c2.to_vec();
    spare1.push(target);
    spare1.extend_from_slice(&spare[1..]);
    let g1 = mct_decompose(c1, a, &spare1, strategy)?;
    // Second sub-gate: target ^= AND(c2 + a); dirty ancillas: c1, extras.
    let mut ctl2: Vec<usize> = c2.to_vec();
    ctl2.push(a);
    let mut spare2: Vec<usize> = c1.to_vec();
    spare2.extend_from_slice(&spare[1..]);
    let g2 = mct_decompose(&ctl2, target, &spare2, strategy)?;
    let mut gates = Vec::with_capacity(2 * (g1.len() + g2.len()));
    gates.extend(g1.iter().cloned());
    gates.extend(g2.iter().cloned());
    gates.extend(g1);
    gates.extend(g2);
    Ok(gates)
}

/// Expands every technology-independent gate of `circuit` into the transmon
/// library (one-qubit gates + CNOT), using the full register width as the
/// ancilla pool for generalized Toffolis.
///
/// The register is *not* widened: the paper reports `N/A` when a device
/// cannot host a decomposition, which surfaces here as
/// [`CompileError::NoAncilla`].
///
/// # Errors
///
/// Returns [`CompileError::NoAncilla`] if a generalized Toffoli has no
/// spare line to borrow.
pub fn decompose_circuit(circuit: &Circuit) -> Result<Circuit, CompileError> {
    decompose_circuit_for(circuit, None)
}

/// [`decompose_circuit`] with a target device: spare lines borrowed as
/// dirty ancillas are ordered by coupling-graph distance to the gate being
/// decomposed, so the CNOTs the decomposition emits stay short-range and
/// the subsequent CTR rerouting pays far fewer SWAPs.
///
/// # Errors
///
/// Returns [`CompileError::NoAncilla`] if a generalized Toffoli has no
/// spare line to borrow.
pub fn decompose_circuit_for(
    circuit: &Circuit,
    device: Option<&Device>,
) -> Result<Circuit, CompileError> {
    decompose_circuit_with(circuit, device, DecomposeStrategy::Exact)
}

/// [`decompose_circuit_for`] under a configurable [`DecomposeStrategy`].
///
/// # Errors
///
/// Returns [`CompileError::NoAncilla`] if a generalized Toffoli has no
/// spare line to borrow.
pub fn decompose_circuit_with(
    circuit: &Circuit,
    device: Option<&Device>,
    strategy: DecomposeStrategy,
) -> Result<Circuit, CompileError> {
    decompose_circuit_impl(circuit, device, strategy, false).map(|(c, _)| c)
}

/// What the decomposition memo did while lowering a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecomposeCounters {
    /// Wide-MCT cascades instantiated from a memoized template.
    pub memo_hits: usize,
    /// Wide-MCT cascades synthesized from scratch (and memoized).
    pub memo_misses: usize,
}

/// [`decompose_circuit_with`] through the canonical-shape decomposition
/// memo: each wide MCT's Barenco cascade is synthesized once per
/// `(arity, spare-count, strategy)` shape and instantiated here by qubit
/// substitution. Output is byte-identical to the unmemoized path (the
/// substitution rebuilds gates through the same normalizing constructors,
/// and Clifford+T expansion runs *after* substitution).
///
/// # Errors
///
/// Returns [`CompileError::NoAncilla`] if a generalized Toffoli has no
/// spare line to borrow.
pub fn decompose_circuit_memo(
    circuit: &Circuit,
    device: Option<&Device>,
    strategy: DecomposeStrategy,
) -> Result<(Circuit, DecomposeCounters), CompileError> {
    decompose_circuit_impl(circuit, device, strategy, true)
}

/// Shared lowering loop; `use_memo` selects template instantiation vs.
/// direct synthesis for wide MCT gates.
fn decompose_circuit_impl(
    circuit: &Circuit,
    device: Option<&Device>,
    strategy: DecomposeStrategy,
    use_memo: bool,
) -> Result<(Circuit, DecomposeCounters), CompileError> {
    let n = circuit.n_qubits();
    let mut out = Circuit::new(n);
    if let Some(name) = circuit.name() {
        out.set_name(name.to_string());
    }
    let mut counters = DecomposeCounters::default();
    let cz_native = device.is_some_and(|d| d.native() == qsyn_arch::TwoQubitNative::Cz);
    // Expands the Toffoli cascade of one wide MCT into `out` — shared by
    // the memoized and direct paths so they stay gate-for-gate identical.
    let emit_cascade = |out: &mut Circuit, cascade: Vec<Gate>| {
        for tof in cascade {
            match tof {
                Gate::Mct {
                    controls: tc,
                    target: tt,
                } => out.extend(toffoli_clifford_t(tc[0], tc[1], tt)),
                other => out.push(other),
            }
        }
    };
    for g in circuit.gates() {
        match g {
            Gate::Single { .. } | Gate::Cx { .. } => out.push(g.clone()),
            // CZ is native on CZ-library devices; expand it only for CNOT
            // libraries (the IBM machines of the paper).
            Gate::Cz { .. } if cz_native => out.push(g.clone()),
            Gate::Cz { control, target } => out.extend(cz_to_cx(*control, *target)),
            Gate::Swap { a, b } => out.extend(swap_to_cx(*a, *b)),
            Gate::Mct { controls, target } => {
                if controls.len() == 2 {
                    out.extend(toffoli_clifford_t(controls[0], controls[1], *target));
                } else {
                    let mut spare: Vec<usize> = (0..n)
                        .filter(|q| !controls.contains(q) && q != target)
                        .collect();
                    if let Some(d) = device {
                        let dist = d.distances_from_set(&g.qubits());
                        spare.sort_by_key(|&q| (dist[q], q));
                    }
                    if use_memo {
                        let m = controls.len();
                        let eff = spare.len().min(m - 2);
                        let (template, hit) = crate::cache::mct_template(m, eff, strategy)?;
                        if hit {
                            counters.memo_hits += 1;
                        } else {
                            counters.memo_misses += 1;
                        }
                        let cascade = crate::cache::instantiate_mct_template(
                            &template,
                            controls,
                            *target,
                            &spare[..eff],
                        );
                        emit_cascade(&mut out, cascade);
                    } else {
                        let cascade = mct_decompose(controls, *target, &spare, strategy)?;
                        emit_cascade(&mut out, cascade);
                    }
                }
            }
        }
    }
    Ok((out, counters))
}


/// Number of Toffoli gates produced for an `m`-control MCT by
/// [`mct_to_toffolis`] when a full dirty-ancilla chain is available:
/// `4(m-2)` for `m >= 3` (so `7 * 4(m-2)` T gates after Clifford+T
/// expansion — the arithmetic behind the paper's Table 8 T-counts).
pub fn v_chain_toffoli_count(m: usize) -> usize {
    match m {
        0 | 1 => 0,
        2 => 1,
        _ => 4 * (m - 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toffoli_clifford_t_is_exact() {
        let mut c = Circuit::new(3);
        c.extend(toffoli_clifford_t(0, 1, 2));
        assert!(c.to_matrix().approx_eq(&Gate::toffoli(0, 1, 2).to_matrix(3)));
        let s = c.stats();
        assert_eq!(s.t_count, 7);
        assert_eq!(s.cnot_count, 6);
        assert_eq!(s.volume, 15);
    }

    #[test]
    fn toffoli_clifford_t_other_lines() {
        let mut c = Circuit::new(4);
        c.extend(toffoli_clifford_t(3, 1, 0));
        assert!(c.to_matrix().approx_eq(&Gate::toffoli(3, 1, 0).to_matrix(4)));
    }

    #[test]
    fn cz_and_swap_expansions_are_exact() {
        let mut c = Circuit::new(2);
        c.extend(cz_to_cx(0, 1));
        assert!(c.to_matrix().approx_eq(&Gate::cz(0, 1).to_matrix(2)));
        let mut s = Circuit::new(2);
        s.extend(swap_to_cx(0, 1));
        assert!(s.to_matrix().approx_eq(&Gate::swap(0, 1).to_matrix(2)));
    }

    /// Exhaustively verifies an MCT decomposition as a permutation,
    /// including arbitrary dirty-ancilla contents.
    fn check_mct(controls: &[usize], target: usize, spare: &[usize], n: usize) {
        let gates = mct_to_toffolis(controls, target, spare).unwrap();
        let mut c = Circuit::new(n);
        c.extend(gates);
        assert!(c.is_classical());
        let bit = |q: usize| 1u64 << (n - 1 - q);
        for input in 0..(1u64 << n) {
            let out = c.permute_basis(input);
            let fire = controls.iter().all(|&q| input & bit(q) != 0);
            let expect = if fire { input ^ bit(target) } else { input };
            assert_eq!(out, expect, "controls {controls:?} at {input:#b}");
        }
    }

    #[test]
    fn v_chain_small_cases() {
        check_mct(&[0, 1, 2], 3, &[4], 5); // m=3, 1 ancilla
        check_mct(&[0, 1, 2, 3], 4, &[5, 6], 7); // m=4, 2 ancillas
        check_mct(&[0, 1, 2, 3, 4], 5, &[6, 7, 8], 9); // m=5, 3 ancillas
    }

    #[test]
    fn v_chain_gate_count_is_4m_minus_8() {
        for m in 3..=8 {
            let controls: Vec<usize> = (0..m).collect();
            let spare: Vec<usize> = (m + 1..2 * m - 1).collect();
            let gates = mct_to_toffolis(&controls, m, &spare).unwrap();
            assert_eq!(gates.len(), 4 * (m - 2), "m = {m}");
            assert_eq!(gates.len(), v_chain_toffoli_count(m));
        }
    }

    #[test]
    fn split_with_single_ancilla() {
        // m=4 controls, exactly one spare line: forces the Lemma 7.3 path.
        check_mct(&[0, 1, 2, 3], 4, &[5], 6);
        // m=5 with one spare.
        check_mct(&[0, 1, 2, 3, 4], 5, &[6], 7);
    }

    #[test]
    fn split_matches_paper_toffoli_count_for_t5() {
        // A T5 (4 controls) with exactly one borrowed line decomposes into
        // 10 Toffolis = 70 T gates — the 4gt12-v0_88 row of Table 5.
        let gates = mct_to_toffolis(&[0, 1, 2, 3], 4, &[5]).unwrap();
        assert_eq!(gates.len(), 10);
    }

    #[test]
    fn no_ancilla_is_an_error() {
        let err = mct_to_toffolis(&[0, 1, 2], 3, &[]).unwrap_err();
        assert_eq!(err, CompileError::NoAncilla { controls: 3 });
    }

    #[test]
    fn ancillas_are_restored_even_when_dirty() {
        // Covered by check_mct (it enumerates every ancilla value), but make
        // the property explicit for the V-chain.
        check_mct(&[0, 2, 4], 1, &[3], 5);
    }

    #[test]
    fn decompose_circuit_full_flow() {
        let mut c = Circuit::new(6);
        c.push(Gate::h(0));
        c.push(Gate::cz(0, 1));
        c.push(Gate::swap(1, 2));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::mct(vec![0, 1, 2, 3], 4));
        let d = decompose_circuit(&c).unwrap();
        assert!(d.is_technology_ready());
        assert!(d.to_matrix().approx_eq(&c.to_matrix()));
    }

    #[test]
    fn decompose_reports_na_when_too_tight() {
        // T5 occupying the whole 5-qubit register: no spare line.
        let mut c = Circuit::new(5);
        c.push(Gate::mct(vec![0, 1, 2, 3], 4));
        assert_eq!(
            decompose_circuit(&c).unwrap_err(),
            CompileError::NoAncilla { controls: 4 }
        );
    }

    #[test]
    fn table8_t_count_arithmetic() {
        // T6..T10 gates decomposed with full ancilla chains: 4(m-2)
        // Toffolis x 7 T each; four gates per benchmark.
        let expected_t = |m: usize| 4 * (m - 2) * 7 * 4;
        assert_eq!(expected_t(5), 336); // T6_b
        assert_eq!(expected_t(6), 448); // T7_b
        assert_eq!(expected_t(7), 560); // T8_b
        assert_eq!(expected_t(8), 672); // T9_b
        assert_eq!(expected_t(9), 784); // T10_b
    }

    #[test]
    fn deep_recursion_with_scarce_ancillas() {
        // m=7 controls with a single spare line on 9 qubits.
        check_mct(&[0, 1, 2, 3, 4, 5, 6], 7, &[8], 9);
    }

    #[test]
    fn rccx_is_toffoli_times_diagonal_phase() {
        use qsyn_gate::C64;
        let mut c = Circuit::new(3);
        c.extend(rccx(0, 1, 2));
        let m = c.to_matrix();
        let tof = Gate::toffoli(0, 1, 2).to_matrix(3);
        // RCCX = D * TOF with the measured output-side diagonal
        // D = diag(1, 1, 1, -1, 1, 1, -i, i): a pure relative phase, so
        // the permutation part is exactly the Toffoli.
        let i = C64::I;
        let d = [
            C64::ONE,
            C64::ONE,
            C64::ONE,
            -C64::ONE,
            C64::ONE,
            C64::ONE,
            -i,
            i,
        ];
        for col in 0..8usize {
            for row in 0..8usize {
                let expect = d[row] * tof[(row, col)];
                assert!(m[(row, col)].approx_eq(expect), "({row},{col})");
            }
        }
    }

    #[test]
    fn rccx_dagger_inverts_rccx() {
        let mut c = Circuit::new(3);
        c.extend(rccx(0, 1, 2));
        c.extend(rccx_dagger(0, 1, 2));
        assert!(c
            .to_matrix()
            .approx_eq(&qsyn_gate::Matrix::identity(8)));
    }

    /// The relative-phase decomposition must be *exactly* the MCT — phases
    /// included — which the canonical QMDD comparison certifies.
    fn check_mct_rp(controls: &[usize], target: usize, spare: &[usize], n: usize) {
        let gates =
            mct_decompose(controls, target, spare, DecomposeStrategy::RelativePhase).unwrap();
        let mut got = Circuit::new(n);
        got.extend(gates);
        let mut spec = Circuit::new(n);
        spec.push(Gate::mct(controls.to_vec(), target));
        assert!(
            qsyn_qmdd::circuits_equal(&spec, &got),
            "relative phases failed to cancel for {controls:?}"
        );
    }

    #[test]
    fn relative_phase_chain_is_exact() {
        check_mct_rp(&[0, 1, 2], 3, &[4], 5); // m=3
        check_mct_rp(&[0, 1, 2, 3], 4, &[5, 6], 7); // m=4
        check_mct_rp(&[0, 1, 2, 3, 4], 5, &[6, 7, 8], 9); // m=5
        check_mct_rp(&[0, 2, 4, 6], 1, &[3, 5], 7); // interleaved lines
    }

    #[test]
    fn relative_phase_split_is_exact() {
        // Scarce ancillas force the split path with RP leaves.
        check_mct_rp(&[0, 1, 2, 3], 4, &[5], 6);
        check_mct_rp(&[0, 1, 2, 3, 4], 5, &[6], 7);
    }

    #[test]
    fn memoized_decomposition_is_byte_identical() {
        // A circuit mixing every gate class the lowering loop handles,
        // including wide MCTs on scattered lines that exercise both the
        // plentiful-ancilla chain and the scarce-ancilla split.
        let mut c = Circuit::new(8);
        c.push(Gate::h(0));
        c.push(Gate::cx(1, 2));
        c.push(Gate::cz(3, 4));
        c.push(Gate::swap(5, 6));
        c.push(Gate::mct(vec![0, 2, 4], 6));
        c.push(Gate::mct(vec![1, 3, 5, 7], 0));
        c.push(Gate::mct(vec![0, 1, 2, 3, 4, 5], 7)); // scarce: 1 spare
        c.push(Gate::mct(vec![0, 2, 4], 6)); // repeat → memo hit
        let device = qsyn_arch::devices::ibmq_16();
        for strategy in [DecomposeStrategy::Exact, DecomposeStrategy::RelativePhase] {
            for dev in [None, Some(&device)] {
                let direct = decompose_circuit_with(&c, dev, strategy).unwrap();
                let (memo, counters) = decompose_circuit_memo(&c, dev, strategy).unwrap();
                assert_eq!(direct.gates(), memo.gates(), "strategy {strategy:?}");
                assert_eq!(counters.memo_hits + counters.memo_misses, 4);
                assert!(counters.memo_hits >= 1, "repeat shape must hit the memo");
            }
        }
    }

    #[test]
    fn memoized_decomposition_propagates_no_ancilla() {
        // Every line is a control or the target: nothing to borrow.
        let mut c = Circuit::new(4);
        c.push(Gate::mct(vec![0, 1, 2], 3));
        let err = decompose_circuit_memo(&c, None, DecomposeStrategy::Exact).unwrap_err();
        assert!(matches!(err, CompileError::NoAncilla { controls: 3 }));
    }

    #[test]
    fn relative_phase_halves_the_t_count() {
        for m in 3..=7usize {
            let controls: Vec<usize> = (0..m).collect();
            let spare: Vec<usize> = (m + 1..2 * m - 1).collect();
            let count_t = |strategy| {
                let gates = mct_decompose(&controls, m, &spare, strategy).unwrap();
                let mut c = Circuit::new(2 * m - 1);
                c.extend(gates);
                decompose_circuit(&c).unwrap().stats().t_count
            };
            let exact = count_t(DecomposeStrategy::Exact);
            let rp = count_t(DecomposeStrategy::RelativePhase);
            assert_eq!(exact, 28 * (m - 2), "m={m} exact");
            assert_eq!(rp, 14 + 16 * (m - 2) - 8, "m={m} relative-phase");
            assert!(rp < exact);
        }
    }
}
