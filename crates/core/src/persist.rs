//! Crash-safe on-disk persistence for the content-addressed compile cache.
//!
//! The in-memory compile cache (PR 4/5, `crate::cache`) turns a repeated
//! `(circuit, device, cost model, options, budget)` tuple into a ~150×
//! warm-path win — but only within one process. This module extends that
//! cache with a disk tier so warm state survives restarts and can be
//! shipped between machines: one file per 128-bit compile key, holding a
//! checksummed, version-stamped serialization of the whole
//! [`CompileResult`].
//!
//! The tier is built for hostile conditions, not happy paths:
//!
//! * **Atomic writes.** Entries are written to a temp file in the cache
//!   directory and `rename`d into place, so a crash mid-write leaves at
//!   worst an orphaned temp file — never a half-written entry under a
//!   live key.
//! * **Validate-then-trust.** Every load re-checks the magic, the format
//!   version, the embedded key (which must match the requested key, so a
//!   file copied under another key's name is rejected), the payload
//!   length, and a 128-bit FNV checksum of the payload before a byte of
//!   it is deserialized.
//! * **Quarantine, never crash.** Any validation failure renames the
//!   entry to `*.quarantined` and reports a miss; the caller recompiles
//!   and overwrites. A poisoned cache directory costs recomputation,
//!   never wrong output and never a panic.
//!
//! Entries are loaded lazily — the daemon consults the directory only on
//! an in-memory miss — so startup cost is independent of cache size.
//!
//! ## Entry format (version 1)
//!
//! ```text
//! qsync 1 <key:032x> <payload-len> <fnv128(payload):032x>\n
//! <payload: one JSON object, exactly payload-len bytes>
//! ```
//!
//! The payload serializes the placement map, the three circuit stages,
//! and the full [`CompileMetrics`] (via its existing JSON codec), so a
//! disk hit replays through the same
//! [`replay_cached`](crate::Compiler) path as a memory hit —
//! byte-identical output, fully traced.

use crate::compiler::CompileResult;
use crate::place::Placement;
use qsyn_circuit::{Circuit, Fnv128};
use qsyn_gate::{Gate, SINGLE_OPS};
use qsyn_trace::json::{self, Value};
use qsyn_trace::CompileMetrics;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Current on-disk entry format version. Bump on any payload or header
/// change: entries stamped with another version quarantine and recompute
/// instead of being misread.
pub const FORMAT_VERSION: u32 = 1;

/// Magic token opening every entry header.
const MAGIC: &str = "qsync";

/// Outcome of a disk-tier lookup.
#[derive(Debug)]
pub enum DiskLoad {
    /// A valid entry was found, verified, and deserialized.
    Hit(Box<CompileResult>),
    /// No entry exists for the key.
    Miss,
    /// An entry existed but failed validation; it has been renamed to
    /// `*.quarantined` and the reason is reported. The caller recomputes.
    Quarantined(String),
}

/// The on-disk compile-cache tier: a directory of one-file-per-key
/// entries. Cheap to clone conceptually — wrap in an `Arc` to share
/// across worker threads; all methods take `&self`.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if necessary) a cache directory.
    ///
    /// # Errors
    ///
    /// Any I/O error creating the directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<DiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DiskCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file for a key.
    pub fn entry_path(&self, key: u128) -> PathBuf {
        self.dir.join(format!("{key:032x}.qsc"))
    }

    /// Loads, validates, and deserializes the entry for `key`.
    ///
    /// Never returns an error: unreadable or invalid entries are
    /// quarantined and reported as [`DiskLoad::Quarantined`] so the
    /// caller falls back to a cold compile.
    pub fn load(&self, key: u128) -> DiskLoad {
        let path = self.entry_path(key);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                crate::cache::note_disk_miss();
                return DiskLoad::Miss;
            }
            Err(e) => return self.quarantine(&path, &format!("unreadable entry: {e}")),
        };
        match validate_entry(&raw, key) {
            Ok(result) => {
                crate::cache::note_disk_hit();
                DiskLoad::Hit(Box::new(result))
            }
            Err(reason) => self.quarantine(&path, &reason),
        }
    }

    /// Serializes and atomically writes the entry for `key`: the bytes are
    /// assembled in full, written to a temp file in the cache directory,
    /// and `rename`d over the final name, so readers and a crash mid-write
    /// both see either the old entry or the new one — never a torn entry.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or renaming the temp file (the temp file is
    /// removed on failure, best-effort).
    pub fn store(&self, key: u128, result: &CompileResult) -> io::Result<()> {
        let payload = serialize_result(result).to_string().into_bytes();
        let mut entry = header_line(key, &payload).into_bytes();
        entry.extend_from_slice(&payload);
        let tmp = self
            .dir
            .join(format!(".tmp-{key:032x}-{}", std::process::id()));
        let write = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&entry)?;
            f.sync_all()?;
            fs::rename(&tmp, self.entry_path(key))
        })();
        if write.is_err() {
            let _ = fs::remove_file(&tmp);
        } else {
            crate::cache::note_disk_write();
        }
        write
    }

    /// Moves a failed entry aside (never deletes it — quarantined files
    /// are evidence) and counts the quarantine.
    fn quarantine(&self, path: &Path, reason: &str) -> DiskLoad {
        let mut target = path.as_os_str().to_owned();
        target.push(".quarantined");
        // A second corruption of the same key overwrites the first
        // quarantine file; if even the rename fails, fall back to removal
        // so the poisoned entry cannot be served forever.
        if fs::rename(path, &target).is_err() {
            let _ = fs::remove_file(path);
        }
        crate::cache::note_disk_quarantine();
        DiskLoad::Quarantined(reason.to_string())
    }

    /// Deliberately corrupts the stored entry for `key` by flipping one
    /// payload byte — the "poisoned disk entry" service fault. Requires an
    /// existing entry.
    ///
    /// # Errors
    ///
    /// I/O errors, or an entry too short to poison.
    #[cfg(feature = "fault-injection")]
    pub fn poison(&self, key: u128) -> io::Result<()> {
        let path = self.entry_path(key);
        let mut raw = fs::read(&path)?;
        let last = raw.len().checked_sub(1).ok_or(io::ErrorKind::UnexpectedEof)?;
        raw[last] ^= 0x40;
        fs::write(&path, raw)
    }

    /// Truncates the stored entry for `key` to half its length, simulating
    /// a partial write that a crash (kill between `write` and `rename`,
    /// with a non-atomic writer) could leave behind. Requires an existing
    /// entry.
    ///
    /// # Errors
    ///
    /// I/O errors reading or rewriting the entry.
    #[cfg(feature = "fault-injection")]
    pub fn truncate_entry(&self, key: u128) -> io::Result<()> {
        let path = self.entry_path(key);
        let raw = fs::read(&path)?;
        fs::write(&path, &raw[..raw.len() / 2])
    }

    /// Scans the directory and deletes entries violating the given caps:
    /// first every entry older than `max_age`, then — if the survivors
    /// still exceed `max_bytes` — the oldest-mtime entries until the
    /// directory fits. Quarantined files and temp files are left alone
    /// (quarantines are evidence; temp files belong to in-flight writers).
    ///
    /// The daemon runs this at startup and then periodically while
    /// serving (`--cache-max-bytes` / `--cache-max-age`, on the
    /// metrics-file cadence); deletions are counted in the
    /// `cache.disk.evicted_entries` / `cache.disk.evicted_bytes` metrics.
    ///
    /// # Errors
    ///
    /// I/O errors listing the directory. Per-entry stat or delete
    /// failures are tolerated: an entry that vanishes mid-scan (another
    /// process evicting concurrently) is simply skipped.
    pub fn evict(
        &self,
        max_bytes: Option<u64>,
        max_age: Option<std::time::Duration>,
    ) -> io::Result<EvictionSummary> {
        let now = std::time::SystemTime::now();
        let mut entries: Vec<(PathBuf, std::time::SystemTime, u64)> = Vec::new();
        for dirent in fs::read_dir(&self.dir)? {
            let Ok(dirent) = dirent else { continue };
            let path = dirent.path();
            if path.extension().and_then(|e| e.to_str()) != Some("qsc") {
                continue;
            }
            let Ok(meta) = dirent.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta.modified().unwrap_or(now);
            entries.push((path, mtime, meta.len()));
        }
        let mut summary = EvictionSummary {
            scanned: entries.len(),
            ..EvictionSummary::default()
        };
        // Oldest first: the age pass walks a prefix of this order and the
        // size pass continues from wherever it stopped.
        entries.sort_by_key(|&(_, mtime, _)| mtime);
        let mut total: u64 = entries.iter().map(|&(_, _, len)| len).sum();
        for (path, mtime, len) in entries {
            let too_old = max_age
                .is_some_and(|cap| now.duration_since(mtime).is_ok_and(|age| age > cap));
            let too_big = max_bytes.is_some_and(|cap| total > cap);
            if !(too_old || too_big) {
                summary.remaining += 1;
                summary.remaining_bytes += len;
                continue;
            }
            if fs::remove_file(&path).is_ok() {
                total -= len;
                summary.evicted += 1;
                summary.evicted_bytes += len;
            } else {
                summary.remaining += 1;
                summary.remaining_bytes += len;
            }
        }
        crate::cache::note_disk_eviction(summary.evicted as u64, summary.evicted_bytes);
        Ok(summary)
    }
}

/// What one [`DiskCache::evict`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvictionSummary {
    /// Entries found in the directory.
    pub scanned: usize,
    /// Entries deleted.
    pub evicted: usize,
    /// Bytes reclaimed.
    pub evicted_bytes: u64,
    /// Entries kept.
    pub remaining: usize,
    /// Bytes still held by kept entries.
    pub remaining_bytes: u64,
}

/// Renders the entry header for a payload.
fn header_line(key: u128, payload: &[u8]) -> String {
    format!(
        "{MAGIC} {FORMAT_VERSION} {key:032x} {} {:032x}\n",
        payload.len(),
        checksum(payload)
    )
}

/// 128-bit FNV checksum of the payload bytes.
fn checksum(payload: &[u8]) -> u128 {
    let mut h = Fnv128::new();
    h.write(payload);
    h.finish()
}

/// Header + payload validation; returns the deserialized result or the
/// human-readable reason the entry cannot be trusted.
fn validate_entry(raw: &[u8], want_key: u128) -> Result<CompileResult, String> {
    let newline = raw
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("truncated entry: no header line")?;
    let header =
        std::str::from_utf8(&raw[..newline]).map_err(|_| "header is not UTF-8".to_string())?;
    let fields: Vec<&str> = header.split(' ').collect();
    if fields.len() != 5 || fields[0] != MAGIC {
        return Err(format!("malformed header `{header}`"));
    }
    let version: u32 = fields[1]
        .parse()
        .map_err(|_| format!("malformed version `{}`", fields[1]))?;
    if version != FORMAT_VERSION {
        return Err(format!(
            "stale format version {version} (this build writes {FORMAT_VERSION})"
        ));
    }
    let key = u128::from_str_radix(fields[2], 16)
        .map_err(|_| format!("malformed key `{}`", fields[2]))?;
    if key != want_key {
        return Err(format!(
            "key mismatch: entry is for {key:032x}, lookup wanted {want_key:032x}"
        ));
    }
    let len: usize = fields[3]
        .parse()
        .map_err(|_| format!("malformed length `{}`", fields[3]))?;
    let sum = u128::from_str_radix(fields[4], 16)
        .map_err(|_| format!("malformed checksum `{}`", fields[4]))?;
    let payload = &raw[newline + 1..];
    if payload.len() != len {
        return Err(format!(
            "truncated payload: header claims {len} bytes, file holds {}",
            payload.len()
        ));
    }
    if checksum(payload) != sum {
        return Err("payload checksum mismatch".to_string());
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let value = json::parse(text).map_err(|e| format!("payload is not JSON: {e}"))?;
    deserialize_result(&value).map_err(|e| format!("payload rejected: {e}"))
}

// ---------------------------------------------------------------------------
// CompileResult <-> JSON codec.
// ---------------------------------------------------------------------------

/// Serializes a compile result to the version-1 payload object.
fn serialize_result(result: &CompileResult) -> Value {
    Value::Obj(vec![
        (
            "placement".to_string(),
            Value::Arr(
                result
                    .placement
                    .as_slice()
                    .iter()
                    .map(|&p| Value::Num(p as f64))
                    .collect(),
            ),
        ),
        ("placed".to_string(), serialize_circuit(&result.placed)),
        (
            "unoptimized".to_string(),
            serialize_circuit(&result.unoptimized),
        ),
        ("optimized".to_string(), serialize_circuit(&result.optimized)),
        ("metrics".to_string(), result.metrics.to_json()),
    ])
}

/// Rebuilds a compile result from the version-1 payload object.
fn deserialize_result(v: &Value) -> Result<CompileResult, String> {
    let map: Vec<usize> = v
        .get("placement")
        .and_then(Value::as_arr)
        .ok_or("missing placement array")?
        .iter()
        .map(|p| p.as_usize().ok_or("non-numeric placement entry"))
        .collect::<Result<_, _>>()?;
    let placed = deserialize_circuit(v.get("placed").ok_or("missing placed circuit")?)?;
    let unoptimized =
        deserialize_circuit(v.get("unoptimized").ok_or("missing unoptimized circuit")?)?;
    let optimized = deserialize_circuit(v.get("optimized").ok_or("missing optimized circuit")?)?;
    let metrics = CompileMetrics::from_json(v.get("metrics").ok_or("missing metrics")?)
        .ok_or("unreadable metrics")?;
    Ok(CompileResult {
        placement: Placement::from_map(map),
        placed,
        unoptimized,
        optimized,
        verified: metrics.verified,
        metrics,
    })
}

/// Serializes a circuit as `{"n": .., "name": .., "gates": [..]}` with one
/// compact array per gate.
fn serialize_circuit(c: &Circuit) -> Value {
    let gates = c
        .gates()
        .iter()
        .map(|g| {
            let tag = |s: &str| Value::Str(s.to_string());
            let num = |q: usize| Value::Num(q as f64);
            Value::Arr(match g {
                Gate::Single { op, qubit } => vec![tag(op.qasm_name()), num(*qubit)],
                Gate::Cx { control, target } => vec![tag("cx"), num(*control), num(*target)],
                Gate::Cz { control, target } => vec![tag("cz"), num(*control), num(*target)],
                Gate::Swap { a, b } => vec![tag("swap"), num(*a), num(*b)],
                Gate::Mct { controls, target } => vec![
                    tag("mct"),
                    Value::Arr(controls.iter().map(|&q| num(q)).collect()),
                    num(*target),
                ],
            })
        })
        .collect();
    let mut fields = vec![
        ("n".to_string(), Value::Num(c.n_qubits() as f64)),
        ("gates".to_string(), Value::Arr(gates)),
    ];
    if let Some(name) = c.name() {
        fields.insert(1, ("name".to_string(), Value::Str(name.to_string())));
    }
    Value::Obj(fields)
}

/// Validating circuit deserializer: every line index is bounds-checked and
/// gate invariants (distinct lines) are rejected with an error, never an
/// assertion, so a corrupted payload that slips past the checksum still
/// cannot panic the loader.
fn deserialize_circuit(v: &Value) -> Result<Circuit, String> {
    let n = v
        .get("n")
        .and_then(Value::as_usize)
        .ok_or("circuit missing qubit count")?;
    let line = |q: &Value| -> Result<usize, String> {
        let q = q.as_usize().ok_or("non-numeric qubit index")?;
        if q >= n {
            return Err(format!("qubit index {q} out of range for {n} lines"));
        }
        Ok(q)
    };
    let mut gates = Vec::new();
    for g in v
        .get("gates")
        .and_then(Value::as_arr)
        .ok_or("circuit missing gates array")?
    {
        let parts = g.as_arr().ok_or("gate is not an array")?;
        let tag = parts
            .first()
            .and_then(Value::as_str)
            .ok_or("gate missing mnemonic")?;
        let two = |ctor: fn(usize, usize) -> Gate| -> Result<Gate, String> {
            if parts.len() != 3 {
                return Err(format!("`{tag}` wants 2 lines, got {}", parts.len() - 1));
            }
            let (a, b) = (line(&parts[1])?, line(&parts[2])?);
            if a == b {
                return Err(format!("`{tag}` with a repeated line {a}"));
            }
            Ok(ctor(a, b))
        };
        let gate = match tag {
            "cx" => two(Gate::cx)?,
            "cz" => two(Gate::cz)?,
            "swap" => two(Gate::swap)?,
            "mct" => {
                if parts.len() != 3 {
                    return Err("`mct` wants [controls, target]".to_string());
                }
                let controls: Vec<usize> = parts[1]
                    .as_arr()
                    .ok_or("`mct` controls is not an array")?
                    .iter()
                    .map(line)
                    .collect::<Result<_, _>>()?;
                let target = line(&parts[2])?;
                let mut sorted = controls.clone();
                sorted.sort_unstable();
                if sorted.windows(2).any(|w| w[0] == w[1]) || sorted.contains(&target) {
                    return Err("`mct` with repeated lines".to_string());
                }
                Gate::mct(controls, target)
            }
            op => {
                let op = SINGLE_OPS
                    .into_iter()
                    .find(|o| o.qasm_name() == tag)
                    .ok_or_else(|| format!("unknown gate mnemonic `{op}`"))?;
                if parts.len() != 2 {
                    return Err(format!("`{tag}` wants 1 line"));
                }
                Gate::single(op, line(&parts[1])?)
            }
        };
        gates.push(gate);
    }
    let mut c = Circuit::from_gates(n, gates);
    if let Some(name) = v.get("name").and_then(Value::as_str) {
        c.set_name(name);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;
    use crate::Compiler;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qsyn-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn toffoli_result() -> CompileResult {
        let mut spec = Circuit::new(3);
        spec.push(Gate::toffoli(0, 1, 2));
        Compiler::new(devices::ibmqx4())
            .compile(&spec)
            .expect("toffoli compiles")
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let result = toffoli_result();
        let back = deserialize_result(&serialize_result(&result)).expect("round trip");
        assert_eq!(back.placement, result.placement);
        assert_eq!(back.placed, result.placed);
        assert_eq!(back.unoptimized, result.unoptimized);
        assert_eq!(back.optimized, result.optimized);
        assert_eq!(back.verified, result.verified);
        assert_eq!(back.metrics.to_json(), result.metrics.to_json());
    }

    #[test]
    fn circuit_codec_covers_every_gate_kind() {
        let mut c = Circuit::new(5).with_name("menagerie");
        for op in SINGLE_OPS {
            c.push(Gate::single(op, 0));
        }
        c.push(Gate::cx(0, 1));
        c.push(Gate::cz(1, 2));
        c.push(Gate::swap(2, 3));
        c.push(Gate::mct(vec![0, 1, 2], 4));
        let back = deserialize_circuit(&serialize_circuit(&c)).expect("round trip");
        assert_eq!(back, c);
    }

    #[test]
    fn store_load_hits_and_misses() {
        let cache = DiskCache::open(tmp_dir("hit")).unwrap();
        let result = toffoli_result();
        assert!(matches!(cache.load(7), DiskLoad::Miss));
        cache.store(7, &result).unwrap();
        match cache.load(7) {
            DiskLoad::Hit(back) => assert_eq!(back.optimized, result.optimized),
            other => panic!("want hit, got {other:?}"),
        }
        // No temp files linger after a successful store.
        let stray: Vec<_> = fs::read_dir(cache.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "stray temp files: {stray:?}");
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn bit_flip_quarantines_and_recompute_matches_cold_compile() {
        let cache = DiskCache::open(tmp_dir("bit-flip")).unwrap();
        let result = toffoli_result();
        cache.store(11, &result).unwrap();
        // Flip one bit in the middle of the payload.
        let path = cache.entry_path(11);
        let mut raw = fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0x01;
        fs::write(&path, raw).unwrap();
        match cache.load(11) {
            DiskLoad::Quarantined(reason) => {
                assert!(
                    reason.contains("checksum") || reason.contains("payload"),
                    "{reason}"
                )
            }
            other => panic!("want quarantine, got {other:?}"),
        }
        // The entry moved aside as evidence; the live name is free again.
        assert!(!path.exists());
        let mut quarantined = path.into_os_string();
        quarantined.push(".quarantined");
        assert!(PathBuf::from(quarantined).exists());
        // The recompute a quarantine falls back to is byte-identical to
        // the original cold compile.
        let recomputed = toffoli_result();
        assert_eq!(
            recomputed.optimized.to_qasm().unwrap(),
            result.optimized.to_qasm().unwrap()
        );
        cache.store(11, &recomputed).unwrap();
        assert!(matches!(cache.load(11), DiskLoad::Hit(_)));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn truncation_quarantines() {
        let cache = DiskCache::open(tmp_dir("truncate")).unwrap();
        cache.store(13, &toffoli_result()).unwrap();
        let path = cache.entry_path(13);
        let raw = fs::read(&path).unwrap();
        fs::write(&path, &raw[..raw.len() / 2]).unwrap();
        match cache.load(13) {
            DiskLoad::Quarantined(reason) => {
                assert!(reason.contains("truncated"), "{reason}")
            }
            other => panic!("want quarantine, got {other:?}"),
        }
        // Truncating into the header line loses the newline entirely.
        let cache2 = DiskCache::open(tmp_dir("truncate-header")).unwrap();
        cache2.store(13, &toffoli_result()).unwrap();
        let path2 = cache2.entry_path(13);
        let raw2 = fs::read(&path2).unwrap();
        fs::write(&path2, &raw2[..8]).unwrap();
        assert!(matches!(cache2.load(13), DiskLoad::Quarantined(_)));
        let _ = fs::remove_dir_all(cache.dir());
        let _ = fs::remove_dir_all(cache2.dir());
    }

    #[test]
    fn stale_version_stamp_quarantines() {
        let cache = DiskCache::open(tmp_dir("stale")).unwrap();
        cache.store(17, &toffoli_result()).unwrap();
        let path = cache.entry_path(17);
        let raw = fs::read(&path).unwrap();
        // Restamp the header with a future format version, leaving the
        // payload untouched (a downgraded binary reading a newer cache).
        let newline = raw.iter().position(|&b| b == b'\n').unwrap();
        let header = std::str::from_utf8(&raw[..newline]).unwrap();
        let bumped = header.replacen(
            &format!("{MAGIC} {FORMAT_VERSION} "),
            &format!("{MAGIC} {} ", FORMAT_VERSION + 1),
            1,
        );
        let mut rewritten = bumped.into_bytes();
        rewritten.extend_from_slice(&raw[newline..]);
        fs::write(&path, rewritten).unwrap();
        match cache.load(17) {
            DiskLoad::Quarantined(reason) => {
                assert!(reason.contains("stale format version"), "{reason}")
            }
            other => panic!("want quarantine, got {other:?}"),
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn entry_copied_under_another_key_quarantines() {
        // Two cost models yield two distinct compile keys for the same
        // circuit (CostModel::cache_params feeds the key); copying one
        // model's entry under the other's key must not serve wrong
        // results — the embedded key defeats the swap.
        let mut spec = Circuit::new(3);
        spec.push(Gate::toffoli(0, 1, 2));
        let eqn2_key = Compiler::new(devices::ibmqx4())
            .with_cache(crate::cache::CacheMode::Mem)
            .compile_key(&spec)
            .expect("mem mode has a key");
        let volume_key = Compiler::new(devices::ibmqx4())
            .with_cost_model(Box::new(qsyn_arch::VolumeCost))
            .with_cache(crate::cache::CacheMode::Mem)
            .compile_key(&spec)
            .expect("mem mode has a key");
        assert_ne!(eqn2_key, volume_key, "cache_params must separate keys");

        let cache = DiskCache::open(tmp_dir("cross-key")).unwrap();
        cache.store(eqn2_key, &toffoli_result()).unwrap();
        fs::copy(cache.entry_path(eqn2_key), cache.entry_path(volume_key)).unwrap();
        match cache.load(volume_key) {
            DiskLoad::Quarantined(reason) => {
                assert!(reason.contains("key mismatch"), "{reason}")
            }
            other => panic!("want quarantine, got {other:?}"),
        }
        // The legitimate entry is untouched.
        assert!(matches!(cache.load(eqn2_key), DiskLoad::Hit(_)));
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn evict_by_age_clears_old_entries_and_spares_quarantines() {
        let cache = DiskCache::open(tmp_dir("evict-age")).unwrap();
        let result = toffoli_result();
        for key in [21u128, 22, 23] {
            cache.store(key, &result).unwrap();
        }
        // A quarantined file must survive any sweep (it is evidence).
        fs::write(cache.dir().join("bad.qsc.quarantined"), b"junk").unwrap();
        // max_age = 0 makes every entry "too old".
        let summary = cache
            .evict(None, Some(std::time::Duration::from_secs(0)))
            .unwrap();
        assert_eq!(summary.scanned, 3);
        assert_eq!(summary.evicted, 3);
        assert_eq!(summary.remaining, 0);
        assert!(summary.evicted_bytes > 0);
        assert!(cache.dir().join("bad.qsc.quarantined").exists());
        for key in [21u128, 22, 23] {
            assert!(!cache.entry_path(key).exists());
        }
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn evict_by_bytes_removes_oldest_first() {
        let cache = DiskCache::open(tmp_dir("evict-bytes")).unwrap();
        let result = toffoli_result();
        for key in [31u128, 32, 33] {
            cache.store(key, &result).unwrap();
            // Space the mtimes out past the filesystem's timestamp
            // granularity so "oldest" is well defined.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let entry_len = fs::metadata(cache.entry_path(31)).unwrap().len();
        // Cap at two entries' worth: the single oldest entry must go.
        let summary = cache.evict(Some(entry_len * 2), None).unwrap();
        assert_eq!(summary.evicted, 1, "{summary:?}");
        assert_eq!(summary.remaining, 2);
        assert!(!cache.entry_path(31).exists(), "oldest entry evicted");
        assert!(cache.entry_path(32).exists());
        assert!(cache.entry_path(33).exists());
        assert!(summary.remaining_bytes <= entry_len * 2);
        // A sweep with generous caps is a no-op.
        let idle = cache.evict(Some(entry_len * 10), None).unwrap();
        assert_eq!(idle.evicted, 0);
        assert_eq!(idle.remaining, 2);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn eviction_bumps_the_global_counters() {
        let cache = DiskCache::open(tmp_dir("evict-count")).unwrap();
        cache.store(41, &toffoli_result()).unwrap();
        let before = crate::cache::stats();
        cache.evict(Some(0), None).unwrap();
        let delta = crate::cache::stats().since(&before);
        assert_eq!(delta.disk_evicted_entries, 1);
        assert!(delta.disk_evicted_bytes > 0);
        let _ = fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn malformed_payload_quarantines_not_panics() {
        let cache = DiskCache::open(tmp_dir("bad-payload")).unwrap();
        // A structurally valid entry whose payload passes the checksum but
        // fails deserialization (an out-of-range qubit index).
        let payload = br#"{"placement":[0],"placed":{"n":1,"gates":[["cx",0,9]]}}"#;
        let mut entry = header_line(3, payload).into_bytes();
        entry.extend_from_slice(payload);
        fs::write(cache.entry_path(3), entry).unwrap();
        match cache.load(3) {
            DiskLoad::Quarantined(reason) => {
                assert!(reason.contains("out of range"), "{reason}")
            }
            other => panic!("want quarantine, got {other:?}"),
        }
        assert!(!cache.entry_path(3).exists());
        let _ = fs::remove_dir_all(cache.dir());
    }
}
