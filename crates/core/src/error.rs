//! Compilation errors.

use crate::budget::BudgetResource;
use qsyn_trace::Pass;
use std::error::Error;
use std::fmt;

/// Reasons the technology-dependent synthesis can fail.
///
/// The paper's tables mark such cases `N/A` — e.g. a 6-qubit benchmark on a
/// 5-qubit machine, or a generalized Toffoli whose decomposition needs an
/// ancilla line the device cannot supply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit has more lines than the device has qubits.
    TooWide {
        /// Lines required by the circuit.
        needed: usize,
        /// Qubits available on the device.
        available: usize,
    },
    /// A generalized Toffoli decomposition needs at least one line outside
    /// the gate's own support, and none exists.
    NoAncilla {
        /// Number of controls of the offending gate.
        controls: usize,
    },
    /// No SWAP route exists between two qubits (disconnected coupling map).
    RouteNotFound {
        /// Requested CNOT control.
        control: usize,
        /// Requested CNOT target.
        target: usize,
    },
    /// A technology-independent gate survived to a stage that only accepts
    /// mapped gates (internal pipeline ordering error).
    UnmappedGate(String),
    /// The built-in QMDD equivalence check rejected the compiled output.
    VerificationFailed,
    /// A [`CompileBudget`](crate::CompileBudget) cap was hit: the compile
    /// stopped cleanly instead of growing without bound.
    BudgetExceeded {
        /// The pass that blew the cap.
        pass: Pass,
        /// Which resource ran out.
        resource: BudgetResource,
        /// The configured ceiling (ms for wall clock, counts otherwise).
        limit: u64,
        /// Observed usage when the cap tripped.
        used: u64,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooWide { needed, available } => write!(
                f,
                "circuit needs {needed} qubits but the device has {available}"
            ),
            CompileError::NoAncilla { controls } => write!(
                f,
                "generalized Toffoli with {controls} controls needs an ancilla line \
                 outside its support and the device has none"
            ),
            CompileError::RouteNotFound { control, target } => write!(
                f,
                "no SWAP route from q{control} to q{target}; coupling map is disconnected"
            ),
            CompileError::UnmappedGate(g) => {
                write!(f, "gate `{g}` reached a stage that requires mapped gates")
            }
            CompileError::VerificationFailed => {
                f.write_str("QMDD equivalence check failed: output differs from specification")
            }
            CompileError::BudgetExceeded {
                pass,
                resource,
                limit,
                used,
            } => write!(
                f,
                "compile budget exceeded in {pass} pass: {resource} used {used} of limit {limit}"
            ),
        }
    }
}

impl Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CompileError::TooWide {
            needed: 6,
            available: 5,
        };
        assert!(e.to_string().contains("6 qubits"));
        assert!(CompileError::NoAncilla { controls: 4 }
            .to_string()
            .contains("ancilla"));
        assert!(CompileError::RouteNotFound {
            control: 1,
            target: 2
        }
        .to_string()
        .contains("SWAP route"));
        assert!(CompileError::VerificationFailed.to_string().contains("QMDD"));
        assert!(CompileError::UnmappedGate("T5".into()).to_string().contains("T5"));
        let b = CompileError::BudgetExceeded {
            pass: Pass::Verify,
            resource: BudgetResource::QmddNodes,
            limit: 1024,
            used: 1090,
        };
        let msg = b.to_string();
        assert!(msg.contains("verify"), "{msg}");
        assert!(msg.contains("qmdd-nodes"), "{msg}");
        assert!(msg.contains("1090"), "{msg}");
        assert!(msg.contains("1024"), "{msg}");
    }
}
