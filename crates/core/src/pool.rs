//! A long-lived worker pool for streams of independent jobs.
//!
//! Started life in `qsyn-bench` driving the serve daemon's request
//! execution; it lives in the core crate now so `compile_stream` can
//! verify completed windows on the same pool machinery (the bench crate
//! re-exports it as `qsyn_bench::par::WorkerPool` for its original
//! callers). Workers stay alive across jobs: submit closures as they
//! arrive, ask [`WorkerPool::pending`] for backpressure decisions,
//! [`WorkerPool::drain`] to wait for quiescence, and
//! [`WorkerPool::shutdown`] to finish everything and join.
//!
//! Every job runs under `catch_unwind`, so a panicking job never takes a
//! worker down. Jobs are responsible for reporting their own results (the
//! daemon's jobs send pre-rendered response lines over a channel; the
//! streaming verifier's jobs write into a shared accumulator); a panic
//! that escapes a job is swallowed here because jobs already catch and
//! report panics themselves, and a second barrier keeps worker threads
//! immortal even if that reporting path itself panics.

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Default worker count for `--jobs`: the number of available CPUs.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A long-lived thread pool for streams of independent jobs; see the
/// module docs.
pub struct WorkerPool {
    inner: std::sync::Arc<PoolInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

struct PoolState {
    queue: std::collections::VecDeque<Box<dyn FnOnce() + Send>>,
    in_flight: usize,
    shutdown: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    /// Signaled when work arrives or shutdown begins (workers wait here).
    work: std::sync::Condvar,
    /// Signaled when a job finishes (drainers wait here).
    done: std::sync::Condvar,
}

// Pool utilization metrics in the process-wide registry: how many
// workers exist, how many are busy right now, and the per-job run-time
// distribution (utilization over a window = Σ `pool.job_run_us` delta /
// (workers × window)). Handles are cached so the per-job overhead is a
// few relaxed atomic ops.
macro_rules! pool_metric {
    ($fn_name:ident, counter, $name:literal) => {
        fn $fn_name() -> &'static qsyn_trace::metrics::Counter {
            static CELL: std::sync::OnceLock<std::sync::Arc<qsyn_trace::metrics::Counter>> =
                std::sync::OnceLock::new();
            CELL.get_or_init(|| qsyn_trace::metrics::global().counter($name))
        }
    };
    ($fn_name:ident, gauge, $name:literal) => {
        fn $fn_name() -> &'static qsyn_trace::metrics::Gauge {
            static CELL: std::sync::OnceLock<std::sync::Arc<qsyn_trace::metrics::Gauge>> =
                std::sync::OnceLock::new();
            CELL.get_or_init(|| qsyn_trace::metrics::global().gauge($name))
        }
    };
    ($fn_name:ident, histogram, $name:literal) => {
        fn $fn_name() -> &'static qsyn_trace::metrics::Histogram {
            static CELL: std::sync::OnceLock<std::sync::Arc<qsyn_trace::metrics::Histogram>> =
                std::sync::OnceLock::new();
            CELL.get_or_init(|| qsyn_trace::metrics::global().histogram($name))
        }
    };
}

pool_metric!(m_pool_workers, gauge, "pool.workers");
pool_metric!(m_pool_busy, gauge, "pool.busy_workers");
pool_metric!(m_pool_submitted, counter, "pool.jobs_submitted");
pool_metric!(m_pool_completed, counter, "pool.jobs_completed");
pool_metric!(m_pool_job_run, histogram, "pool.job_run_us");

impl WorkerPool {
    /// A pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        m_pool_workers().set(workers.max(1) as i64);
        let inner = std::sync::Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: std::collections::VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work: std::sync::Condvar::new(),
            done: std::sync::Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let inner = std::sync::Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qsyn-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning pool worker")
            })
            .collect();
        WorkerPool { inner, workers }
    }

    /// Enqueues a job. Jobs run in submission order as workers free up.
    ///
    /// # Panics
    ///
    /// Panics if called after [`WorkerPool::shutdown`].
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        assert!(!state.shutdown, "submit after shutdown");
        state.queue.push_back(Box::new(job));
        drop(state);
        m_pool_submitted().inc();
        self.inner.work.notify_one();
    }

    /// Jobs admitted but not yet finished (queued plus running). The
    /// daemon's admission control compares this against its queue cap.
    pub fn pending(&self) -> usize {
        let state = self.inner.state.lock().expect("pool poisoned");
        state.queue.len() + state.in_flight
    }

    /// Blocks until every submitted job has finished.
    pub fn drain(&self) {
        let mut state = self.inner.state.lock().expect("pool poisoned");
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = self.inner.done.wait(state).expect("pool poisoned");
        }
    }

    /// Finishes all queued jobs, then joins the workers. Called by `drop`
    /// if not called explicitly.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut state = self.inner.state.lock().expect("pool poisoned");
            if state.shutdown && self.workers.is_empty() {
                return;
            }
            state.shutdown = true;
        }
        self.inner.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let job = {
            let mut state = inner.state.lock().expect("pool poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.work.wait(state).expect("pool poisoned");
            }
        };
        // Jobs report their own outcomes (including their own panics);
        // this outer barrier only guarantees the worker thread survives.
        m_pool_busy().inc();
        let job_started = std::time::Instant::now();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        m_pool_job_run().record_duration(job_started.elapsed());
        m_pool_busy().dec();
        m_pool_completed().inc();
        let mut state = inner.state.lock().expect("pool poisoned");
        state.in_flight -= 1;
        drop(state);
        inner.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn worker_pool_runs_every_job() {
        let pool = WorkerPool::new(4);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let count = std::sync::Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(pool.pending(), 0);
        pool.shutdown();
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        let pool = WorkerPool::new(2);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for i in 0..20 {
            let count = std::sync::Arc::clone(&count);
            pool.submit(move || {
                if i % 3 == 0 {
                    panic!("job {i} exploded");
                }
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.drain();
        // 0,3,6,9,12,15,18 panicked; the other 13 completed on the same
        // two workers, proving panics did not kill them.
        assert_eq!(count.load(Ordering::SeqCst), 13);
        pool.shutdown();
    }

    #[test]
    fn worker_pool_shutdown_finishes_queued_jobs() {
        let pool = WorkerPool::new(1);
        let count = std::sync::Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let count = std::sync::Arc::clone(&count);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(count.load(Ordering::SeqCst), 10, "shutdown drains first");
    }
}
