//! Resource governance for the compilation pipeline.
//!
//! A [`CompileBudget`] bounds every Fig. 2 pass: a wall-clock deadline
//! checked at pass boundaries, a QMDD node ceiling for verification, a cap
//! on optimizer improvement rounds, and a cap on routing SWAP insertions.
//! Hard limits surface as [`CompileError::BudgetExceeded`](crate::CompileError::BudgetExceeded)
//! instead of unbounded memory growth or runaway loops; the optimizer cap
//! degrades gracefully (best result so far), and the verify pass walks a
//! degradation ladder ending in an explicit
//! [`Verdict::Unverified`](qsyn_trace::Verdict::Unverified) when
//! [`VerifyMode::Degrade`] is selected.

use std::time::Duration;

/// Which resource a [`CompileError::BudgetExceeded`](crate::CompileError::BudgetExceeded)
/// cap refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// The per-compile wall-clock deadline (limits in milliseconds).
    WallClock,
    /// The QMDD package's node arena (limits in nodes).
    QmddNodes,
    /// SWAP insertions during routing (limits in adjacent SWAPs).
    RouteSwaps,
}

impl BudgetResource {
    /// Stable lowercase identifier (used in error messages and traces).
    pub fn name(self) -> &'static str {
        match self {
            BudgetResource::WallClock => "wall-clock-ms",
            BudgetResource::QmddNodes => "qmdd-nodes",
            BudgetResource::RouteSwaps => "route-swaps",
        }
    }
}

impl std::fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the verify pass responds when a degradation-ladder rung exhausts
/// its QMDD node budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// A budget blow during verification is a hard
    /// [`CompileError::BudgetExceeded`](crate::CompileError::BudgetExceeded):
    /// the compile fails rather than ship an unverified circuit.
    Strict,
    /// Walk the ladder (full check, forced-GC retry, bounded miter); when
    /// every rung exhausts, record
    /// [`Verdict::Unverified`](qsyn_trace::Verdict::Unverified) and return
    /// the compiled circuit anyway — explicitly unverified, never a silent
    /// pass.
    #[default]
    Degrade,
}

/// Per-compile resource budget threaded through all five Fig. 2 passes.
///
/// The default is unlimited on every axis, which reproduces the historical
/// behavior exactly.
///
/// # Examples
///
/// ```
/// use qsyn_core::{CompileBudget, VerifyMode};
/// use std::time::Duration;
///
/// let budget = CompileBudget::default()
///     .with_deadline(Duration::from_secs(30))
///     .with_node_budget(1 << 20)
///     .with_max_optimize_rounds(64)
///     .with_verify_mode(VerifyMode::Strict);
/// assert_eq!(budget.qmdd_node_budget, Some(1 << 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileBudget {
    /// Wall-clock deadline for the whole compile, checked before each pass
    /// (and before each verify-ladder rung). `None` means no deadline.
    pub deadline: Option<Duration>,
    /// Ceiling on the QMDD node arena during verification. `None` means
    /// unbounded (the historical behavior).
    pub qmdd_node_budget: Option<usize>,
    /// Cap on optimizer improvement rounds; hitting it keeps the best
    /// circuit found so far (graceful, never an error).
    pub max_optimize_rounds: Option<usize>,
    /// Cap on total adjacent SWAPs the router may insert.
    pub max_route_swaps: Option<usize>,
    /// Strict or degraded verification under the node budget.
    pub verify_mode: VerifyMode,
}

impl CompileBudget {
    /// An explicitly unlimited budget (same as `Default`).
    pub fn unlimited() -> Self {
        CompileBudget::default()
    }

    /// Sets the per-compile wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the QMDD node-arena ceiling for verification.
    pub fn with_node_budget(mut self, nodes: usize) -> Self {
        self.qmdd_node_budget = Some(nodes);
        self
    }

    /// Sets the optimizer round cap.
    pub fn with_max_optimize_rounds(mut self, rounds: usize) -> Self {
        self.max_optimize_rounds = Some(rounds);
        self
    }

    /// Sets the router SWAP-insertion cap.
    pub fn with_max_route_swaps(mut self, swaps: usize) -> Self {
        self.max_route_swaps = Some(swaps);
        self
    }

    /// Selects strict or degraded verification.
    pub fn with_verify_mode(mut self, mode: VerifyMode) -> Self {
        self.verify_mode = mode;
        self
    }

    /// Whether every axis is unlimited.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.qmdd_node_budget.is_none()
            && self.max_optimize_rounds.is_none()
            && self.max_route_swaps.is_none()
    }
}

/// Which failure a fault-injection hook triggers (test builds only; see
/// [`FaultSpec`]).
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the start of the pass (exercises `catch_unwind` isolation).
    Panic,
    /// Return a synthetic `BudgetExceeded` error.
    Budget,
    /// Return a synthetic `VerificationFailed` error.
    VerifyFail,
}

/// A deliberate fault to inject at the start of one pipeline pass.
///
/// Only available with the `fault-injection` cargo feature; used by the
/// benchmark sweeps' `--inject-fault pass:kind` flag to exercise every
/// recovery path (panic isolation, budget errors, verification failures)
/// in CI without pathological inputs.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The pass at whose start the fault fires.
    pub pass: qsyn_trace::Pass,
    /// What kind of failure to trigger.
    pub kind: FaultKind,
}

#[cfg(feature = "fault-injection")]
impl FaultSpec {
    /// Parses the `pass:kind` flag syntax, e.g. `verify:panic`,
    /// `route:budget`, `verify:verify-fail`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending component.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let (pass_text, kind_text) = text
            .split_once(':')
            .ok_or_else(|| format!("expected pass:kind, got `{text}`"))?;
        let pass = qsyn_trace::Pass::from_name(pass_text)
            .ok_or_else(|| format!("unknown pass `{pass_text}`"))?;
        let kind = match kind_text {
            "panic" => FaultKind::Panic,
            "budget" => FaultKind::Budget,
            "verify-fail" => FaultKind::VerifyFail,
            other => return Err(format!("unknown fault kind `{other}`")),
        };
        Ok(FaultSpec { pass, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = CompileBudget::default();
        assert!(b.is_unlimited());
        assert_eq!(b.verify_mode, VerifyMode::Degrade);
        assert_eq!(b, CompileBudget::unlimited());
    }

    #[test]
    fn builders_set_each_axis() {
        let b = CompileBudget::default()
            .with_deadline(Duration::from_millis(250))
            .with_node_budget(1024)
            .with_max_optimize_rounds(3)
            .with_max_route_swaps(40)
            .with_verify_mode(VerifyMode::Strict);
        assert!(!b.is_unlimited());
        assert_eq!(b.deadline, Some(Duration::from_millis(250)));
        assert_eq!(b.qmdd_node_budget, Some(1024));
        assert_eq!(b.max_optimize_rounds, Some(3));
        assert_eq!(b.max_route_swaps, Some(40));
        assert_eq!(b.verify_mode, VerifyMode::Strict);
    }

    #[test]
    fn resource_names_are_stable() {
        assert_eq!(BudgetResource::WallClock.to_string(), "wall-clock-ms");
        assert_eq!(BudgetResource::QmddNodes.to_string(), "qmdd-nodes");
        assert_eq!(BudgetResource::RouteSwaps.to_string(), "route-swaps");
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn fault_spec_parses_and_rejects() {
        use qsyn_trace::Pass;
        assert_eq!(
            FaultSpec::parse("verify:panic").unwrap(),
            FaultSpec {
                pass: Pass::Verify,
                kind: FaultKind::Panic
            }
        );
        assert_eq!(
            FaultSpec::parse("route:budget").unwrap(),
            FaultSpec {
                pass: Pass::Route,
                kind: FaultKind::Budget
            }
        );
        assert_eq!(
            FaultSpec::parse("verify:verify-fail").unwrap().kind,
            FaultKind::VerifyFail
        );
        assert!(FaultSpec::parse("bogus:panic").is_err());
        assert!(FaultSpec::parse("verify:frob").is_err());
        assert!(FaultSpec::parse("nocolon").is_err());
    }
}
