//! Initial placement of logical circuit lines onto physical device qubits.
//!
//! The paper's prototype keeps the original qubit assignment (its
//! benchmarks name physical qubits directly) and lists smarter placement as
//! future work ("minimize cost by finding ideal qubit placement on a QC").
//! Both are provided here: [`PlacementStrategy::Identity`] reproduces the
//! paper; [`PlacementStrategy::Greedy`] implements the future-work
//! extension and is compared against identity in the ablation benches.

use qsyn_arch::Device;
use qsyn_circuit::Circuit;
use qsyn_gate::Gate;

/// How logical lines are assigned to physical qubits before mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Logical line `i` goes to physical qubit `i` (the paper's behavior).
    #[default]
    Identity,
    /// Interaction-weighted greedy placement: heavily interacting lines are
    /// packed onto well-connected, mutually close physical qubits.
    Greedy,
    /// Simulated annealing over assignments, minimizing the
    /// distance-weighted interaction cost ([`routing_pressure`]); seeded
    /// and deterministic, started from the greedy solution.
    Annealed,
}

/// A computed placement: `map[logical] = physical`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    map: Vec<usize>,
}

impl Placement {
    /// Identity placement for `n` logical lines.
    pub fn identity(n: usize) -> Self {
        Placement {
            map: (0..n).collect(),
        }
    }

    /// Reconstructs a placement from an explicit logical-to-physical map
    /// (used by the on-disk compile-result codec; a computed placement is
    /// just its map, so round-tripping through `as_slice` is lossless).
    pub fn from_map(map: Vec<usize>) -> Self {
        Placement { map }
    }

    /// The physical qubit hosting a logical line.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of range.
    pub fn physical(&self, logical: usize) -> usize {
        self.map[logical]
    }

    /// The full logical-to-physical map.
    pub fn as_slice(&self) -> &[usize] {
        &self.map
    }

    /// Applies the placement, relabeling circuit lines onto device qubits
    /// and widening the register to the device size.
    pub fn apply(&self, circuit: &Circuit, device: &Device) -> Circuit {
        circuit.relabeled(device.n_qubits(), |q| self.map[q])
    }

    /// Whether the placement is the identity on its domain.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &p)| i == p)
    }
}

/// Computes a placement for `circuit` on `device` under the chosen
/// strategy.
///
/// # Panics
///
/// Panics if the circuit is wider than the device (the compiler checks
/// widths before calling).
pub fn place(circuit: &Circuit, device: &Device, strategy: PlacementStrategy) -> Placement {
    assert!(
        circuit.n_qubits() <= device.n_qubits(),
        "circuit wider than device"
    );
    match strategy {
        PlacementStrategy::Identity => Placement::identity(circuit.n_qubits()),
        PlacementStrategy::Greedy => greedy(circuit, device),
        PlacementStrategy::Annealed => annealed(circuit, device),
    }
}

/// Simulated annealing refinement of the greedy placement: random swaps of
/// two assignments (or a move onto a free physical qubit), accepted by the
/// Metropolis rule over the routing-pressure objective. Deterministic:
/// fixed seed, fixed schedule.
fn annealed(circuit: &Circuit, device: &Device) -> Placement {
    let n_log = circuit.n_qubits();
    let n_phys = device.n_qubits();
    let mut current = greedy(circuit, device);
    let mut cost = routing_pressure(circuit, device, &current) as f64;
    let mut best = current.clone();
    let mut best_cost = cost;

    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let iterations = 400 * n_log.max(4);
    for step in 0..iterations {
        let temperature = 2.0 * (1.0 - step as f64 / iterations as f64) + 1e-3;
        // Propose: swap the hosts of two logical lines, or move one line
        // onto an unoccupied physical qubit.
        let mut cand = current.clone();
        let a = (next() as usize) % n_log;
        if n_phys > n_log && next() % 2 == 0 {
            let free: Vec<usize> = (0..n_phys)
                .filter(|p| !cand.map.contains(p))
                .collect();
            cand.map[a] = free[(next() as usize) % free.len()];
        } else {
            let b = (next() as usize) % n_log;
            if a == b {
                continue;
            }
            cand.map.swap(a, b);
        }
        let cand_cost = routing_pressure(circuit, device, &cand) as f64;
        let accept = cand_cost <= cost || {
            let p = (-(cand_cost - cost) / temperature.max(1e-9)).exp();
            (next() % 1_000_000) as f64 / 1_000_000.0 < p
        };
        if accept {
            current = cand;
            cost = cand_cost;
            if cost < best_cost {
                best = current.clone();
                best_cost = cost;
            }
        }
    }
    best
}

/// Interaction-weighted greedy placement.
///
/// Builds the logical interaction graph (pairs of lines sharing a
/// multi-qubit gate, weighted by occurrence), orders logical lines by total
/// interaction weight, and assigns each to the free physical qubit that
/// minimizes distance-weighted interaction cost to already-placed partners
/// (breaking ties toward better-connected qubits).
fn greedy(circuit: &Circuit, device: &Device) -> Placement {
    let n_log = circuit.n_qubits();
    let n_phys = device.n_qubits();
    // Interaction weights between logical lines.
    let mut weight = vec![vec![0usize; n_log]; n_log];
    for g in circuit.gates() {
        let qs = g.qubits();
        for (i, &a) in qs.iter().enumerate() {
            for &b in &qs[i + 1..] {
                weight[a][b] += 1;
                weight[b][a] += 1;
            }
        }
    }
    let dist = all_pairs_distances(device);
    // Logical lines in descending total weight (stable for determinism).
    let mut order: Vec<usize> = (0..n_log).collect();
    let total: Vec<usize> = (0..n_log).map(|a| weight[a].iter().sum()).collect();
    order.sort_by_key(|&a| std::cmp::Reverse(total[a]));

    let mut map = vec![usize::MAX; n_log];
    let mut used = vec![false; n_phys];
    for &log in &order {
        let mut best: Option<(usize, (usize, std::cmp::Reverse<usize>))> = None;
        for phys in 0..n_phys {
            if used[phys] {
                continue;
            }
            // Distance-weighted cost to already placed partners.
            let mut cost = 0usize;
            for partner in 0..n_log {
                let p = map[partner];
                if p != usize::MAX && weight[log][partner] > 0 {
                    cost += weight[log][partner] * dist[phys][p] as usize;
                }
            }
            let key = (cost, std::cmp::Reverse(device.neighbors(phys).len()));
            if best.is_none_or(|(_, bk)| key < bk) {
                best = Some((phys, key));
            }
        }
        let (phys, _) = best.expect("device has enough qubits");
        map[log] = phys;
        used[phys] = true;
    }
    Placement { map }
}

/// BFS all-pairs undirected distances over the coupling graph.
fn all_pairs_distances(device: &Device) -> Vec<Vec<u32>> {
    (0..device.n_qubits())
        .map(|q| device.distances_from(q))
        .collect()
}

/// Estimated routing pressure of a circuit under a placement: the sum over
/// multi-qubit gates of the coupling-graph distances between their lines.
/// Used by ablation benches to compare placement strategies.
pub fn routing_pressure(circuit: &Circuit, device: &Device, placement: &Placement) -> usize {
    let dist = all_pairs_distances(device);
    let mut total = 0usize;
    for g in circuit.gates() {
        if let Gate::Cx { control, target } = g {
            total += dist[placement.physical(*control)][placement.physical(*target)] as usize;
        } else if g.arity() > 1 {
            let qs = g.qubits();
            for (i, &a) in qs.iter().enumerate() {
                for &b in &qs[i + 1..] {
                    total += dist[placement.physical(a)][placement.physical(b)] as usize;
                }
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::devices;

    fn chain_circuit() -> Circuit {
        // Lines 0 and 3 interact heavily; 1 and 2 are spectators.
        let mut c = Circuit::new(4);
        for _ in 0..5 {
            c.push(Gate::cx(0, 3));
        }
        c.push(Gate::cx(1, 2));
        c
    }

    #[test]
    fn identity_is_identity() {
        let d = devices::ibmqx5();
        let p = place(&chain_circuit(), &d, PlacementStrategy::Identity);
        assert!(p.is_identity());
        assert_eq!(p.physical(3), 3);
    }

    #[test]
    fn apply_relabels_and_widens() {
        let d = devices::ibmqx5();
        let p = Placement::identity(4);
        let placed = p.apply(&chain_circuit(), &d);
        assert_eq!(placed.n_qubits(), 16);
        assert_eq!(placed.gates()[0], Gate::cx(0, 3));
    }

    #[test]
    fn greedy_places_heavy_pairs_adjacent() {
        let d = devices::ibmqx5();
        let c = chain_circuit();
        let p = place(&c, &d, PlacementStrategy::Greedy);
        // The heavy pair (0,3) must land on adjacent qubits.
        assert!(d.are_adjacent(p.physical(0), p.physical(3)));
        // All assignments distinct.
        let mut seen = qsyn_qmdd::FxHashSet::default();
        for l in 0..4 {
            assert!(seen.insert(p.physical(l)));
        }
    }

    #[test]
    fn greedy_reduces_routing_pressure_vs_identity() {
        // A circuit whose identity placement is poor on ibmqx3: line 5
        // talks to line 10 (the Fig. 5 pair) repeatedly.
        let d = devices::ibmqx3();
        let mut c = Circuit::new(11);
        for _ in 0..4 {
            c.push(Gate::cx(5, 10));
        }
        let ident = Placement::identity(11);
        let greedy = place(&c, &d, PlacementStrategy::Greedy);
        assert!(
            routing_pressure(&c, &d, &greedy) <= routing_pressure(&c, &d, &ident),
            "greedy should not be worse"
        );
        assert!(d.are_adjacent(greedy.physical(5), greedy.physical(10)));
    }

    #[test]
    fn annealed_never_worse_than_greedy() {
        let d = devices::ibmqx3();
        let mut c = Circuit::new(12);
        for (a, b) in [(0, 11), (5, 10), (2, 9), (0, 5), (11, 10), (3, 7)] {
            for _ in 0..2 {
                c.push(Gate::cx(a, b));
            }
        }
        let g = place(&c, &d, PlacementStrategy::Greedy);
        let a = place(&c, &d, PlacementStrategy::Annealed);
        assert!(
            routing_pressure(&c, &d, &a) <= routing_pressure(&c, &d, &g),
            "annealing starts from greedy and keeps the best seen"
        );
        // Valid assignment: distinct physical hosts.
        let mut seen = qsyn_qmdd::FxHashSet::default();
        for l in 0..12 {
            assert!(seen.insert(a.physical(l)));
        }
    }

    #[test]
    fn annealed_is_deterministic() {
        let d = devices::ibmqx5();
        let c = chain_circuit();
        let x = place(&c, &d, PlacementStrategy::Annealed);
        let y = place(&c, &d, PlacementStrategy::Annealed);
        assert_eq!(x, y);
    }

    #[test]
    fn placement_is_deterministic() {
        let d = devices::ibmqx5();
        let c = chain_circuit();
        let a = place(&c, &d, PlacementStrategy::Greedy);
        let b = place(&c, &d, PlacementStrategy::Greedy);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "wider than device")]
    fn rejects_oversized_circuit() {
        let d = devices::ibmqx2();
        let c = Circuit::new(6);
        let _ = place(&c, &d, PlacementStrategy::Identity);
    }
}
