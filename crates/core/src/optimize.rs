//! Local cost-function optimization (paper Section 4, steps 5-6).
//!
//! Two optimization families run recursively until the technology cost
//! function stops improving:
//!
//! * removal of gate partitions equal to the identity — adjacent (possibly
//!   commutation-separated) inverse pairs and whole phase-gate runs that
//!   sum to a multiple of 2pi;
//! * rewrites by logically identical cheaper circuit identities — exact
//!   one-qubit fusions (`T T = S`, ...), minimal re-emission of diagonal
//!   phase runs, and the `H (x) H` CNOT-reversal contraction.
//!
//! Every rewrite is *exact* (no global-phase slack) so the QMDD
//! verification of the full pipeline keeps passing.
//!
//! Passes work on a tombstone vector with per-qubit occurrence lists, so a
//! pass costs `O(gates x local-window)` instead of quadratic scans over
//! unrelated lines — the Table 8 benchmarks run these passes over tens of
//! thousands of gates.

use qsyn_arch::{CostModel, Device};
use qsyn_circuit::Circuit;
use qsyn_gate::{fuse, Fusion, Gate, SingleOp};

/// Whether two gates commute, by conservative exact rules. Only the gate
/// vocabulary that survives technology mapping (one-qubit gates, CNOT, CZ)
/// gets precise treatment; anything else is assumed non-commuting when the
/// supports overlap.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    if !a.overlaps(b) {
        return true;
    }
    match (a, b) {
        (Gate::Single { op: oa, qubit: qa }, Gate::Single { op: ob, qubit: qb }) => {
            qa != qb || oa == ob || (oa.is_diagonal() && ob.is_diagonal())
        }
        (Gate::Single { op, qubit }, Gate::Cx { control, target })
        | (Gate::Cx { control, target }, Gate::Single { op, qubit }) => {
            if qubit == control {
                op.is_diagonal()
            } else if qubit == target {
                *op == SingleOp::X
            } else {
                true
            }
        }
        (Gate::Single { op, .. }, Gate::Cz { .. }) | (Gate::Cz { .. }, Gate::Single { op, .. }) => {
            op.is_diagonal()
        }
        (
            Gate::Cx {
                control: c1,
                target: t1,
            },
            Gate::Cx {
                control: c2,
                target: t2,
            },
        ) => t1 != c2 && c1 != t2,
        (Gate::Cx { target, .. }, Gate::Cz { control, target: t2 })
        | (Gate::Cz { control, target: t2 }, Gate::Cx { target, .. }) => {
            target != control && target != t2
        }
        (Gate::Cz { .. }, Gate::Cz { .. }) => true,
        _ => false,
    }
}

/// Tombstone gate buffer with per-qubit occurrence lists for fast
/// neighbor queries along a line.
///
/// The slot and occurrence storage is recycled through a per-thread pool:
/// the optimizer builds one `Buffer` per pass per improvement round, and
/// on wide devices (96 lines) the per-qubit lists alone are dozens of
/// allocations per build — reuse keeps the round loop allocation-light.
struct Buffer {
    slots: Vec<Option<Gate>>,
    occ: Vec<Vec<usize>>, // per qubit: slot indices touching it, ascending
}

/// Recycled `Buffer` storage: the tombstone slots and per-qubit lists.
type PoolStorage = (Vec<Option<Gate>>, Vec<Vec<usize>>);

thread_local! {
    static BUFFER_POOL: std::cell::RefCell<PoolStorage> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

impl Buffer {
    fn new(gates: Vec<Gate>, n_qubits: usize) -> Self {
        let (mut slots, mut occ) = BUFFER_POOL.with(|p| {
            let p = &mut *p.borrow_mut();
            (std::mem::take(&mut p.0), std::mem::take(&mut p.1))
        });
        slots.clear();
        for list in &mut occ {
            list.clear();
        }
        if occ.len() < n_qubits {
            occ.resize_with(n_qubits, Vec::new);
        }
        for (i, g) in gates.iter().enumerate() {
            for q in g.qubits() {
                occ[q].push(i);
            }
        }
        slots.extend(gates.into_iter().map(Some));
        Buffer { slots, occ }
    }

    fn into_gates(mut self) -> Vec<Gate> {
        let gates: Vec<Gate> = self.slots.drain(..).flatten().collect();
        BUFFER_POOL.with(|p| {
            let p = &mut *p.borrow_mut();
            p.0 = std::mem::take(&mut self.slots);
            p.1 = std::mem::take(&mut self.occ);
        });
        gates
    }

    /// Next live slot after `i` touching `q`.
    fn next_on(&self, i: usize, q: usize) -> Option<usize> {
        let list = &self.occ[q];
        let start = list.partition_point(|&k| k <= i);
        list[start..]
            .iter()
            .copied()
            .find(|&k| self.slots[k].is_some())
    }

    /// Previous live slot before `i` touching `q`.
    fn prev_on(&self, i: usize, q: usize) -> Option<usize> {
        let list = &self.occ[q];
        let end = list.partition_point(|&k| k < i);
        list[..end]
            .iter()
            .rev()
            .copied()
            .find(|&k| self.slots[k].is_some())
    }

    /// Next live slot after `i` sharing any line with `qubits`.
    fn next_overlapping(&self, i: usize, qubits: &[usize]) -> Option<usize> {
        qubits
            .iter()
            .filter_map(|&q| self.next_on(i, q))
            .min()
    }
}

/// Removes inverse gate pairs separated only by gates that commute with the
/// first element. Returns whether anything changed.
pub fn cancel_inverse_pairs(gates: &mut Vec<Gate>, n_qubits: usize) -> bool {
    let mut buf = Buffer::new(std::mem::take(gates), n_qubits);
    let mut changed = false;
    for i in 0..buf.slots.len() {
        let Some(gi) = buf.slots[i].clone() else {
            continue;
        };
        let inv = gi.inverse();
        let qubits = gi.qubits();
        let mut pos = i;
        while let Some(j) = buf.next_overlapping(pos, &qubits) {
            let gj = buf.slots[j].as_ref().expect("live slot");
            if *gj == inv {
                buf.slots[i] = None;
                buf.slots[j] = None;
                changed = true;
                break;
            }
            if !commutes(&gi, gj) {
                break;
            }
            pos = j;
        }
    }
    *gates = buf.into_gates();
    changed
}

/// Fuses neighboring one-qubit gates on the same line through the exact
/// fusion table (`T T -> S`, `H H -> id`, ...). Returns whether anything
/// changed.
pub fn fuse_single_runs(gates: &mut Vec<Gate>, n_qubits: usize) -> bool {
    let mut buf = Buffer::new(std::mem::take(gates), n_qubits);
    let mut changed = false;
    let mut i = 0;
    while i < buf.slots.len() {
        let Some(Gate::Single { op, qubit }) = buf.slots[i].clone() else {
            i += 1;
            continue;
        };
        if let Some(j) = buf.next_on(i, qubit) {
            if let Some(Gate::Single { op: op2, .. }) = buf.slots[j].clone() {
                match fuse(op, op2) {
                    Fusion::Identity => {
                        buf.slots[i] = None;
                        buf.slots[j] = None;
                        changed = true;
                        i += 1;
                        continue;
                    }
                    Fusion::Single(c) => {
                        buf.slots[i] = Some(Gate::single(c, qubit));
                        buf.slots[j] = None;
                        changed = true;
                        continue; // retry fusing the new gate at i
                    }
                    Fusion::None => {}
                }
            }
        }
        i += 1;
    }
    *gates = buf.into_gates();
    changed
}

/// Folds runs of diagonal phase gates (`T, S, Z, S†, T†`) on one line into
/// the minimal equivalent sequence, hopping over CNOT controls and CZs
/// (which commute with diagonals). Returns whether anything changed.
pub fn fold_diagonal_runs(gates: &mut Vec<Gate>, n_qubits: usize) -> bool {
    let mut buf = Buffer::new(std::mem::take(gates), n_qubits);
    let mut changed = false;
    for i in 0..buf.slots.len() {
        let Some(Gate::Single { op, qubit }) = buf.slots[i].clone() else {
            continue;
        };
        let Some(first_steps) = op.phase_steps() else {
            continue;
        };
        // Collect the maximal diagonal run on this line.
        let mut members = vec![i];
        let mut steps = first_steps as u32;
        let mut pos = i;
        while let Some(j) = buf.next_on(pos, qubit) {
            match buf.slots[j].as_ref().expect("live slot") {
                Gate::Single { op: o2, .. } => match o2.phase_steps() {
                    Some(k) => {
                        members.push(j);
                        steps += k as u32;
                    }
                    None => break,
                },
                Gate::Cx { control, .. } if *control == qubit => {}
                Gate::Cz { .. } => {}
                _ => break,
            }
            pos = j;
        }
        let replacement = SingleOp::from_phase_steps((steps % 8) as u8);
        if replacement.len() < members.len() {
            // Re-emit the minimal form into the leading member slots;
            // tombstone the rest. No index shifts occur.
            for (k, &slot) in members.iter().enumerate() {
                buf.slots[slot] = replacement
                    .get(k)
                    .map(|&rop| Gate::single(rop, qubit));
            }
            changed = true;
        }
    }
    *gates = buf.into_gates();
    changed
}

/// Contracts `H(a) H(b) CX(a,b) H(a) H(b)` into the reversed `CX(b,a)`
/// (paper Fig. 6 read right-to-left), when the reversed orientation is
/// legal on the device. Returns whether anything changed.
pub fn contract_hh_cx_hh(gates: &mut Vec<Gate>, n_qubits: usize, device: Option<&Device>) -> bool {
    let mut buf = Buffer::new(std::mem::take(gates), n_qubits);
    let mut changed = false;
    for i in 0..buf.slots.len() {
        let Some(Gate::Cx { control, target }) = buf.slots[i].clone() else {
            continue;
        };
        if let Some(d) = device {
            if !d.has_coupling(target, control) {
                continue;
            }
        }
        fn h_at(buf: &Buffer, k: Option<usize>, q: usize) -> Option<usize> {
            k.filter(|&k| buf.slots[k] == Some(Gate::h(q)))
        }
        let (Some(pa), Some(pb), Some(na), Some(nb)) = (
            h_at(&buf, buf.prev_on(i, control), control),
            h_at(&buf, buf.prev_on(i, target), target),
            h_at(&buf, buf.next_on(i, control), control),
            h_at(&buf, buf.next_on(i, target), target),
        ) else {
            continue;
        };
        buf.slots[i] = Some(Gate::cx(target, control));
        for k in [pa, pb, na, nb] {
            buf.slots[k] = None;
        }
        changed = true;
    }
    *gates = buf.into_gates();
    changed
}

/// Exact lookup table: matrices of all library words of length <= 2,
/// mapped to their shortest word. Phase-exact (global phase included), so
/// replacements never perturb QMDD verification.
fn short_word_table() -> &'static qsyn_qmdd::FxHashMap<[i64; 8], Vec<SingleOp>> {
    use qsyn_gate::SINGLE_OPS;
    use std::sync::OnceLock;
    static TABLE: OnceLock<qsyn_qmdd::FxHashMap<[i64; 8], Vec<SingleOp>>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = qsyn_qmdd::FxHashMap::default();
        let key = |m: &qsyn_gate::Matrix| -> [i64; 8] {
            let mut k = [0i64; 8];
            for (pos, (r, c)) in [(0, 0), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
                let v = m[(*r, *c)];
                k[2 * pos] = (v.re * 1e9).round() as i64;
                k[2 * pos + 1] = (v.im * 1e9).round() as i64;
            }
            k
        };
        table.insert(key(&qsyn_gate::Matrix::identity(2)), Vec::new());
        for a in SINGLE_OPS {
            table.entry(key(&a.matrix())).or_insert_with(|| vec![a]);
        }
        for a in SINGLE_OPS {
            for b in SINGLE_OPS {
                let prod = b.matrix().mul(&a.matrix());
                table.entry(key(&prod)).or_insert_with(|| vec![a, b]);
            }
        }
        table
    })
}

/// Rewrites adjacent triples of one-qubit gates on a line into exactly
/// equal words of length <= 2 (e.g. `H Z H -> X`, `S X S† -> Y`).
/// Returns whether anything changed.
pub fn canonicalize_single_triples(gates: &mut Vec<Gate>, n_qubits: usize) -> bool {
    let mut buf = Buffer::new(std::mem::take(gates), n_qubits);
    let mut changed = false;
    for i in 0..buf.slots.len() {
        let Some(Gate::Single { op: o1, qubit }) = buf.slots[i].clone() else {
            continue;
        };
        let Some(j) = buf.next_on(i, qubit) else { continue };
        let Some(Gate::Single { op: o2, .. }) = buf.slots[j].clone() else {
            continue;
        };
        let Some(k) = buf.next_on(j, qubit) else { continue };
        let Some(Gate::Single { op: o3, .. }) = buf.slots[k].clone() else {
            continue;
        };
        let prod = o3.matrix().mul(&o2.matrix().mul(&o1.matrix()));
        let key = {
            let mut kk = [0i64; 8];
            for (pos, (r, c)) in [(0, 0), (0, 1), (1, 0), (1, 1)].iter().enumerate() {
                let v = prod[(*r, *c)];
                kk[2 * pos] = (v.re * 1e9).round() as i64;
                kk[2 * pos + 1] = (v.im * 1e9).round() as i64;
            }
            kk
        };
        if let Some(word) = short_word_table().get(&key) {
            if word.len() < 3 {
                let slots = [i, j, k];
                for (pos, &slot) in slots.iter().enumerate() {
                    buf.slots[slot] = word.get(pos).map(|&op| Gate::single(op, qubit));
                }
                changed = true;
            }
        }
    }
    *gates = buf.into_gates();
    changed
}

/// Which optimization families to run (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizeConfig {
    /// Identity-partition removal (inverse-pair cancellation).
    pub cancel_identities: bool,
    /// Circuit-identity rewrites (fusion, phase folding, HH-CX-HH).
    pub rewrite_identities: bool,
}

impl Default for OptimizeConfig {
    fn default() -> Self {
        OptimizeConfig {
            cancel_identities: true,
            rewrite_identities: true,
        }
    }
}

/// What the optimizer did (the trace layer reports these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeCounters {
    /// Improvement rounds that were *kept* (each ran every enabled family
    /// once and lowered the cost).
    pub rounds: usize,
    /// Gates removed between the input and the accepted result.
    pub gates_removed: usize,
    /// Whether a round cap stopped the loop while it was still improving
    /// (graceful early stop under a [`crate::CompileBudget`]).
    pub capped: bool,
}

/// Runs the local optimizers recursively until the cost function stops
/// improving (paper steps 5-6). `device` gates the direction-sensitive
/// rewrites; pass `None` for technology-independent optimization.
pub fn optimize_with(
    circuit: &Circuit,
    device: Option<&Device>,
    cost: &dyn CostModel,
    config: OptimizeConfig,
) -> Circuit {
    optimize_traced(circuit, device, cost, config).0
}

/// [`optimize_with`] that also reports [`OptimizeCounters`].
pub fn optimize_traced(
    circuit: &Circuit,
    device: Option<&Device>,
    cost: &dyn CostModel,
    config: OptimizeConfig,
) -> (Circuit, OptimizeCounters) {
    optimize_bounded(circuit, device, cost, config, None)
}

/// [`optimize_traced`] with an optional cap on improvement rounds.
///
/// The cap is a *graceful* bound: hitting it keeps the best circuit found
/// so far and sets [`OptimizeCounters::capped`] rather than erroring —
/// optimization is best-effort, so a truncated result is still valid.
pub fn optimize_bounded(
    circuit: &Circuit,
    device: Option<&Device>,
    cost: &dyn CostModel,
    config: OptimizeConfig,
    max_rounds: Option<usize>,
) -> (Circuit, OptimizeCounters) {
    let n = circuit.n_qubits();
    let mut best = circuit.clone();
    let mut best_cost = cost.circuit_cost(&best);
    let mut counters = OptimizeCounters::default();
    loop {
        if max_rounds.is_some_and(|cap| counters.rounds >= cap) {
            counters.capped = true;
            break;
        }
        let mut gates = best.gates().to_vec();
        let mut any = false;
        if config.cancel_identities {
            any |= cancel_inverse_pairs(&mut gates, n);
        }
        if config.rewrite_identities {
            any |= fuse_single_runs(&mut gates, n);
            any |= fold_diagonal_runs(&mut gates, n);
            any |= canonicalize_single_triples(&mut gates, n);
            any |= contract_hh_cx_hh(&mut gates, n, device);
        }
        if !any {
            break;
        }
        let mut cand = Circuit::from_gates(n, gates);
        if let Some(name) = best.name() {
            cand.set_name(name.to_string());
        }
        let c = cost.circuit_cost(&cand);
        if c < best_cost {
            best = cand;
            best_cost = c;
            counters.rounds += 1;
        } else {
            break;
        }
    }
    counters.gates_removed = circuit.len().saturating_sub(best.len());
    (best, counters)
}

/// [`optimize_with`] with the default configuration (both families on).
pub fn optimize(circuit: &Circuit, device: Option<&Device>, cost: &dyn CostModel) -> Circuit {
    optimize_with(circuit, device, cost, OptimizeConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsyn_arch::TransmonCost;
    use qsyn_qmdd::circuits_equal;

    fn opt(c: &Circuit) -> Circuit {
        optimize(c, None, &TransmonCost::default())
    }

    #[test]
    fn commutation_rules() {
        assert!(commutes(&Gate::t(0), &Gate::cx(0, 1))); // diag on control
        assert!(!commutes(&Gate::t(1), &Gate::cx(0, 1))); // diag on target
        assert!(commutes(&Gate::x(1), &Gate::cx(0, 1))); // X on target
        assert!(!commutes(&Gate::x(0), &Gate::cx(0, 1))); // X on control
        assert!(commutes(&Gate::cx(0, 1), &Gate::cx(0, 2))); // shared control
        assert!(commutes(&Gate::cx(0, 2), &Gate::cx(1, 2))); // shared target
        assert!(!commutes(&Gate::cx(0, 1), &Gate::cx(1, 2))); // chained
        assert!(commutes(&Gate::cz(0, 1), &Gate::cz(1, 2)));
        assert!(commutes(&Gate::h(0), &Gate::t(1))); // disjoint
        assert!(!commutes(&Gate::h(0), &Gate::t(0)));
    }

    #[test]
    fn commutation_rules_are_sound() {
        // Every pair the table declares commuting must commute as matrices.
        let gates = [
            Gate::t(0),
            Gate::x(0),
            Gate::h(0),
            Gate::t(1),
            Gate::x(1),
            Gate::single(SingleOp::Z, 1),
            Gate::cx(0, 1),
            Gate::cx(1, 0),
            Gate::cx(0, 2),
            Gate::cx(2, 1),
            Gate::cz(0, 1),
            Gate::cz(1, 2),
        ];
        for a in &gates {
            for b in &gates {
                if commutes(a, b) {
                    let ab = b.to_matrix(3).mul(&a.to_matrix(3));
                    let ba = a.to_matrix(3).mul(&b.to_matrix(3));
                    assert!(ab.approx_eq(&ba), "{a} vs {b} declared commuting");
                }
            }
        }
    }

    #[test]
    fn adjacent_inverse_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(0, 1));
        let o = opt(&c);
        assert!(o.is_empty());
    }

    #[test]
    fn separated_inverse_pairs_cancel_through_commuting_gates() {
        // T q0 ... CX(0,1) ... T† q0: the T pair hops over its own control.
        let mut c = Circuit::new(2);
        c.push(Gate::t(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::tdg(0));
        let o = opt(&c);
        assert_eq!(o.len(), 1);
        assert!(circuits_equal(&c, &o));
    }

    #[test]
    fn blocked_pairs_do_not_cancel() {
        let mut c = Circuit::new(2);
        c.push(Gate::t(1));
        c.push(Gate::cx(0, 1)); // diag on target: blocks
        c.push(Gate::tdg(1));
        let o = opt(&c);
        assert_eq!(o.len(), 3);
        assert!(circuits_equal(&c, &o));
    }

    #[test]
    fn fusion_rewrites_tt_to_s() {
        let mut c = Circuit::new(1);
        c.push(Gate::t(0));
        c.push(Gate::t(0));
        let o = opt(&c);
        assert_eq!(o.gates(), &[Gate::single(SingleOp::S, 0)]);
        assert!(circuits_equal(&c, &o));
    }

    #[test]
    fn diagonal_run_folds_across_cnot_controls() {
        // T; (CX with control here); T; S; S: total phase 8 steps = 2pi on
        // top of one T -> folds to a single T even across the CNOT.
        let mut c = Circuit::new(2);
        c.push(Gate::t(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::t(0));
        c.push(Gate::single(SingleOp::S, 0));
        c.push(Gate::single(SingleOp::S, 0));
        let o = opt(&c);
        assert!(circuits_equal(&c, &o));
        assert!(o.len() <= 3, "got {} gates", o.len());
    }

    #[test]
    fn full_phase_cycle_disappears() {
        let mut c = Circuit::new(1);
        for _ in 0..8 {
            c.push(Gate::t(0));
        }
        assert!(opt(&c).is_empty());
    }

    #[test]
    fn triple_canonicalization_rewrites_hzh_to_x() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        c.push(Gate::single(SingleOp::Z, 0));
        c.push(Gate::h(0));
        let o = opt(&c);
        assert_eq!(o.gates(), &[Gate::x(0)]);
        assert!(circuits_equal(&c, &o));
    }

    #[test]
    fn triple_canonicalization_rewrites_sxs_to_y() {
        let mut c = Circuit::new(2);
        c.push(Gate::single(SingleOp::Sdg, 1));
        c.push(Gate::x(1));
        c.push(Gate::single(SingleOp::S, 1));
        let o = opt(&c);
        assert!(circuits_equal(&c, &o));
        assert!(o.len() <= 1, "S X S† is a single Y: got {}", o.len());
    }

    #[test]
    fn triple_canonicalization_is_phase_exact() {
        // X Z X = -Z: differs from Z by a global phase, so it must NOT be
        // rewritten to Z (QMDD verification would fail).
        let mut c = Circuit::new(1);
        c.push(Gate::x(0));
        c.push(Gate::single(SingleOp::Z, 0));
        c.push(Gate::x(0));
        let o = opt(&c);
        assert!(circuits_equal(&c, &o), "phase must be preserved");
    }

    #[test]
    fn triples_across_interleaved_lines() {
        // The H Z H triple on line 0 is interleaved with gates on line 1;
        // per-line adjacency still finds and rewrites it.
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::t(1));
        c.push(Gate::single(SingleOp::Z, 0));
        c.push(Gate::tdg(1));
        c.push(Gate::h(0));
        let o = opt(&c);
        assert!(circuits_equal(&c, &o));
        // H Z H -> X and the T T† pair on line 1 cancels.
        assert_eq!(o.gates(), &[Gate::x(0)]);
    }

    #[test]
    fn hh_cx_hh_contracts_without_device() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        c.push(Gate::cx(0, 1));
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        let o = opt(&c);
        assert_eq!(o.gates(), &[Gate::cx(1, 0)]);
        assert!(circuits_equal(&c, &o));
    }

    #[test]
    fn hh_cx_hh_respects_coupling_map() {
        // Device only has 0 -> 1: reversing to CX(1,0) would be illegal.
        let d = Device::from_coupling_map("d", 2, &[(0, &[1])]);
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        c.push(Gate::cx(0, 1));
        c.push(Gate::h(0));
        c.push(Gate::h(1));
        let o = optimize(&c, Some(&d), &TransmonCost::default());
        for g in o.gates() {
            if let Gate::Cx { control, target } = g {
                assert!(d.has_coupling(*control, *target));
            }
        }
        assert!(circuits_equal(&c, &o));
    }

    #[test]
    fn double_reversal_collapses_to_native() {
        // Mapping artifacts often look like two reversals back to back;
        // cancellation + contraction must reduce them to a single CNOT.
        let mut c = Circuit::new(2);
        for _ in 0..2 {
            c.push(Gate::h(0));
            c.push(Gate::h(1));
            c.push(Gate::cx(0, 1));
            c.push(Gate::h(0));
            c.push(Gate::h(1));
        }
        c.push(Gate::cx(1, 0));
        let o = opt(&c);
        assert!(circuits_equal(&c, &o));
        assert!(o.len() <= 3, "got {}", o.len());
    }

    #[test]
    fn optimizer_never_raises_cost() {
        let cost = TransmonCost::default();
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::t(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::tdg(0));
        c.push(Gate::cx(1, 2));
        c.push(Gate::h(2));
        let o = opt(&c);
        assert!(cost.circuit_cost(&o) <= cost.circuit_cost(&c));
        assert!(circuits_equal(&c, &o));
    }

    #[test]
    fn ablation_config_disables_families() {
        let mut c = Circuit::new(1);
        c.push(Gate::t(0));
        c.push(Gate::t(0));
        let cfg = OptimizeConfig {
            cancel_identities: true,
            rewrite_identities: false,
        };
        let o = optimize_with(&c, None, &TransmonCost::default(), cfg);
        assert_eq!(o.len(), 2, "fusion disabled leaves T T in place");
    }

    #[test]
    fn traced_optimize_counts_rounds_and_matches_untraced() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::h(0));
        c.push(Gate::t(1));
        c.push(Gate::t(1));
        let cost = TransmonCost::default();
        let cfg = OptimizeConfig::default();
        let (traced, counters) = optimize_traced(&c, None, &cost, cfg);
        let plain = optimize_with(&c, None, &cost, cfg);
        assert_eq!(traced, plain, "tracing must not change the output");
        assert!(counters.rounds >= 1);
        assert_eq!(counters.gates_removed, c.len() - traced.len());
    }

    #[test]
    fn round_cap_stops_gracefully() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::h(0));
        c.push(Gate::t(1));
        c.push(Gate::t(1));
        let cost = TransmonCost::default();
        let cfg = OptimizeConfig::default();
        // Zero rounds: the input comes back unchanged, flagged as capped.
        let (same, k) = optimize_bounded(&c, None, &cost, cfg, Some(0));
        assert_eq!(same, c);
        assert!(k.capped);
        assert_eq!(k.rounds, 0);
        // An unbounded cap matches the uncapped optimizer exactly.
        let (unbounded, uk) = optimize_bounded(&c, None, &cost, cfg, Some(1000));
        let (plain, pk) = optimize_traced(&c, None, &cost, cfg);
        assert_eq!(unbounded, plain);
        assert_eq!(uk.rounds, pk.rounds);
        assert!(!pk.capped, "uncapped run must not report a cap");
    }

    #[test]
    fn traced_optimize_on_fixed_point_counts_zero_rounds() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        let (o, counters) =
            optimize_traced(&c, None, &TransmonCost::default(), OptimizeConfig::default());
        assert_eq!(o, c);
        assert_eq!(counters, OptimizeCounters::default());
    }

    #[test]
    fn preserves_name() {
        let mut c = Circuit::new(1).with_name("keepme");
        c.push(Gate::h(0));
        c.push(Gate::h(0));
        let o = opt(&c);
        assert_eq!(o.name(), Some("keepme"));
    }

    #[test]
    fn large_random_clifford_t_is_preserved() {
        // Stress the tombstone buffer bookkeeping on a bigger circuit.
        let mut c = Circuit::new(5);
        let mut seed = 12345u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..400 {
            match next() % 5 {
                0 => c.push(Gate::t((next() % 5) as usize)),
                1 => c.push(Gate::h((next() % 5) as usize)),
                2 => c.push(Gate::tdg((next() % 5) as usize)),
                3 => {
                    let a = (next() % 5) as usize;
                    let b = (next() % 5) as usize;
                    if a != b {
                        c.push(Gate::cx(a, b));
                    }
                }
                _ => c.push(Gate::x((next() % 5) as usize)),
            }
        }
        let o = opt(&c);
        assert!(circuits_equal(&c, &o), "optimizer broke a random circuit");
        assert!(o.len() <= c.len());
    }
}
